"""Shared world for the benchmark harness.

Benchmarks measure the pipeline stages that regenerate each paper
table/figure.  The world is built once per session; each benchmark
times only its own stage.  Scales are kept small enough that the whole
harness runs in a couple of minutes while still exercising real data
volumes.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bgp.synth import SnapshotFactory
from repro.core.clustering import cluster_log
from repro.simnet.dns import SimulatedDns
from repro.simnet.topology import TopologyConfig, generate_topology
from repro.simnet.traceroute import SimulatedTraceroute
from repro.weblog.presets import make_log

BENCH_SEED = 90210
BENCH_SCALE = 0.15


@pytest.fixture(scope="session")
def topology():
    return generate_topology(TopologyConfig(seed=BENCH_SEED))


@pytest.fixture(scope="session")
def factory(topology):
    return SnapshotFactory(topology)


@pytest.fixture(scope="session")
def merged_table(factory):
    return factory.merged()


@pytest.fixture(scope="session")
def dns(topology):
    return SimulatedDns(topology)


@pytest.fixture(scope="session")
def traceroute(topology, dns):
    return SimulatedTraceroute(topology, dns)


@pytest.fixture(scope="session")
def nagano(topology):
    return make_log(topology, "nagano", scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def sun(topology):
    return make_log(topology, "sun", scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def nagano_clusters(nagano, merged_table):
    return cluster_log(nagano.log, merged_table)
