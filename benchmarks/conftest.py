"""Shared world for the benchmark harness.

Benchmarks measure the pipeline stages that regenerate each paper
table/figure.  The world is built once per session; each benchmark
times only its own stage.  Scales are kept small enough that the whole
harness runs in a couple of minutes while still exercising real data
volumes.  ``REPRO_BENCH_SCALE`` shrinks the log scale for quick runs
(CI's perf-smoke job); the strict speedup bars in
``test_bench_engine.py`` only apply at the default scale.

Engine benchmarks publish their numbers through the session-scoped
``bench_trajectory`` fixture, which lands in ``benchmarks/
BENCH_engine.json`` at session end — a machine-readable record
(entries/sec per table kind, build times, speedup ratios) that CI and
future PRs can diff against.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bgp.synth import SnapshotFactory
from repro.core.clustering import cluster_log
from repro.simnet.dns import SimulatedDns
from repro.simnet.topology import TopologyConfig, generate_topology
from repro.simnet.traceroute import SimulatedTraceroute
from repro.weblog.presets import make_log

BENCH_SEED = 90210
DEFAULT_BENCH_SCALE = 0.15
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", str(DEFAULT_BENCH_SCALE)))

#: Strict perf assertions (stride ≥ 2x packed, memoized ingest ≥ 1.5x
#: the PR 1 loop) only bind at the default scale — tiny smoke scales
#: don't produce enough work to measure those ratios stably.
FULL_SCALE = BENCH_SCALE >= DEFAULT_BENCH_SCALE

_TRAJECTORY_PATH = os.path.join(os.path.dirname(__file__), "BENCH_engine.json")


@pytest.fixture(scope="session")
def full_scale():
    """Whether the strict speedup assertions bind for this run."""
    return FULL_SCALE


@pytest.fixture(scope="session")
def bench_scale():
    """The numeric log scale this run was invoked at (for gates with
    their own thresholds, like the shm-vs-pickle perf-smoke bar)."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_trajectory():
    """Mutable record the engine benchmarks fill with their numbers;
    written to ``BENCH_engine.json`` once the session ends."""
    record = {
        "meta": {
            "seed": BENCH_SEED,
            "scale": BENCH_SCALE,
            "full_scale": FULL_SCALE,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "generated_unix": int(time.time()),
        },
        "results": {},
    }
    yield record
    if record["results"]:
        with open(_TRAJECTORY_PATH, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")


@pytest.fixture(scope="session")
def topology():
    return generate_topology(TopologyConfig(seed=BENCH_SEED))


@pytest.fixture(scope="session")
def factory(topology):
    return SnapshotFactory(topology)


@pytest.fixture(scope="session")
def merged_table(factory):
    return factory.merged()


@pytest.fixture(scope="session")
def dns(topology):
    return SimulatedDns(topology)


@pytest.fixture(scope="session")
def traceroute(topology, dns):
    return SimulatedTraceroute(topology, dns)


@pytest.fixture(scope="session")
def nagano(topology):
    return make_log(topology, "nagano", scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def sun(topology):
    return make_log(topology, "sun", scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def nagano_clusters(nagano, merged_table):
    return cluster_log(nagano.log, merged_table)
