"""Ablation benchmarks for the design choices DESIGN.md calls out.

* clustering-method accuracy against ground truth (network-aware vs
  simple vs classful);
* merged-table coverage vs a single snapshot;
* end-to-end pipeline throughput.
"""

import random

from repro.bgp.sources import source_by_name
from repro.bgp.table import MergedPrefixTable
from repro.core.clustering import (
    METHOD_CLASSFUL,
    METHOD_NETWORK_AWARE,
    METHOD_SIMPLE,
    cluster_log,
)
from repro.core.validation import ground_truth_validate, sample_clusters


def test_ablation_method_accuracy(benchmark, nagano, merged_table, topology):
    """Ground-truth cluster correctness by method: the oracle the paper
    could not run.  Network-aware must beat the fixed-/24 split on
    too-big errors while keeping far fewer too-small splits."""

    def score_all():
        scores = {}
        for method in (METHOD_NETWORK_AWARE, METHOD_SIMPLE, METHOD_CLASSFUL):
            table = merged_table if method == METHOD_NETWORK_AWARE else None
            clusters = cluster_log(nagano.log, table, method=method)
            sample = sample_clusters(
                clusters, 0.25, random.Random(7), minimum=60
            )
            report = ground_truth_validate(sample, topology)
            scores[method] = (report.pass_rate, len(clusters))
        return scores

    scores = benchmark(score_all)
    aware_rate, aware_count = scores[METHOD_NETWORK_AWARE]
    classful_rate, _ = scores[METHOD_CLASSFUL]
    _, simple_count = scores[METHOD_SIMPLE]
    # Classful clusters merge whole class-B spaces across entities, so
    # network-aware must be strictly more accurate than classful.
    assert aware_rate > classful_rate
    # The simple approach fragments the space into many more clusters.
    assert simple_count > aware_count


def test_ablation_single_source_vs_merged(benchmark, factory, nagano):
    """§3.1.2: merging tables materially improves client coverage over
    even the best single vantage point."""
    single = MergedPrefixTable.from_tables(
        [factory.snapshot(source_by_name("MAE-WEST"))]
    )
    merged = factory.merged()

    def cluster_both():
        return (
            cluster_log(nagano.log, single),
            cluster_log(nagano.log, merged),
        )

    partial, full = benchmark(cluster_both)
    assert full.clustered_fraction > partial.clustered_fraction


def test_ablation_end_to_end_pipeline(benchmark):
    """Whole §3 pipeline at reduced scale: world -> snapshots -> merge
    -> log -> clusters."""
    from repro import quick_pipeline

    def pipeline():
        return quick_pipeline(seed=77, preset="nagano", scale=0.04)

    result = benchmark(pipeline)
    assert result.cluster_set.clustered_fraction > 0.99
