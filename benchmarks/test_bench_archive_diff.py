"""Benchmarks: snapshot archive I/O and routing-table diffing."""

from repro.bgp.archive import SnapshotArchive, load_snapshot, save_snapshot
from repro.bgp.diff import churn_series, diff_tables
from repro.bgp.sources import source_by_name
from repro.bgp.synth import SnapshotTime


def test_archive_collect_one_day(benchmark, factory, tmp_path_factory):
    root = tmp_path_factory.mktemp("dumps")

    def collect():
        archive = SnapshotArchive(root / "run")
        return archive.collect(factory, SnapshotTime(0))

    entries = benchmark(collect)
    assert len(entries) == 14


def test_archive_round_trip_largest_table(benchmark, factory, tmp_path_factory):
    table = factory.snapshot(source_by_name("ARIN"))
    path = tmp_path_factory.mktemp("dump") / "arin.dump"

    def round_trip():
        save_snapshot(table, path)
        return load_snapshot(path)

    loaded = benchmark(round_trip)
    assert loaded.prefix_set() == table.prefix_set()


def test_diff_consecutive_days(benchmark, factory):
    source = source_by_name("OREGON")
    old = factory.snapshot(source, SnapshotTime(0))
    new = factory.snapshot(source, SnapshotTime(1))

    diff = benchmark(diff_tables, old, new)
    total = diff.unchanged_count + diff.total_touched
    assert diff.churned / total < 0.1  # §3.4 stability at diff level


def test_churn_series_week(benchmark, factory):
    source = source_by_name("AADS")
    snapshots = [
        factory.snapshot(source, SnapshotTime(day)) for day in range(8)
    ]

    series = benchmark(churn_series, snapshots)
    assert len(series) == 7
    assert all(diff.unchanged_count > 0 for diff in series)
