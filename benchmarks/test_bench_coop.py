"""Ablation benchmark: co-operative vs isolated proxy clusters (§4.1.4)."""

import pytest

from repro.cache.cooperative import CooperativeSimulator
from repro.core.placement import plan_placement
from repro.simnet.geo import GeoModel


@pytest.fixture(scope="module")
def simulator(nagano, nagano_clusters, topology):
    plan = plan_placement(nagano_clusters, topology, GeoModel(topology))
    return CooperativeSimulator.from_placement(
        nagano.log, nagano.catalog, nagano_clusters, plan
    )


def test_cooperative_replay(benchmark, simulator):
    result = benchmark(simulator.run, 1_000_000, 3600.0, True)
    assert result.sibling_hits > 0
    assert 0.0 < result.hit_ratio < 1.0


def test_cooperation_gain_is_nonnegative(benchmark, simulator):
    def both():
        return (
            simulator.run(cache_bytes=1_000_000, cooperate=True),
            simulator.run(cache_bytes=1_000_000, cooperate=False),
        )

    with_coop, without = benchmark(both)
    # §4.1.4's point: co-operation only adds hit opportunities.
    assert with_coop.hit_ratio >= without.hit_ratio - 1e-9
