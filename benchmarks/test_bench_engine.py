"""Engine benchmarks: packed-table batch LPM vs the radix trie, and the
sharded engine vs single-pass ``cluster_log`` on the Nagano preset.

Two claims are pinned here (and asserted, not just recorded):

* ``PackedLpm.lookup_many`` beats a ``RadixTree.longest_match`` loop on
  a ≥100 k-address batch — the compile-then-batch design is what buys
  the engine its throughput;
* the engine's clusters are identical to ``cluster_log``'s at every
  shard count, so the speed is not bought with drift.
"""

import itertools
import time

import pytest

from repro.core.clustering import cluster_log
from repro.engine import EngineConfig, PackedLpm, ShardedClusterEngine

BATCH_TARGET = 120_000  # ≥100k lookups, per the acceptance bar


@pytest.fixture(scope="module")
def packed(merged_table):
    return PackedLpm.from_merged(merged_table)


@pytest.fixture(scope="module")
def address_batch(nagano):
    entries = nagano.log.entries
    return [
        entry.client
        for entry in itertools.islice(itertools.cycle(entries), BATCH_TARGET)
    ]


def _best_of(repetitions, func):
    """Minimum wall-clock over ``repetitions`` runs — the standard guard
    against scheduler noise on a loaded box — plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repetitions):
        began = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - began)
    return best, result


class TestPackedVsRadix:
    def test_packed_batch_beats_radix_loop(self, merged_table, packed,
                                           address_batch):
        """The headline claim, measured head-to-head in one process.

        Best-of-3 on each side so a single descheduled run can't flip
        the comparison when the machine is busy.
        """
        tree = merged_table._tree

        radix_seconds, radix_hits = _best_of(3, lambda: sum(
            1 for address in address_batch
            if tree.longest_match(address) is not None
        ))

        packed_seconds, indices = _best_of(
            3, lambda: packed.lookup_many(address_batch)
        )
        packed_hits = sum(1 for index in indices if index >= 0)

        assert packed_hits == radix_hits
        assert packed_seconds < radix_seconds, (
            f"packed lookup_many ({packed_seconds:.3f}s) should beat the "
            f"radix loop ({radix_seconds:.3f}s) on {len(address_batch):,} "
            "lookups"
        )
        print(
            f"\n{len(address_batch):,} lookups: "
            f"radix {len(address_batch) / radix_seconds:,.0f}/s, "
            f"packed {len(address_batch) / packed_seconds:,.0f}/s "
            f"({radix_seconds / packed_seconds:.1f}x)"
        )

    def test_bench_radix_longest_match_loop(self, benchmark, merged_table,
                                            address_batch):
        tree = merged_table._tree

        def loop():
            return sum(
                1 for address in address_batch
                if tree.longest_match(address) is not None
            )

        hits = benchmark(loop)
        benchmark.extra_info["lookups_per_sec"] = (
            len(address_batch) / benchmark.stats.stats.mean
        )
        assert hits > 0

    def test_bench_packed_lookup_many(self, benchmark, packed, address_batch):
        indices = benchmark(packed.lookup_many, address_batch)
        benchmark.extra_info["lookups_per_sec"] = (
            len(address_batch) / benchmark.stats.stats.mean
        )
        assert sum(1 for index in indices if index >= 0) > 0


class TestEngineVsClusterLog:
    @pytest.fixture(scope="class")
    def baseline(self, nagano, merged_table):
        return cluster_log(nagano.log, merged_table)

    def test_bench_cluster_log_single_pass(self, benchmark, nagano,
                                           merged_table):
        result = benchmark(cluster_log, nagano.log, merged_table)
        assert len(result) > 0

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_bench_engine_ingest(self, benchmark, nagano, packed, baseline,
                                 shards):
        entries = nagano.log.entries
        config = EngineConfig(num_shards=shards, chunk_size=8192)

        def run():
            with ShardedClusterEngine(packed, config) as engine:
                engine.ingest(entries)
                return engine.snapshot()

        snapshot = benchmark(run)
        benchmark.extra_info["entries_per_sec"] = (
            len(entries) / benchmark.stats.stats.mean
        )
        assert _signature(snapshot) == _signature(baseline)


def _signature(cluster_set):
    return {
        (c.identifier, tuple(c.clients), c.requests, c.unique_urls,
         c.total_bytes)
        for c in cluster_set.clusters
    }
