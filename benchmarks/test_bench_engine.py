"""Engine benchmarks: packed-table batch LPM vs the radix trie, the
fast-path table kinds against each other, and the sharded engine vs
single-pass ``cluster_log`` on the Nagano preset.

Claims pinned here (asserted at the default scale, recorded always):

* ``PackedLpm.lookup_many`` beats a ``RadixTree.longest_match`` loop on
  a ≥100 k-address batch — the compile-then-batch design is what buys
  the engine its throughput;
* ``StrideLpm.lookup_many`` beats ``PackedLpm.lookup_many`` ≥ 2x on the
  same batch (and ≥ 1x even at smoke scales — CI's perf gate);
* memoized end-to-end ingest beats the PR 1 ingest loop ≥ 1.5x (the
  PR 1 loop is frozen verbatim below so the baseline can't drift);
* the engine's clusters are identical to ``cluster_log``'s at every
  shard count and table kind, so the speed is not bought with drift.

Numbers land in ``BENCH_engine.json`` via the ``bench_trajectory``
fixture (see ``conftest.py``).
"""

import itertools
import time

import pytest

from repro.core.clustering import cluster_log
from repro.engine import (
    EngineConfig,
    MemoizedLookup,
    PackedLpm,
    ShardedClusterEngine,
    StrideLpm,
)
from repro.engine.shm import ShmWorkerGroup
from repro.engine.state import ClusterStore, _ClusterState

BATCH_TARGET = 120_000  # ≥100k lookups, per the acceptance bar


@pytest.fixture(scope="module")
def packed(merged_table):
    return PackedLpm.from_merged(merged_table)


@pytest.fixture(scope="module")
def stride(merged_table):
    return StrideLpm.from_merged(merged_table)


@pytest.fixture(scope="module")
def address_batch(nagano):
    entries = nagano.log.entries
    return [
        entry.client
        for entry in itertools.islice(itertools.cycle(entries), BATCH_TARGET)
    ]


def _best_of(repetitions, func):
    """Minimum wall-clock over ``repetitions`` runs — the standard guard
    against scheduler noise on a loaded box — plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repetitions):
        began = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - began)
    return best, result


def _best_of_interleaved(repetitions, funcs):
    """``_best_of`` over several contenders at once, round-robin: each
    round times every func back to back, so clock-frequency drift or a
    noisy neighbour mid-benchmark penalises all contenders equally
    instead of whichever happened to run last.  Returns parallel lists
    of best times and last results."""
    bests = [float("inf")] * len(funcs)
    results = [None] * len(funcs)
    for _ in range(repetitions):
        for which, func in enumerate(funcs):
            began = time.perf_counter()
            results[which] = func()
            bests[which] = min(bests[which], time.perf_counter() - began)
    return bests, results


class TestPackedVsRadix:
    def test_packed_batch_beats_radix_loop(self, merged_table, packed,
                                           address_batch):
        """The headline claim, measured head-to-head in one process.

        Best-of-3 on each side so a single descheduled run can't flip
        the comparison when the machine is busy.
        """
        tree = merged_table._tree

        radix_seconds, radix_hits = _best_of(3, lambda: sum(
            1 for address in address_batch
            if tree.longest_match(address) is not None
        ))

        packed_seconds, indices = _best_of(
            3, lambda: packed.lookup_many(address_batch)
        )
        packed_hits = sum(1 for index in indices if index >= 0)

        assert packed_hits == radix_hits
        assert packed_seconds < radix_seconds, (
            f"packed lookup_many ({packed_seconds:.3f}s) should beat the "
            f"radix loop ({radix_seconds:.3f}s) on {len(address_batch):,} "
            "lookups"
        )
        print(
            f"\n{len(address_batch):,} lookups: "
            f"radix {len(address_batch) / radix_seconds:,.0f}/s, "
            f"packed {len(address_batch) / packed_seconds:,.0f}/s "
            f"({radix_seconds / packed_seconds:.1f}x)"
        )

    def test_bench_radix_longest_match_loop(self, benchmark, merged_table,
                                            address_batch):
        tree = merged_table._tree

        def loop():
            return sum(
                1 for address in address_batch
                if tree.longest_match(address) is not None
            )

        hits = benchmark(loop)
        benchmark.extra_info["lookups_per_sec"] = (
            len(address_batch) / benchmark.stats.stats.mean
        )
        assert hits > 0

    def test_bench_packed_lookup_many(self, benchmark, packed, address_batch):
        indices = benchmark(packed.lookup_many, address_batch)
        benchmark.extra_info["lookups_per_sec"] = (
            len(address_batch) / benchmark.stats.stats.mean
        )
        assert sum(1 for index in indices if index >= 0) > 0


class TestEngineVsClusterLog:
    @pytest.fixture(scope="class")
    def baseline(self, nagano, merged_table):
        return cluster_log(nagano.log, merged_table)

    def test_bench_cluster_log_single_pass(self, benchmark, nagano,
                                           merged_table):
        result = benchmark(cluster_log, nagano.log, merged_table)
        assert len(result) > 0

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_bench_engine_ingest(self, benchmark, nagano, packed, baseline,
                                 shards):
        entries = nagano.log.entries
        config = EngineConfig(num_shards=shards, chunk_size=8192)

        def run():
            with ShardedClusterEngine(packed, config) as engine:
                engine.ingest(entries)
                return engine.snapshot()

        snapshot = benchmark(run)
        benchmark.extra_info["entries_per_sec"] = (
            len(entries) / benchmark.stats.stats.mean
        )
        assert _signature(snapshot) == _signature(baseline)


def _signature(cluster_set):
    return {
        (c.identifier, tuple(c.clients), c.requests, c.unique_urls,
         c.total_bytes)
        for c in cluster_set.clusters
    }


def _pr1_apply_batch(store, triples, table):
    """The PR 1 ingest loop, frozen verbatim as the speedup baseline.

    This is ``ClusterStore.apply_batch`` exactly as first shipped —
    per-entry ``table.prefix``/cluster-dict probes, no index→state
    cache — so the "memoized ingest ≥ 1.5x over the PR 1 baseline"
    claim measures against a baseline that cannot quietly speed up as
    the live code improves.
    """
    indices = table.lookup_many([triple[0] for triple in triples])
    store.lookups_performed += len(triples)
    clusters = store._clusters
    unclustered = store._unclustered
    for (client, url, size), index in zip(triples, indices):
        if index < 0:
            unclustered[client] = unclustered.get(client, 0) + 1
            continue
        prefix = table.prefix(index)
        state = clusters.get(prefix)
        if state is None:
            value = table.value(index)
            state = clusters[prefix] = _ClusterState(
                source_kind=getattr(value, "source_kind", ""),
                source_name=getattr(value, "source_name", ""),
            )
        state.requests += 1
        state.total_bytes += size
        state.client_counts[client] = state.client_counts.get(client, 0) + 1
        state.urls.add(url)
    store.entries_applied += len(triples)
    return len(triples)


class TestFastpath:
    """The PR's speedup claims, measured head-to-head and recorded in
    ``BENCH_engine.json``.  No pytest-benchmark here: these tests run
    under CI's perf-smoke gate, where ``_best_of`` timing plus hard
    assertions is the point."""

    def test_table_build_times(self, merged_table, bench_trajectory):
        packed_seconds, packed_table = _best_of(
            3, lambda: PackedLpm.from_merged(merged_table)
        )
        stride_seconds, stride_table = _best_of(
            3, lambda: StrideLpm.from_merged(merged_table)
        )
        assert stride_table.digest() == packed_table.digest()
        bench_trajectory["results"]["table_build"] = {
            "entries": len(packed_table),
            "packed_seconds": round(packed_seconds, 6),
            "stride_seconds": round(stride_seconds, 6),
            "stride_direct_slots": stride_table.num_direct_slots,
        }
        print(
            f"\nbuild {len(packed_table):,} entries: "
            f"packed {packed_seconds * 1e3:.1f}ms, "
            f"stride {stride_seconds * 1e3:.1f}ms "
            f"({stride_table.num_direct_slots:,}/65,536 direct slots)"
        )

    def test_stride_lookup_beats_packed(self, packed, stride, address_batch,
                                        full_scale, bench_trajectory):
        """StrideLpm.lookup_many ≥ 2x PackedLpm.lookup_many (≥ 1x at
        smoke scales), on identical results."""
        memoized = MemoizedLookup(stride)
        memoized.lookup_many(address_batch)  # warm: steady-state rate
        (
            (packed_seconds, stride_seconds, memo_seconds),
            (packed_indices, stride_indices, memo_indices),
        ) = _best_of_interleaved(5, [
            lambda: packed.lookup_many(address_batch),
            lambda: stride.lookup_many(address_batch),
            lambda: memoized.lookup_many(address_batch),
        ])
        assert stride_indices == packed_indices
        assert memo_indices == packed_indices

        speedup = packed_seconds / stride_seconds
        batch = len(address_batch)
        bench_trajectory["results"]["lookup_many"] = {
            "batch_size": batch,
            "packed_per_sec": round(batch / packed_seconds),
            "stride_per_sec": round(batch / stride_seconds),
            "memoized_warm_per_sec": round(batch / memo_seconds),
            "stride_vs_packed": round(speedup, 3),
        }
        print(
            f"\n{batch:,} lookups: packed {batch / packed_seconds:,.0f}/s, "
            f"stride {batch / stride_seconds:,.0f}/s ({speedup:.2f}x), "
            f"memoized(warm) {batch / memo_seconds:,.0f}/s"
        )
        floor = 2.0 if full_scale else 1.0
        assert speedup >= floor, (
            f"stride lookup_many is only {speedup:.2f}x packed "
            f"(needs >= {floor}x at this scale)"
        )

    def test_memoized_ingest_beats_pr1_loop(self, nagano, merged_table,
                                            packed, stride, full_scale,
                                            bench_trajectory):
        """End-to-end: stride+memo engine ingest ≥ 1.5x the frozen PR 1
        loop over the same entries, with identical clusters."""
        entries = nagano.log.entries
        chunk = 8192

        def pr1_run():
            store = ClusterStore()
            for lo in range(0, len(entries), chunk):
                block = entries[lo:lo + chunk]
                _pr1_apply_batch(
                    store,
                    [(e.client, e.url, e.size) for e in block],
                    packed,
                )
            return store.snapshot(nagano.log.name, "network_aware")

        def engine_run(make_table):
            config = EngineConfig(num_shards=1, chunk_size=chunk)
            with ShardedClusterEngine(make_table(), config) as engine:
                engine.ingest(entries)
                return engine.snapshot()

        # A fresh memo per run: the end-to-end number includes the
        # cold first pass, not just the steady state.
        (
            (pr1_seconds, packed_seconds, stride_seconds, memo_seconds),
            (pr1_snapshot, packed_snapshot, stride_snapshot, memo_snapshot),
        ) = _best_of_interleaved(5, [
            pr1_run,
            lambda: engine_run(lambda: packed),
            lambda: engine_run(lambda: stride),
            lambda: engine_run(lambda: MemoizedLookup(stride)),
        ])

        assert _signature(packed_snapshot) == _signature(pr1_snapshot)
        assert _signature(stride_snapshot) == _signature(pr1_snapshot)
        assert _signature(memo_snapshot) == _signature(pr1_snapshot)

        count = len(entries)
        speedup = pr1_seconds / memo_seconds
        bench_trajectory["results"]["ingest"] = {
            "entries": count,
            "pr1_loop_per_sec": round(count / pr1_seconds),
            "packed_per_sec": round(count / packed_seconds),
            "stride_per_sec": round(count / stride_seconds),
            "memoized_per_sec": round(count / memo_seconds),
            "memoized_vs_pr1": round(speedup, 3),
        }
        print(
            f"\ningest {count:,} entries: pr1 {count / pr1_seconds:,.0f}/s, "
            f"packed {count / packed_seconds:,.0f}/s, "
            f"stride {count / stride_seconds:,.0f}/s, "
            f"stride+memo {count / memo_seconds:,.0f}/s "
            f"({speedup:.2f}x vs pr1)"
        )
        if full_scale:
            assert speedup >= 1.5, (
                f"memoized ingest is only {speedup:.2f}x the PR 1 loop "
                "(needs >= 1.5x at the default scale)"
            )


class TestShmIngest:
    """The zero-copy transport vs the per-chunk pickle pool.

    Both contenders run the identical end-to-end ingest (same entries,
    same shards, same chunking) in the same interleaved measurement, so
    the ratio isolates the transport: shared-segment attach + counter
    accumulators vs per-chunk ``ClusterStore`` pickling.  The perf-smoke
    gate (shm ≥ pickle) binds from scale 0.05 up; below that the run is
    too short to cover the worker-spawn cost."""

    SHM_GATE_SCALE = 0.05

    def test_shm_dispatch_beats_pickle_pool(self, nagano, packed,
                                            bench_scale, bench_trajectory):
        entries = nagano.log.entries
        chunk = 8192
        shards = 2

        def transport_run(use_shm):
            config = EngineConfig(
                num_shards=shards, chunk_size=chunk, use_shm=use_shm
            )
            with ShardedClusterEngine(packed, config) as engine:
                engine.ingest(entries)
                return engine.snapshot()

        (
            (shm_seconds, pickle_seconds),
            (shm_snapshot, pickle_snapshot),
        ) = _best_of_interleaved(3, [
            lambda: transport_run(True),
            lambda: transport_run(False),
        ])
        assert _signature(shm_snapshot) == _signature(pickle_snapshot)

        # Per-group attach cost: publish the segments, spawn the
        # workers, wait for every attach ack — the fixed price a run
        # pays once (and again per republish after a table patch).
        def attach_once():
            began = time.perf_counter()
            group = ShmWorkerGroup(packed, num_shards=shards)
            elapsed = time.perf_counter() - began
            group.shutdown()
            return elapsed

        attach_seconds = min(attach_once() for _ in range(3))

        count = len(entries)
        speedup = pickle_seconds / shm_seconds
        bench_trajectory["results"]["shm_ingest"] = {
            "entries": count,
            "shards": shards,
            "shm_per_sec": round(count / shm_seconds),
            "pickle_per_sec": round(count / pickle_seconds),
            "shm_vs_pickle": round(speedup, 3),
            "group_attach_seconds": round(attach_seconds, 6),
        }
        print(
            f"\ningest {count:,} entries x {shards} shards: "
            f"shm {count / shm_seconds:,.0f}/s, "
            f"pickle pool {count / pickle_seconds:,.0f}/s "
            f"({speedup:.2f}x), group attach {attach_seconds * 1e3:.1f}ms"
        )
        if bench_scale >= self.SHM_GATE_SCALE:
            assert speedup >= 1.0, (
                f"shm dispatch is only {speedup:.2f}x the pickle pool "
                f"(must not lose at scale >= {self.SHM_GATE_SCALE})"
            )
