"""Benchmarks for the extension features (paper's stated future work).

* real-time sliding-window clustering throughput;
* AS-level grouping (probe-free) vs traceroute-based grouping;
* selective (tolerant) validation;
* multi-server merged-trace replay.
"""

import random

from repro.cache.multiserver import MultiServerSimulator, OriginSpec, merge_logs
from repro.core.asclusters import group_clusters_by_as
from repro.core.clustering import cluster_log
from repro.core.netclusters import cluster_networks
from repro.core.realtime import RealTimeClusterer
from repro.core.selective import selective_validate
from repro.core.validation import nslookup_validate, sample_clusters
from repro.weblog.presets import make_log

from conftest import BENCH_SCALE, BENCH_SEED


def test_ext_realtime_streaming_throughput(benchmark, nagano, merged_table):
    entries = nagano.log.entries

    def stream():
        clusterer = RealTimeClusterer(merged_table, window_seconds=1800.0)
        clusterer.feed_many(entries)
        return clusterer

    clusterer = benchmark(stream)
    assert clusterer.entries_processed == len(entries)
    # The assignment cache keeps LPM lookups down to one per client.
    assert clusterer.lookups_performed <= nagano.log.num_clients()


def test_ext_as_grouping_vs_traceroute(benchmark, nagano_clusters,
                                       merged_table, traceroute):
    def group_both():
        by_as = group_clusters_by_as(nagano_clusters, merged_table)
        by_path = cluster_networks(nagano_clusters, traceroute, level=3)
        return by_as, by_path

    by_as, by_path = benchmark(group_both)
    # Both aggregate; the AS grouping needs zero probes.
    assert len(by_as) < len(nagano_clusters)
    assert len(by_path) < len(nagano_clusters)
    assert by_path.probes_used > 0


def test_ext_selective_validation(benchmark, nagano_clusters, dns, topology):
    sample = sample_clusters(nagano_clusters, 0.25, random.Random(8),
                             minimum=50)

    def validate():
        return selective_validate(sample, dns, tolerance=0.05)

    tolerant = benchmark(validate)
    strict = nslookup_validate(sample, dns, topology)
    # Tolerance can only help.
    assert tolerant.pass_rate >= strict.pass_rate


def test_ext_multiserver_replay(benchmark, topology, merged_table):
    origins = []
    for index, preset in enumerate(("nagano", "ew3")):
        synthetic = make_log(topology, preset, scale=BENCH_SCALE * 0.4,
                             seed=BENCH_SEED + index)
        origins.append(OriginSpec(preset, synthetic.log, synthetic.catalog))
    clusters = cluster_log(merge_logs(origins), merged_table)
    simulator = MultiServerSimulator(origins, clusters)

    def replay():
        return simulator.run(cache_bytes=5_000_000)

    result = benchmark(replay)
    assert result.total_requests == sum(len(o.log) for o in origins)
    assert 0.0 < result.overall_hit_ratio < 1.0
