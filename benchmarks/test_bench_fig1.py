"""Benchmark: Figure 1 — prefix-length histogram of a NAP snapshot.

Regenerates the MAE-WEST prefix-length distribution and asserts the
paper's shape: ~50 % /24, far more short-than-24 than long.
"""

from repro.bgp.sources import source_by_name
from repro.bgp.synth import SnapshotTime


def test_fig1_prefix_length_histogram(benchmark, factory):
    source = source_by_name("MAE-WEST")

    def regenerate():
        snapshot = factory.snapshot(source, SnapshotTime(0))
        return snapshot.prefix_length_histogram()

    histogram = benchmark(regenerate)
    total = sum(histogram.values())
    assert 0.35 < histogram.get(24, 0) / total < 0.75
    shorter = sum(c for length, c in histogram.items() if length < 24)
    longer = sum(c for length, c in histogram.items() if length > 24)
    assert shorter > longer


def test_fig1_four_day_stability(benchmark, factory):
    source = source_by_name("MAE-WEST")

    def four_days():
        return [
            factory.snapshot(source, SnapshotTime(day)).prefix_length_histogram()
            for day in range(4)
        ]

    histograms = benchmark(four_days)
    sizes = [sum(h.values()) for h in histograms]
    # Day-to-day sizes nearly constant (paper Figure 1(b)).
    assert max(sizes) - min(sizes) < 0.05 * max(sizes)
