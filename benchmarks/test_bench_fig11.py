"""Benchmark: Figure 11 — server hit/byte-hit ratio vs cache size."""

import pytest

from repro.cache.simulator import CachingSimulator
from repro.core.clustering import METHOD_SIMPLE, cluster_log


@pytest.fixture(scope="module")
def simulators(nagano, merged_table):
    aware = cluster_log(nagano.log, merged_table)
    simple = cluster_log(nagano.log, method=METHOD_SIMPLE)
    return (
        CachingSimulator(nagano.log, nagano.catalog, aware, min_url_accesses=10),
        CachingSimulator(nagano.log, nagano.catalog, simple, min_url_accesses=10),
    )


def test_fig11_cache_sweep_network_aware(benchmark, simulators):
    sim_aware, _ = simulators

    def sweep():
        return sim_aware.sweep_cache_sizes([100_000, 1_000_000, 10_000_000])

    results = benchmark(sweep)
    ratios = [r.server_hit_ratio for r in results]
    # Hit ratio rises with cache size.
    assert ratios[0] <= ratios[-1] + 0.01
    assert 0.1 < ratios[-1] <= 1.0


def test_fig11_simple_underestimates_at_large_cache(benchmark, simulators):
    sim_aware, sim_simple = simulators

    def compare():
        return (
            sim_aware.run(cache_bytes=10_000_000),
            sim_simple.run(cache_bytes=10_000_000),
        )

    r_aware, r_simple = benchmark(compare)
    # Figure 11's headline: simple under-estimates both ratios.
    assert r_aware.server_hit_ratio >= r_simple.server_hit_ratio
    assert r_aware.server_byte_hit_ratio >= r_simple.server_byte_hit_ratio
