"""Benchmark: Figure 12 — per-proxy performance with infinite caches."""

from repro.cache.simulator import CachingSimulator
from repro.core.clustering import METHOD_SIMPLE, cluster_log


def test_fig12_infinite_cache_top_clusters(benchmark, nagano, merged_table):
    aware = cluster_log(nagano.log, merged_table)
    simulator = CachingSimulator(
        nagano.log, nagano.catalog, aware, min_url_accesses=10
    )

    def run_infinite():
        return simulator.run(cache_bytes=None)

    result = benchmark(run_infinite)
    top = result.top_proxies(100)
    assert top
    requests = [p.stats.requests for p in top]
    assert requests == sorted(requests, reverse=True)
    assert all(0.0 <= p.hit_ratio <= 1.0 for p in top)


def test_fig12_aware_top_proxies_busier_than_simple(
    benchmark, nagano, merged_table
):
    aware = cluster_log(nagano.log, merged_table)
    simple = cluster_log(nagano.log, method=METHOD_SIMPLE)

    def both():
        r_aware = CachingSimulator(
            nagano.log, nagano.catalog, aware, min_url_accesses=10
        ).run(cache_bytes=None)
        r_simple = CachingSimulator(
            nagano.log, nagano.catalog, simple, min_url_accesses=10
        ).run(cache_bytes=None)
        return r_aware, r_simple

    r_aware, r_simple = benchmark(both)
    # Network-aware concentrates traffic onto fewer, busier proxies.
    assert len(r_aware.proxies) < len(r_simple.proxies)
    mean_aware = r_aware.total_requests / max(1, len(r_aware.proxies))
    mean_simple = r_simple.total_requests / max(1, len(r_simple.proxies))
    assert mean_aware > mean_simple
