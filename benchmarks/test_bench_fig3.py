"""Benchmark: Figure 3 — CDFs of clients/requests per cluster."""

from repro.core.metrics import cdf, fraction_below


def test_fig3_cdfs(benchmark, nagano_clusters):
    def build_cdfs():
        clients = [c.num_clients for c in nagano_clusters.clusters]
        requests = [c.requests for c in nagano_clusters.clusters]
        return cdf(clients), cdf(requests)

    client_cdf, request_cdf = benchmark(build_cdfs)
    assert client_cdf[-1][1] == 1.0
    assert request_cdf[-1][1] == 1.0
    # Paper: the vast majority of clusters are small.
    clients = [c.num_clients for c in nagano_clusters.clusters]
    assert fraction_below(clients, 100) > 0.9
