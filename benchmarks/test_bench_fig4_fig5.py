"""Benchmark: Figures 4/5 — aligned cluster distribution series."""

from repro.core.metrics import distributions


def test_fig4_reverse_order_of_clients(benchmark, nagano_clusters):
    dist = benchmark(distributions, nagano_clusters, "clients")
    assert list(dist.clients) == sorted(dist.clients, reverse=True)
    assert len(dist.clients) == len(dist.requests) == len(dist.unique_urls)


def test_fig5_reverse_order_of_requests(benchmark, nagano_clusters):
    dist = benchmark(distributions, nagano_clusters, "requests")
    assert list(dist.requests) == sorted(dist.requests, reverse=True)
    # Paper: requests more heavy-tailed than clients — compare by
    # coefficient of variation, which is robust at reduced scale.
    assert _cv(dist.requests) > _cv(dist.clients)


def _cv(values):
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return (variance ** 0.5) / mean if mean else 0.0
