"""Benchmark: Figure 6 — clustering all four server logs."""

from repro.core.clustering import cluster_log
from repro.weblog.presets import make_log

from conftest import BENCH_SCALE, BENCH_SEED

_LOGS = ("apache", "ew3", "nagano", "sun")


def test_fig6_cluster_four_logs(benchmark, topology, merged_table):
    logs = {
        name: make_log(topology, name, scale=BENCH_SCALE * 0.5, seed=BENCH_SEED)
        for name in _LOGS
    }

    def cluster_all():
        return {
            name: cluster_log(synthetic.log, merged_table)
            for name, synthetic in logs.items()
        }

    results = benchmark(cluster_all)
    for name in _LOGS:
        assert results[name].clustered_fraction > 0.99
        sizes = sorted(
            (c.requests for c in results[name].clusters), reverse=True
        )
        # Heavy-tailed in every log (Figure 6's point).
        top = max(1, len(sizes) // 10)
        assert sum(sizes[:top]) > 0.3 * sum(sizes)
