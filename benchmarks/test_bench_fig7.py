"""Benchmark: Figure 7 — network-aware vs simple clustering."""

from repro.core.clustering import METHOD_SIMPLE, cluster_log
from repro.core.metrics import summary


def test_fig7_network_aware_clustering(benchmark, nagano, merged_table):
    result = benchmark(cluster_log, nagano.log, merged_table)
    assert result.clustered_fraction > 0.99


def test_fig7_simple_clustering(benchmark, nagano, merged_table):
    simple = benchmark(cluster_log, nagano.log, None, METHOD_SIMPLE)
    aware = cluster_log(nagano.log, merged_table)
    s_simple, s_aware = summary(simple), summary(aware)
    # Figure 7's claims.
    assert s_simple.num_clusters > s_aware.num_clusters
    assert s_aware.max_clients >= s_simple.max_clients
    assert s_simple.mean_clients < s_aware.mean_clients
    assert s_simple.variance_clients < s_aware.variance_clients
    assert s_simple.max_clients <= 256  # /24 cap
