"""Benchmark: Figures 9/10 — spider & proxy detection on the Sun log."""

from repro.core.clustering import cluster_log
from repro.core.spiders import arrival_histogram, classify_clients, pattern_correlation
from repro.weblog.stats import requests_by_client


def test_fig9_classification(benchmark, sun, merged_table):
    clusters = cluster_log(sun.log, merged_table)

    def classify():
        return classify_clients(sun.log, clusters)

    report = benchmark(classify)
    # Planted spider and proxy recovered, no spurious spiders.
    assert set(report.spider_clients()) == set(sun.spider_clients)
    assert set(sun.proxy_clients) <= set(report.proxy_clients())

    overall = arrival_histogram(sun.log)
    spider_corr = pattern_correlation(
        arrival_histogram(sun.log, set(sun.spider_clients)), overall
    )
    proxy_corr = pattern_correlation(
        arrival_histogram(sun.log, set(sun.proxy_clients)), overall
    )
    # Figure 9's visual claim, numerically.
    assert proxy_corr > spider_corr


def test_fig10_spider_cluster_skew(benchmark, sun, merged_table):
    clusters = cluster_log(sun.log, merged_table)
    spider = sun.spider_clients[0]
    cluster = next(c for c in clusters.clusters if spider in c.clients)

    def within_cluster_distribution():
        counts = requests_by_client(sun.log)
        return sorted(
            (counts.get(client, 0) for client in cluster.clients),
            reverse=True,
        )

    counts = benchmark(within_cluster_distribution)
    # Paper: the within-cluster distribution is extremely uneven — the
    # spider dwarfs every other member (99.79% in the Sun log; here the
    # dominance factor is what scales, not the absolute share, because
    # the spider's cluster may be a coarse aggregate holding many
    # ordinary clients).
    assert counts[0] > 5 * counts[1]
