"""Ablation benchmark: LPM engine choice (radix vs per-length hash vs
linear scan).

The clustering step is one longest-prefix match per unique client; this
ablation shows why the radix trie is the production engine and the
linear scan only a correctness oracle.
"""

import random

import pytest

from repro.net.lpm import build_engine


@pytest.fixture(scope="module")
def workload(merged_table, nagano):
    entries = [(result.prefix, result.source_name)
               for _, result in _iter_table(merged_table)]
    clients = nagano.log.clients()
    return entries, clients


def _iter_table(merged_table):
    return list(merged_table.items())


@pytest.mark.parametrize("kind", ["radix", "sorted", "linear"])
def test_lpm_engine_lookup_throughput(benchmark, workload, kind):
    entries, clients = workload
    engine = build_engine(kind, entries)
    # The linear oracle is O(n) per lookup: give it a smaller batch so
    # the harness finishes, and scale the comparison per-lookup.
    batch = clients[:50] if kind == "linear" else clients

    def match_all():
        hits = 0
        for address in batch:
            if engine.longest_match(address) is not None:
                hits += 1
        return hits

    hits = benchmark(match_all)
    assert hits > 0.98 * len(batch)


@pytest.mark.parametrize("kind", ["radix", "sorted"])
def test_lpm_engine_build_time(benchmark, workload, kind):
    entries, _ = workload

    def build():
        return build_engine(kind, entries)

    engine = benchmark(build)
    assert len(engine) == len({p for p, _ in entries})


def test_lpm_engines_agree_on_log_clients(workload):
    entries, clients = workload
    rng = random.Random(0)
    sample = rng.sample(clients, min(300, len(clients)))
    radix = build_engine("radix", entries)
    sorted_engine = build_engine("sorted", entries)
    for address in sample:
        a = radix.longest_match(address)
        b = sorted_engine.longest_match(address)
        assert (a is None) == (b is None)
        if a is not None:
            assert a[0] == b[0]
