"""Benchmarks: placement planning, AS-graph mining, anonymization."""

from repro.bgp.aspath import build_as_graph
from repro.core.placement import evaluate_latency, plan_placement
from repro.simnet.geo import GeoModel
from repro.weblog.anonymize import PrefixPreservingAnonymizer


def test_placement_plan_and_score(benchmark, nagano_clusters, topology):
    geo = GeoModel(topology)
    origin_asn = next(
        asn for asn, a_s in topology.ases.items() if a_s.kind == "backbone"
    )

    def plan_and_score():
        plan = plan_placement(nagano_clusters, topology, geo)
        return plan, evaluate_latency(plan, topology, geo, origin_asn)

    plan, report = benchmark(plan_and_score)
    assert len(plan) < len(nagano_clusters)
    # §1's motivation: placement must beat the single origin.
    assert report.reduction > 0.3


def test_as_graph_from_all_bgp_sources(benchmark, factory):
    tables = [
        factory.snapshot(source)
        for source in factory.sources
        if source.kind == "bgp"
    ]

    graph = benchmark(build_as_graph, tables)
    assert len(graph) > 10
    hub_asn, hub_degree = graph.hubs(1)[0]
    assert hub_degree >= 2


def test_anonymize_log_throughput(benchmark, nagano):
    anonymizer = PrefixPreservingAnonymizer(key=42)

    anonymized = benchmark(anonymizer.anonymize_log, nagano.log)
    assert len(anonymized) == len(nagano.log)
    assert anonymized.num_clients() == nagano.log.num_clients()
