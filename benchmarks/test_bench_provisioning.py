"""Ablation benchmark: uniform vs demand-proportional cache budgets
(§4.1.4's 'assign proxies based on metrics')."""

from repro.cache.simulator import CachingSimulator, provision_caches


def test_provisioning_metrics_at_fixed_budget(benchmark, nagano,
                                              nagano_clusters):
    simulator = CachingSimulator(
        nagano.log, nagano.catalog, nagano_clusters, min_url_accesses=10
    )
    per_proxy = 300_000
    total_budget = per_proxy * len(nagano_clusters)

    def run_all():
        uniform = simulator.run(cache_bytes=per_proxy)
        results = {"uniform": uniform}
        for metric in ("requests", "clients", "bytes"):
            allocation = provision_caches(
                nagano_clusters, total_budget, metric=metric
            )
            results[metric] = simulator.run(
                cache_bytes=per_proxy, per_cluster_bytes=allocation
            )
        return results

    results = benchmark(run_all)
    uniform = results["uniform"].server_hit_ratio
    # Spending the same budget where the demand is cannot lose much,
    # and demand-weighted metrics should match or beat uniform.
    assert results["requests"].server_hit_ratio >= uniform - 0.02
    for result in results.values():
        assert 0.0 < result.server_hit_ratio <= 1.0
