"""Benchmarks: §3.2.2 coverage and §3.3 optimized-traceroute savings."""

import random

from repro.core.clustering import cluster_log


def test_sec32_coverage_with_and_without_registry(
    benchmark, factory, nagano
):
    bgp_only = factory.merged_without_registry()
    merged = factory.merged()

    def cluster_both():
        return (
            cluster_log(nagano.log, merged),
            cluster_log(nagano.log, bgp_only),
        )

    full, partial = benchmark(cluster_both)
    # Registry dumps strictly improve applicability (99% -> 99.9%).
    assert full.clustered_fraction >= partial.clustered_fraction
    assert full.clustered_fraction > 0.99


def test_sec33_optimized_traceroute_savings(benchmark, topology, traceroute):
    rng = random.Random(33)
    hosts = [
        topology.hosts_in_leaf(leaf, 1, rng)[0]
        for leaf in rng.sample(topology.leaf_networks, 300)
    ]

    def probe_both_ways():
        _, optimized = traceroute.probe_batch(hosts, optimized=True)
        _, classic = traceroute.probe_batch(hosts, optimized=False)
        return optimized, classic

    optimized, classic = benchmark(probe_both_ways)
    probe_saving, wait_saving = optimized.savings_vs(classic)
    # Paper: ~90% probes and ~80% waiting time saved.
    assert probe_saving > 0.7
    assert wait_saving > 0.7
