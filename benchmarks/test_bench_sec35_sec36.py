"""Benchmarks: §3.5 self-correction and §3.6 server/network clusters."""

from repro.core.netclusters import cluster_networks
from repro.core.selfcorrect import SelfCorrector
from repro.core.servercluster import cluster_servers
from repro.weblog.presets import make_log

from conftest import BENCH_SCALE, BENCH_SEED


def test_sec35_self_correction_pass(benchmark, nagano_clusters, traceroute):
    def correct():
        corrector = SelfCorrector(traceroute, samples_per_cluster=3, seed=35)
        return corrector.correct(nagano_clusters)

    corrected, report = benchmark(correct)
    assert corrected.unclustered_clients == []
    assert report.clusters_after > 0


def test_sec36_server_clustering(benchmark, topology, merged_table):
    synthetic = make_log(topology, "isp", scale=BENCH_SCALE, seed=BENCH_SEED)

    def cluster():
        return cluster_servers(synthetic.log, merged_table)

    report = benchmark(cluster)
    # Paper: ~0.2% unclusterable; a small minority of clusters receives
    # 70% of requests.
    assert report.unclusterable_fraction < 0.01
    assert report.top_cluster_share(0.70) < 0.5


def test_sec36_network_clusters(benchmark, nagano_clusters, traceroute):
    def second_level():
        return cluster_networks(nagano_clusters, traceroute, level=2)

    grouped = benchmark(second_level)
    assert 0 < len(grouped) < len(nagano_clusters)
