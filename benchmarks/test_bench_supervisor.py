"""Supervision overhead: what the recovery policy costs when nothing fails.

The supervisor's happy path adds one try/except, one counter reset, and
one chunking layer per dispatched chunk.  This benchmark pins that the
price is a few percent, not a tax: a supervised inline ingest of the
Nagano preset must stay within 1.5× of the raw engine (best-of-N on
both sides), and the output must be identical.
"""

import time

import pytest

from repro.engine import (
    EngineConfig,
    PackedLpm,
    ShardedClusterEngine,
    SupervisedEngine,
    SupervisorConfig,
)

CHUNK = 8192
OVERHEAD_CEILING = 1.5


def _signature(cluster_set):
    return {
        (c.identifier, tuple(c.clients), c.requests, c.unique_urls,
         c.total_bytes)
        for c in cluster_set.clusters
    }


@pytest.fixture(scope="module")
def packed(merged_table):
    return PackedLpm.from_merged(merged_table)


def _best_of(repetitions, func):
    best = float("inf")
    result = None
    for _ in range(repetitions):
        began = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - began)
    return best, result


def _config(shards=2):
    return EngineConfig(
        num_shards=shards, chunk_size=CHUNK, use_processes=False
    )


class TestSupervisionOverhead:
    def test_happy_path_overhead_is_bounded(self, nagano, packed):
        entries = nagano.log.entries

        def raw():
            with ShardedClusterEngine(packed, _config()) as engine:
                engine.ingest(entries)
                return engine.snapshot()

        def supervised():
            engine = ShardedClusterEngine(packed, _config())
            with SupervisedEngine(engine, SupervisorConfig()) as sup:
                sup.ingest(entries)
                return sup.snapshot()

        raw_seconds, raw_result = _best_of(3, raw)
        sup_seconds, sup_result = _best_of(3, supervised)

        assert _signature(sup_result) == _signature(raw_result)
        ratio = sup_seconds / raw_seconds
        assert ratio < OVERHEAD_CEILING, (
            f"supervised ingest ({sup_seconds:.3f}s) is {ratio:.2f}x the "
            f"raw engine ({raw_seconds:.3f}s); the happy path should be "
            "nearly free"
        )
        print(
            f"\n{len(entries):,} entries: raw "
            f"{len(entries) / raw_seconds:,.0f}/s, supervised "
            f"{len(entries) / sup_seconds:,.0f}/s ({ratio:.2f}x)"
        )

    def test_bench_supervised_ingest(self, benchmark, nagano, packed):
        entries = nagano.log.entries

        def run():
            engine = ShardedClusterEngine(packed, _config())
            with SupervisedEngine(engine, SupervisorConfig()) as sup:
                sup.ingest(entries)
                return sup.snapshot()

        snapshot = benchmark(run)
        benchmark.extra_info["entries_per_sec"] = (
            len(entries) / benchmark.stats.stats.mean
        )
        assert len(snapshot) > 0
