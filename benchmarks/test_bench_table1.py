"""Benchmark: Table 1 — collecting and merging all fourteen sources."""

from repro.bgp.synth import SnapshotFactory, SnapshotTime
from repro.bgp.table import MergedPrefixTable


def test_table1_snapshot_all_sources(benchmark, topology):
    factory = SnapshotFactory(topology)

    def collect():
        return factory.snapshots_all_sources(SnapshotTime(0))

    snapshots = benchmark(collect)
    assert len(snapshots) == 14
    sizes = {s.name: len(s) for s in snapshots}
    # Table 1's relative ordering.
    assert sizes["ARIN"] == max(sizes.values())
    assert sizes["OREGON"] == max(
        size for name, size in sizes.items()
        if name not in ("ARIN", "NLANR", "AT&T-Forw")
    )
    assert sizes["CANET"] < 0.1 * sizes["OREGON"]


def test_table1_merge_into_prefix_table(benchmark, factory):
    snapshots = factory.snapshots_all_sources()

    def merge():
        return MergedPrefixTable.from_tables(snapshots)

    merged = benchmark(merge)
    assert len(merged) > max(len(s) for s in snapshots)
