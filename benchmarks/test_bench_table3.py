"""Benchmark: Table 3 — nslookup and traceroute validation passes."""

import random

from repro.core.validation import (
    nslookup_validate,
    sample_clusters,
    traceroute_validate,
)


def test_table3_nslookup_validation(benchmark, nagano_clusters, dns, topology):
    sample = sample_clusters(nagano_clusters, 0.2, random.Random(1), minimum=40)

    def validate():
        return nslookup_validate(sample, dns, topology)

    report = benchmark(validate)
    assert report.pass_rate > 0.8
    # ~half the clients resolve (paper: ~50%).
    assert 0.2 < report.reachable_clients / max(1, report.sampled_clients) < 0.9


def test_table3_traceroute_validation(
    benchmark, nagano_clusters, traceroute, topology
):
    sample = sample_clusters(nagano_clusters, 0.2, random.Random(2), minimum=40)

    def validate():
        return traceroute_validate(sample, traceroute, topology)

    report = benchmark(validate)
    assert report.pass_rate > 0.8
    assert report.reachable_clients == report.sampled_clients  # 100% reach
