"""Benchmark: Table 4 — BGP dynamics over 0/1/4/7/14-day periods."""

from repro.bgp.dynamics import study_dynamics
from repro.bgp.sources import source_by_name


def test_table4_dynamics_study(benchmark, factory, nagano_clusters):
    source = source_by_name("AADS")

    def study():
        return study_dynamics(factory, source, periods=(0, 1, 4, 7, 14))

    report = benchmark(study)
    effects = [e.maximum_effect for e in report.periods]
    assert effects == sorted(effects)            # grows with period
    assert report.periods[-1].dynamic_fraction < 0.15

    # Projected onto the log's clusters: < ~3% affected (paper claim).
    prefixes = [c.identifier for c in nagano_clusters.clusters]
    rows = report.effect_on_prefixes(prefixes)
    worst = max(dynamic for _, _, dynamic in rows)
    assert worst < 0.05 * len(nagano_clusters)
