"""Benchmark: Table 5 — busy-cluster thresholding, both approaches."""

from repro.core.clustering import METHOD_SIMPLE, cluster_log
from repro.core.threshold import threshold_busy_clusters


def test_table5_thresholding(benchmark, nagano, merged_table):
    aware = cluster_log(nagano.log, merged_table)
    simple = cluster_log(nagano.log, method=METHOD_SIMPLE)

    def threshold_both():
        return (
            threshold_busy_clusters(aware),
            threshold_busy_clusters(simple),
        )

    t_aware, t_simple = benchmark(threshold_both)
    # Table 5's shape: simple needs more clusters and a lower threshold
    # to cover the same 70% of requests.
    assert len(t_simple.busy) > len(t_aware.busy)
    assert t_aware.threshold_requests >= t_simple.threshold_requests
    assert t_aware.busy_requests >= 0.7 * aware.total_requests
