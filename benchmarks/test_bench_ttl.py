"""Ablation benchmark: TTL sensitivity of the caching simulation.

§4.1.5: "We set ttl to be 1 hour ... Varying ttl to 5, 10, and 15
minutes yields similar results."  This ablation replays the same trace
at four TTLs and checks the hit ratios stay in one band.
"""

import pytest

from repro.cache.simulator import CachingSimulator


@pytest.fixture(scope="module")
def simulator(nagano, nagano_clusters):
    return CachingSimulator(
        nagano.log, nagano.catalog, nagano_clusters, min_url_accesses=10
    )


def test_ttl_sweep_yields_similar_results(benchmark, simulator):
    ttls = (300.0, 600.0, 900.0, 3600.0)  # 5/10/15 min, 1 h

    def sweep():
        return [
            simulator.run(cache_bytes=5_000_000, ttl_seconds=ttl)
            for ttl in ttls
        ]

    results = benchmark(sweep)
    ratios = [r.server_hit_ratio for r in results]
    # "Similar results": the whole band spans only a few points.
    assert max(ratios) - min(ratios) < 0.12
    # Longer TTL can only help (fewer validations/refetches).
    assert ratios[-1] >= ratios[0] - 0.01


def test_piggyback_validation_contributes(benchmark, simulator):
    """PCV ablation: with piggybacking disabled, expired resources cost
    If-Modified-Since round trips instead of free renewals."""

    def run_both():
        with_pcv = simulator.run(cache_bytes=5_000_000, piggyback_limit=10)
        without = simulator.run(cache_bytes=5_000_000, piggyback_limit=0)
        return with_pcv, without

    with_pcv, without = benchmark(run_both)
    pcv_renewals = sum(
        p.stats.piggyback_renewals for p in with_pcv.proxies
    )
    assert pcv_renewals > 0
    no_pcv_renewals = sum(
        p.stats.piggyback_renewals for p in without.proxies
    )
    assert no_pcv_renewals == 0
    # Hit ratios stay comparable; PCV's win is fewer origin validations.
    with_validations = sum(p.stats.validation_hits for p in with_pcv.proxies)
    without_validations = sum(p.stats.validation_hits for p in without.proxies)
    assert with_validations <= without_validations
