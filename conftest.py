"""Ensure the in-tree package is importable when running pytest from the
repository root, even without an installed distribution (this
environment has no network, so ``pip install -e .`` cannot fetch the
``wheel`` build dependency; a ``.pth`` file or this shim stands in)."""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
