#!/usr/bin/env python3
"""Share a log without sharing your clients (prefix-preserving
anonymization).

The paper ends by inviting "large portal sites to make their logs
available"; in practice that requires anonymizing client addresses
without destroying the prefix structure clustering depends on.  This
example anonymizes a log and its prefix table with one key and shows
the clustering is structurally identical.

Run:  python examples/anonymize_and_share.py
"""

from repro import quick_pipeline
from repro.core.clustering import cluster_log
from repro.core.metrics import summary
from repro.net.ipv4 import format_ipv4
from repro.weblog.anonymize import PrefixPreservingAnonymizer


def main() -> None:
    result = quick_pipeline(seed=606, preset="nagano", scale=0.15)
    log = result.synthetic_log.log

    anonymizer = PrefixPreservingAnonymizer(key=0xC0FFEE)
    anon_log = anonymizer.anonymize_log(log)
    anon_table = anonymizer.anonymize_table(result.table)

    sample = log.clients()[:3]
    print("address mapping (prefix-preserving, keyed):")
    for client in sample:
        print(f"  {format_ipv4(client):>15s} -> "
              f"{format_ipv4(anonymizer.anonymize_address(client))}")

    original = cluster_log(log, result.table)
    anonymized = cluster_log(anon_log, anon_table)

    print()
    print("original:   " + summary(original).describe())
    print("anonymized: " + summary(anonymized).describe())
    same_sizes = sorted(c.num_clients for c in original.clusters) == sorted(
        c.num_clients for c in anonymized.clusters
    )
    same_requests = sorted(c.requests for c in original.clusters) == sorted(
        c.requests for c in anonymized.clusters
    )
    print()
    print(f"cluster-size multiset identical:    {same_sizes}")
    print(f"cluster-request multiset identical: {same_requests}")
    print("the recipient can run every analysis in this library on the")
    print("anonymized data and obtain structurally identical results.")


if __name__ == "__main__":
    main()
