#!/usr/bin/env python3
"""How stable is the clustering as BGP churns? (§3.4, Table 4)

Collects AADS-style snapshots over a two-week window, measures the
dynamic prefix set per observation period, projects it onto the
clusters actually used by a Nagano-style log, and runs a self-
correction pass (§3.5) to absorb whatever the churn broke.

Run:  python examples/bgp_dynamics.py
"""

from repro import quick_pipeline
from repro.bgp.dynamics import study_dynamics
from repro.bgp.sources import source_by_name
from repro.core.selfcorrect import SelfCorrector
from repro.core.threshold import threshold_busy_clusters
from repro.simnet.traceroute import SimulatedTraceroute
from repro.util.tables import render_table

PERIODS = (0, 1, 4, 7, 14)


def main() -> None:
    result = quick_pipeline(seed=88, preset="nagano", scale=0.25)
    source = source_by_name("AADS")
    report = study_dynamics(result.factory, source, periods=PERIODS)

    rows = [
        ["AADS prefixes"] + [e.table_size for e in report.periods],
        ["dynamic set (max effect)"] + [e.maximum_effect for e in report.periods],
        ["dynamic fraction"] + [
            f"{e.dynamic_fraction:.1%}" for e in report.periods
        ],
    ]
    cluster_prefixes = [c.identifier for c in result.cluster_set.clusters]
    projected = report.effect_on_prefixes(cluster_prefixes)
    rows.append(["log clusters using AADS"] + [used for _, used, _ in projected])
    rows.append(["...of which dynamic"] + [dyn for _, _, dyn in projected])
    busy = threshold_busy_clusters(result.cluster_set).busy
    busy_rows = report.effect_on_prefixes([c.identifier for c in busy])
    rows.append([f"busy clusters ({len(busy)}) using AADS"]
                + [used for _, used, _ in busy_rows])
    rows.append(["...of which dynamic"] + [dyn for _, _, dyn in busy_rows])

    print(render_table(
        ["metric"] + [f"{p} day(s)" for p in PERIODS],
        rows,
        title="effect of AADS dynamics on cluster identification",
    ))

    worst = max(dyn for _, _, dyn in projected)
    print()
    print(f"worst case: {worst} of {len(cluster_prefixes)} clusters "
          f"({worst / len(cluster_prefixes):.1%}) touched by two weeks of "
          "churn — the paper found < 3% and so do we.")

    # §3.5: the periodic self-correction pass absorbs the damage.
    traceroute = SimulatedTraceroute(result.topology)
    corrector = SelfCorrector(traceroute, samples_per_cluster=3, seed=88)
    corrected, correction = corrector.correct(result.cluster_set)
    print()
    print(correction.describe())
    print(f"unclustered clients after correction: "
          f"{len(corrected.unclustered_clients)}")


if __name__ == "__main__":
    main()
