#!/usr/bin/env python3
"""Trace-driven web-caching study (§4.1.5, Figures 11–12).

Places one proxy (LRU + 1-hour TTL + Piggyback Cache Validation) in
front of every client cluster and sweeps the per-proxy cache size,
comparing the network-aware clustering against the fixed-/24 simple
approach — reproducing the paper's finding that the simple approach
*under-estimates* the benefit of proxy caching.

Run:  python examples/caching_study.py
"""

from repro import quick_pipeline
from repro.cache.simulator import CachingSimulator
from repro.core.clustering import METHOD_SIMPLE, cluster_log
from repro.core.spiders import classify_clients
from repro.util.tables import render_table

CACHE_SIZES = (100_000, 1_000_000, 10_000_000, 100_000_000)


def main() -> None:
    result = quick_pipeline(seed=55, preset="nagano", scale=0.3)
    log = result.synthetic_log.log
    catalog = result.synthetic_log.catalog

    # §4.1.1: spiders/proxies would pollute the simulation — drop them.
    detections = classify_clients(log, result.cluster_set)
    cleaned = log.without_clients(
        detections.spider_clients() + detections.proxy_clients()
    )

    aware = cluster_log(cleaned, result.table)
    simple = cluster_log(cleaned, method=METHOD_SIMPLE)
    sim_aware = CachingSimulator(cleaned, catalog, aware, min_url_accesses=10)
    sim_simple = CachingSimulator(cleaned, catalog, simple, min_url_accesses=10)

    rows = []
    for size in CACHE_SIZES:
        r_aware = sim_aware.run(cache_bytes=size)
        r_simple = sim_simple.run(cache_bytes=size)
        rows.append([
            f"{size / 1e6:g} MB",
            f"{r_aware.server_hit_ratio:.3f}",
            f"{r_simple.server_hit_ratio:.3f}",
            f"{r_aware.server_byte_hit_ratio:.3f}",
            f"{r_simple.server_byte_hit_ratio:.3f}",
        ])
    print(render_table(
        ["proxy cache", "hit (aware)", "hit (simple)",
         "byte hit (aware)", "byte hit (simple)"],
        rows,
        title="server-observed performance vs per-proxy cache size",
    ))

    # Figure 12: per-proxy view with infinite caches.
    r_inf = sim_aware.run(cache_bytes=None)
    top = r_inf.top_proxies(10)
    print()
    print(render_table(
        ["cluster", "clients", "requests", "hit ratio", "byte hit"],
        [
            [p.cluster_prefix.cidr, p.num_clients,
             f"{p.stats.requests:,}", f"{p.hit_ratio:.3f}",
             f"{p.byte_hit_ratio:.3f}"]
            for p in top
        ],
        title="top-10 proxies, infinite cache (network-aware)",
    ))


if __name__ == "__main__":
    main()
