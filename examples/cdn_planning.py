#!/usr/bin/env python3
"""Content-distribution planning from a server log (§4 motivation).

The scenario the paper's introduction motivates: a busy origin wants to
know *where its clients are* so it can push content closer to them.
This example:

1. clusters the log's clients network-aware;
2. eliminates spiders/proxies so placement isn't skewed by crawlers;
3. keeps the busy clusters that cover 70 % of requests (§4.1.3);
4. groups those clusters into second-level *network clusters* via
   traceroute path suffixes (§3.6) — each group is one candidate
   location for a CDN node / proxy cluster;
5. prints the provisioning plan.

Run:  python examples/cdn_planning.py
"""

from repro import quick_pipeline
from repro.core.clustering import cluster_log
from repro.core.netclusters import cluster_networks
from repro.core.spiders import classify_clients
from repro.core.threshold import threshold_busy_clusters
from repro.simnet.traceroute import SimulatedTraceroute
from repro.util.tables import render_table


def main() -> None:
    result = quick_pipeline(seed=4242, preset="nagano", scale=0.3)
    log = result.synthetic_log.log

    # 1-2. Cluster, then drop crawlers and forward proxies.
    detections = classify_clients(log, result.cluster_set)
    eliminated = detections.spider_clients() + detections.proxy_clients()
    print(f"eliminated {len(detections.spiders)} spider(s) and "
          f"{len(detections.proxies)} prox(ies) before planning")
    cleaned = log.without_clients(eliminated)
    clusters = cluster_log(cleaned, result.table)

    # 3. Busy clusters: the 70% rule.
    busy = threshold_busy_clusters(clusters, request_share=0.70)
    print(f"busy clusters: {len(busy.busy)} of {busy.total_clusters} "
          f"({busy.busy_requests:,} requests; smallest busy cluster "
          f"issues {busy.threshold_requests:,})")

    # 4. Second-level grouping: one proxy cluster per network region.
    from repro.core.clustering import ClusterSet

    busy_set = ClusterSet(clusters.log_name, clusters.method, busy.busy)
    traceroute = SimulatedTraceroute(result.topology)
    regions = cluster_networks(busy_set, traceroute, level=2)

    # 5. The provisioning plan: where to put proxies, sized by demand.
    rows = []
    for rank, region in enumerate(regions.sorted_by_requests()[:12], 1):
        rows.append(
            [
                rank,
                " / ".join(region.path_suffix) or "(isolated)",
                region.num_clusters,
                region.num_clients,
                f"{region.requests:,}",
            ]
        )
    print()
    print(render_table(
        ["rank", "network region (router)", "clusters", "clients", "requests"],
        rows,
        title="proxy-placement plan: top regions by demand",
    ))
    print()
    print(f"traceroute probes spent on planning: {regions.probes_used}")


if __name__ == "__main__":
    main()
