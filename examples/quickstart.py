#!/usr/bin/env python3
"""Quickstart: the paper's pipeline in a dozen lines.

Generates a synthetic Internet, collects and merges the fourteen
routing-table snapshots, synthesises a Nagano-style server log, and
identifies network-aware client clusters — then prints the headline
numbers the paper reports in §3.2.2.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import quick_pipeline
from repro.core.metrics import summary


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    print("Running the full identification pipeline (this builds a")
    print("topology, 14 routing snapshots, and a synthetic log)...")
    result = quick_pipeline(seed=seed, preset="nagano", scale=0.25)

    print()
    print(result.topology.describe())
    print(f"merged prefix table: {len(result.table):,} unique entries "
          f"from {result.table.tables_merged} snapshots")
    log = result.synthetic_log.log
    print(f"log: {len(log):,} requests, {log.num_clients():,} clients, "
          f"{log.unique_urls():,} unique URLs")

    print()
    stats = summary(result.cluster_set)
    print(stats.describe())
    print(f"clusterable clients: {result.cluster_set.clustered_fraction:.2%} "
          "(paper: more than 99.9%)")

    biggest = max(result.cluster_set.clusters, key=lambda c: c.num_clients)
    busiest = max(result.cluster_set.clusters, key=lambda c: c.requests)
    print(f"largest cluster:  {biggest.identifier.cidr} "
          f"({biggest.num_clients} clients)")
    print(f"busiest cluster:  {busiest.identifier.cidr} "
          f"({busiest.requests:,} requests)")


if __name__ == "__main__":
    main()
