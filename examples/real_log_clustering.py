#!/usr/bin/env python3
"""Clustering a real Common Log Format file against real dump files.

Everything in the library also works on data from disk: this example
writes a CLF access log and two routing-table dumps (in two of the
§3.1.2 textual formats), then reads them back the way an operator
would — parse, unify, merge, cluster.  Point the constants at your own
files to run it on real data.

Run:  python examples/real_log_clustering.py
"""

import io
import tempfile
from pathlib import Path

from repro.bgp.table import KIND_BGP, MergedPrefixTable, RoutingTable
from repro.core.clustering import cluster_log
from repro.core.metrics import summary
from repro.weblog.parser import ParseReport, load_clf

ACCESS_LOG = """\
12.65.147.94 - - [13/Feb/1998:09:12:01 +0000] "GET /index.html HTTP/1.0" 200 4532
12.65.147.149 - - [13/Feb/1998:09:12:07 +0000] "GET /news.html HTTP/1.0" 200 1822
12.65.146.207 - - [13/Feb/1998:09:13:44 +0000] "GET /index.html HTTP/1.0" 200 4532
12.65.144.247 - - [13/Feb/1998:09:15:02 +0000] "GET /medals.html HTTP/1.0" 200 990
24.48.3.87 - - [13/Feb/1998:09:16:33 +0000] "GET /index.html HTTP/1.0" 200 4532
24.48.2.166 - - [13/Feb/1998:09:17:20 +0000] "GET /hockey.html HTTP/1.0" 200 7741
198.51.100.7 - - [13/Feb/1998:09:18:00 +0000] "GET /index.html HTTP/1.0" 200 4532
0.0.0.0 - - [13/Feb/1998:09:18:30 +0000] "GET /bootp-noise HTTP/1.0" 400 -
this line is corrupt and will be counted, not crashed on
"""

# Two dumps in different §3.1.2 formats; unification makes them one table.
DUMP_MASK_LENGTH = """\
# route-viewer dump, prefix/len format
12.65.128.0/19\tpeer1.example.net\t7018
198.51.100.0/24\tpeer1.example.net\t64501
"""

DUMP_DOTTED = """\
# forwarding dump, prefix/dotted-netmask format (zero octets dropped)
24.48.2.0/255.255.254\tcore2.example.net\t64500
"""


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-real-"))
    (workdir / "access.log").write_text(ACCESS_LOG)
    (workdir / "routes-a.txt").write_text(DUMP_MASK_LENGTH)
    (workdir / "routes-b.txt").write_text(DUMP_DOTTED)
    print(f"wrote sample inputs under {workdir}")

    # Parse the access log (0.0.0.0 and the corrupt line are dropped).
    report = ParseReport()
    with open(workdir / "access.log") as handle:
        from repro.weblog.parser import parse_clf_lines

        log = parse_clf_lines("access", handle, report)
    print(f"parsed {report.parsed} entries "
          f"({report.malformed} malformed, {report.null_client} null-client)")

    # Load and merge the dumps.
    tables = []
    for name in ("routes-a.txt", "routes-b.txt"):
        with open(workdir / name) as handle:
            tables.append(
                RoutingTable.from_lines(name, handle, kind=KIND_BGP)
            )
    merged = MergedPrefixTable.from_tables(tables)
    print(f"merged table: {len(merged)} prefixes from {len(tables)} dumps")

    # Cluster.
    clusters = cluster_log(log, merged)
    print()
    print(summary(clusters).describe())
    for cluster in clusters.clusters:
        members = ", ".join(
            f"{c >> 24 & 255}.{c >> 16 & 255}.{c >> 8 & 255}.{c & 255}"
            for c in cluster.clients
        )
        print(f"  {cluster.identifier.cidr}: {cluster.num_clients} clients "
              f"({members}), {cluster.requests} requests")
    print(f"unclustered: {clusters.unclustered_clients}")


if __name__ == "__main__":
    main()
