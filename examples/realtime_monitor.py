#!/usr/bin/env python3
"""Real-time cluster monitoring with routing adaptation (§3.5).

Streams a day-long log through a 30-minute sliding window the way a
live origin would, printing the busiest client clusters every few
hours.  Halfway through, a fresh routing-table snapshot is swapped in
(the network changed under us) and the monitor keeps running — the
paper's "real-time client cluster identification" with adaptation.

Run:  python examples/realtime_monitor.py
"""

from repro import quick_pipeline
from repro.bgp.synth import SnapshotTime
from repro.core.realtime import RealTimeClusterer
from repro.net.ipv4 import format_ipv4


def main() -> None:
    result = quick_pipeline(seed=321, preset="nagano", scale=0.25)
    log = result.synthetic_log.log
    start, end = log.time_span()

    clusterer = RealTimeClusterer(result.table, window_seconds=1800.0)
    next_report = start + 4 * 3600.0
    swapped = False

    print(f"streaming {len(log):,} requests through a 30-minute window...")
    for entry in log.entries:
        if not swapped and entry.timestamp >= start + (end - start) / 2:
            print()
            print(">>> routing table updated mid-stream (day-1 snapshot);")
            print(">>> new requests now resolve against fresh routes.")
            clusterer.update_table(result.factory.merged(SnapshotTime(day=1)))
            swapped = True
        clusterer.feed(entry)
        if entry.timestamp >= next_report:
            stats = clusterer.stats()
            hour = (entry.timestamp - start) / 3600.0
            print()
            print(f"t+{hour:4.1f}h  window: {stats.entries:,} requests, "
                  f"{stats.clients:,} clients, {stats.clusters:,} clusters")
            for prefix, requests in clusterer.busiest(3):
                print(f"    {prefix.cidr:>20s}  {requests:,} requests")
            next_report += 4 * 3600.0

    print()
    print(f"processed {clusterer.entries_processed:,} entries with "
          f"{clusterer.lookups_performed:,} LPM lookups "
          "(one per unique client — the assignment cache absorbs repeats)")
    final = clusterer.snapshot()
    print(f"final window: {len(final)} clusters; unclustered clients: "
          f"{[format_ipv4(c) for c in final.unclustered_clients] or 'none'}")


if __name__ == "__main__":
    main()
