#!/usr/bin/env python3
"""The whole paper as one function call: a site operator's report.

``analyze_log`` runs clustering, coverage, spider/proxy detection, the
client census, validation sampling, and busy-cluster thresholding in
one pass and renders a digest — what a Nagano-sized site's operations
team would read each morning.

Run:  python examples/site_report.py
"""

from repro import quick_pipeline
from repro.core.report import analyze_log
from repro.simnet.dns import SimulatedDns


def main() -> None:
    result = quick_pipeline(seed=1998, preset="sun", scale=0.25)
    dns = SimulatedDns(result.topology)
    report = analyze_log(
        result.synthetic_log.log,
        result.table,
        dns=dns,
        topology=result.topology,
    )
    print(report.render(top=8))


if __name__ == "__main__":
    main()
