#!/usr/bin/env python3
"""Hunting spiders and proxies in a server log (§4.1.2).

Replays the paper's Sun-log analysis: cluster the clients, profile
per-client access patterns, and separate the crawler (flat, sweeping,
single User-Agent) from the forward proxy (diurnal, many User-Agents)
and from ordinary users.  Prints the evidence for every suspect and the
within-cluster request skew of the spider's cluster (Figure 10).

Run:  python examples/spider_hunt.py
"""

from repro import quick_pipeline
from repro.core.spiders import (
    arrival_histogram,
    classify_clients,
    pattern_correlation,
)
from repro.util.ascii_plot import ascii_histogram, ascii_series
from repro.weblog.stats import requests_by_client


def main() -> None:
    result = quick_pipeline(seed=777, preset="sun", scale=0.25)
    log = result.synthetic_log.log
    clusters = result.cluster_set

    report = classify_clients(log, clusters)
    print(f"suspects: {len(report.spiders)} spider(s), "
          f"{len(report.proxies)} prox(ies)")
    for detection in report.spiders + report.proxies:
        print("  " + detection.describe())

    # Ground truth is known for synthetic logs — score ourselves.
    planted_spiders = set(result.synthetic_log.spider_clients)
    planted_proxies = set(result.synthetic_log.proxy_clients)
    found_spiders = set(report.spider_clients())
    found_proxies = set(report.proxy_clients())
    print()
    print(f"spider recall: {len(found_spiders & planted_spiders)}"
          f"/{len(planted_spiders)}   "
          f"false positives: {len(found_spiders - planted_spiders)}")
    print(f"proxy recall:  {len(found_proxies & planted_proxies)}"
          f"/{len(planted_proxies)}   "
          f"false positives: {len(found_proxies - planted_proxies)}")

    # Figure 9: arrival-pattern comparison.
    overall = arrival_histogram(log)
    print()
    print(ascii_series(overall, title="whole log, hourly arrivals"))
    for label, clients in (("spider", report.spider_clients()),
                           ("proxy", report.proxy_clients())):
        if not clients:
            continue
        series = arrival_histogram(log, {clients[0]})
        corr = pattern_correlation(series, overall)
        print()
        print(ascii_series(series, title=f"{label} arrivals (corr={corr:.2f})"))

    # Figure 10: the spider dwarfs its cluster.
    if report.spiders:
        spider = report.spiders[0].client
        cluster = next(c for c in clusters.clusters if spider in c.clients)
        counts = requests_by_client(log)
        members = sorted(cluster.clients, key=lambda c: -counts.get(c, 0))[:15]
        print()
        print(ascii_histogram(
            [("SPIDER" if m == spider else f"client{i}")
             for i, m in enumerate(members)],
            [counts.get(m, 0) for m in members],
            title=f"requests inside spider cluster {cluster.identifier.cidr}",
        ))


if __name__ == "__main__":
    main()
