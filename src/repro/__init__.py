"""repro — network-aware clustering of web clients.

A full reproduction of Krishnamurthy & Wang, *On Network-Aware
Clustering of Web Clients* (SIGCOMM 2000): client clustering by
longest-prefix match over merged BGP routing snapshots, validation via
nslookup/traceroute suffix tests, self-correction, spider/proxy
detection, busy-cluster thresholding, and the per-cluster proxy-caching
simulation — plus every substrate the paper relies on (radix-trie LPM,
BGP snapshot sources and dynamics, a ground-truth synthetic Internet,
web-log generation, and an LRU/TTL/PCV cache simulator).

Quickstart::

    from repro import quick_pipeline
    result = quick_pipeline(seed=7)
    print(result.cluster_set.clustered_fraction)   # ~0.999

Subpackages:

- :mod:`repro.net` — IPv4/prefix machinery and LPM engines
- :mod:`repro.bgp` — routing-table formats, sources, synthesis, dynamics
- :mod:`repro.simnet` — ground-truth topology, simulated DNS/traceroute
- :mod:`repro.weblog` — log entries/parsing/stats and workload synthesis
- :mod:`repro.core` — clustering, validation, detection, thresholding
- :mod:`repro.cache` — the web-caching simulation
- :mod:`repro.experiments` — regenerates every paper table and figure
"""

from dataclasses import dataclass

from repro.bgp import MergedPrefixTable, SnapshotFactory
from repro.core import ClusterSet, cluster_log
from repro.simnet import Topology, TopologyConfig, generate_topology
from repro.weblog import SyntheticLog, make_log

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "PipelineResult",
    "quick_pipeline",
]


@dataclass
class PipelineResult:
    """Everything the end-to-end pipeline produced."""

    topology: Topology
    factory: SnapshotFactory
    table: MergedPrefixTable
    synthetic_log: SyntheticLog
    cluster_set: ClusterSet


def quick_pipeline(
    seed: int = 2000,
    preset: str = "nagano",
    scale: float = 0.25,
) -> PipelineResult:
    """Run the paper's whole identification pipeline in one call.

    Generates a ground-truth Internet, synthesises and merges the
    fourteen routing-table snapshots, generates the ``preset`` server
    log, and clusters its clients network-aware.  Larger ``scale``
    grows the log proportionally.
    """
    topology = generate_topology(TopologyConfig(seed=seed))
    factory = SnapshotFactory(topology)
    table = factory.merged()
    synthetic_log = make_log(topology, preset, scale=scale, seed=seed)
    cluster_set = cluster_log(synthetic_log.log, table)
    return PipelineResult(
        topology=topology,
        factory=factory,
        table=table,
        synthetic_log=synthetic_log,
        cluster_set=cluster_set,
    )
