"""repro.analysis — the repo-specific static-analysis pass.

See :mod:`repro.analysis.core` for the engine and
:mod:`repro.analysis.rules` for the rule catalogue; ``repro-lint``
(:mod:`repro.analysis.cli`) is the command-line front end.
"""

from repro.analysis.core import (
    RULES,
    Finding,
    LintModule,
    Rule,
    Suppression,
    active_rules,
    lint_module,
    lint_paths,
    lint_source,
    module_name_for,
    register,
)

__all__ = [
    "Finding",
    "Suppression",
    "LintModule",
    "Rule",
    "RULES",
    "register",
    "active_rules",
    "lint_module",
    "lint_source",
    "lint_paths",
    "module_name_for",
]
