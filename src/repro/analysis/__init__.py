"""repro.analysis — the repo-specific static-analysis pass.

See :mod:`repro.analysis.core` for the engine,
:mod:`repro.analysis.rules` for the per-module rule catalogue, and
:mod:`repro.analysis.xmodule` for the whole-program (cross-module)
rules behind ``repro-lint --project``; :mod:`repro.analysis.sanitize`
is the paired ``REPRO_SANITIZE=1`` runtime-invariant mode.
``repro-lint`` (:mod:`repro.analysis.cli`) is the command-line front
end.

``xmodule`` and ``sanitize`` are deliberately *not* imported here:
the engine's hot modules import ``repro.analysis.sanitize`` at import
time, and keeping this package ``__init__`` minimal keeps that cheap.
"""

from repro.analysis.core import (
    RULES,
    Finding,
    LintModule,
    Rule,
    Suppression,
    active_rules,
    lint_module,
    lint_paths,
    lint_source,
    module_name_for,
    register,
)

__all__ = [
    "Finding",
    "Suppression",
    "LintModule",
    "Rule",
    "RULES",
    "register",
    "active_rules",
    "lint_module",
    "lint_source",
    "lint_paths",
    "module_name_for",
]
