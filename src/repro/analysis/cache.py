"""Content-hash result caching for the expensive lint passes.

``repro-lint --project`` re-reads and re-analyzes the whole tree on
every run, and ``--flow`` builds a CFG per function — cheap enough
interactively, wasteful in CI and pre-commit where most runs touch a
handful of files.  :class:`LintCache` memoizes findings in a JSON file
(``.repro-lint-cache.json`` by default) keyed by content hashes:

* ``--flow`` results are cached **per module**: the key is the module's
  own source hash plus a fingerprint of the collected spec set and the
  active rule ids.  Editing one file re-analyzes that file only —
  unless the edit changes a ``FLOW_SPECS`` declaration, which shifts
  the fingerprint and correctly invalidates every module the spec
  governs.
* ``--inter`` results are cached per module too, with a third key
  component: a fingerprint of the effect summaries of every function
  the module transitively calls in *other* modules — so editing a
  helper's behaviour busts its callers' entries across module
  boundaries, while a comment-only edit (same summary) does not.
* ``--project`` results are cached as **one combined entry** (the
  cross-module rules see the whole tree, so any source or doc change
  invalidates the lot).

Entries whose keys were not touched during a run are pruned on save, so
the file tracks the current tree rather than accreting history.  The
cache is an optimisation only: a missing, unreadable, or corrupt file
means a cold run, never an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.core import Finding

__all__ = ["DEFAULT_CACHE_PATH", "LintCache", "source_hash"]

DEFAULT_CACHE_PATH = ".repro-lint-cache.json"

#: Bumped whenever finding serialization or key derivation changes.
_SCHEMA_VERSION = 1


def source_hash(text: Union[str, bytes]) -> str:
    if isinstance(text, str):
        text = text.encode("utf-8")
    return hashlib.sha256(text).hexdigest()


def _finding_to_entry(finding: Finding) -> Dict[str, object]:
    return finding.to_json()


def _finding_from_entry(entry: Dict[str, object]) -> Finding:
    return Finding(
        path=str(entry["path"]),
        line=int(entry["line"]),  # type: ignore[arg-type]
        col=int(entry["col"]),  # type: ignore[arg-type]
        rule_id=str(entry["rule"]),
        message=str(entry["message"]),
    )


class LintCache:
    """Findings memoized by content-hash keys in one JSON file."""

    def __init__(self, path: Union[str, Path] = DEFAULT_CACHE_PATH) -> None:
        self.path = Path(path)
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, List[Dict[str, object]]] = {}
        self._touched: set = set()
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("schema") != _SCHEMA_VERSION:
            return
        entries = raw.get("entries")
        if isinstance(entries, dict):
            self._entries = {
                key: value
                for key, value in entries.items()
                if isinstance(key, str) and isinstance(value, list)
            }

    # -- lookup ----------------------------------------------------------

    def get(self, key: str) -> Optional[List[Finding]]:
        """Cached findings for ``key``, or None on a miss."""
        self._touched.add(key)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        try:
            findings = [_finding_from_entry(item) for item in entry]  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put(self, key: str, findings: Sequence[Finding]) -> None:
        self._touched.add(key)
        self._entries[key] = [_finding_to_entry(f) for f in findings]

    # -- persistence -----------------------------------------------------

    def save(self) -> None:
        """Write touched entries atomically; prune the untouched rest."""
        payload = {
            "schema": _SCHEMA_VERSION,
            "entries": {
                key: value
                for key, value in self._entries.items()
                if key in self._touched
            },
        }
        text = json.dumps(payload, indent=1, sort_keys=True)
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.path.parent or Path(".")), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(tmp_name, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            # An unwritable cache (read-only checkout, odd CI sandbox)
            # costs a cold run next time, nothing more.
            pass

    # -- key derivation --------------------------------------------------

    @staticmethod
    def flow_key(module_hash: str, fingerprint: str) -> str:
        return f"flow:{module_hash}:{fingerprint}"

    @staticmethod
    def inter_key(
        module_hash: str, fingerprint: str, dep_fingerprint: str
    ) -> str:
        """The dependency-aware ``--inter`` key for one module.

        Source hash × spec/rule fingerprint × callee-summary
        fingerprint: a behavioural edit to a transitively-called helper
        in *another* module changes its summary, which changes the dep
        fingerprint — so the caller's cached entry is correctly busted
        even though the caller's own source did not change.
        """
        return f"inter:{module_hash}:{fingerprint}:{dep_fingerprint}"

    @staticmethod
    def project_key(
        source_hashes: Sequence[str], doc_hashes: Sequence[str], rule_ids: Sequence[str]
    ) -> str:
        digest = hashlib.sha256()
        for item in sorted(source_hashes):
            digest.update(item.encode("utf-8"))
        digest.update(b"|docs|")
        for item in sorted(doc_hashes):
            digest.update(item.encode("utf-8"))
        digest.update(b"|rules|")
        for item in sorted(rule_ids):
            digest.update(item.encode("utf-8"))
        return f"project:{digest.hexdigest()}"
