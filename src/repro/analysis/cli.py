"""``repro-lint`` — run the repo's static-analysis pass from the shell.

Exit codes: 0 clean, 1 findings reported, 2 usage error (unknown rule
id, no such path, unreadable baseline).  ``--format=json`` emits a
stable machine-readable array for CI; the default human format is one
``path:line:col: [rule-id] message`` line per finding.

``--project`` additionally runs the cross-module rules of
:mod:`repro.analysis.xmodule` over the whole tree (metrics drift,
CLI/doc drift, fork safety, error-taxonomy reachability, checkpoint
schema drift).  ``--baseline`` suppresses previously recorded findings
so a new rule can land without blocking on legacy debt.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis.core import RULES, Finding, active_rules, lint_paths

__all__ = ["main", "build_parser"]

#: Doc files ``--project`` auto-discovers next to (or one level above)
#: each analyzed path, unless ``--doc`` overrides them.
_DEFAULT_DOC_NAMES = ("README.md", "DESIGN.md")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="repo-specific static analysis (determinism, pickle "
        "boundary, error taxonomy, parser discipline; --project adds the "
        "cross-module drift and fork-safety rules)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="also run the whole-program (cross-module) rules over the tree",
    )
    parser.add_argument(
        "--doc",
        action="append",
        metavar="FILE",
        help="documentation file for the cli-doc-drift rule (repeatable; "
        "default: README.md/DESIGN.md discovered near each path)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in FILE (a previous --format=json "
        "report); lets new rules land without blocking on legacy findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_ids(values: Optional[Sequence[str]]) -> Optional[List[str]]:
    if values is None:
        return None
    ids: List[str] = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids


def _list_rules() -> str:
    from repro.analysis.xmodule import PROJECT_RULES

    active_rules()  # force catalogue import
    lines = []
    for rule_id, rule in sorted(RULES.items()):
        marker = " (suppression requires a reason)" if rule.require_reason else ""
        lines.append(f"{rule_id}{marker}\n    {rule.summary}")
    lines.append("")
    lines.append("cross-module rules (--project):")
    for rule_id, project_rule in sorted(PROJECT_RULES.items()):
        lines.append(f"{rule_id}\n    {project_rule.summary}")
    return "\n".join(lines)


def _default_docs(paths: Sequence[str]) -> List[Path]:
    """README/DESIGN files living next to (or one above) each path."""
    docs: List[Path] = []
    seen: Set[Path] = set()
    for raw in paths:
        base = Path(raw).resolve()
        directories = [base, base.parent] if base.is_dir() else [base.parent]
        for directory in directories:
            for name in _DEFAULT_DOC_NAMES:
                candidate = directory / name
                if candidate.is_file() and candidate not in seen:
                    seen.add(candidate)
                    docs.append(candidate)
    return docs


def _load_baseline(path: str) -> Set[Tuple[str, str, str]]:
    """Baseline entries as (path, rule, message) — line/col are ignored
    so unrelated edits above a legacy finding don't un-baseline it."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, list):
        raise ValueError("baseline must be a JSON array of findings")
    entries: Set[Tuple[str, str, str]] = set()
    for item in data:
        if isinstance(item, dict):
            entries.add(
                (
                    str(item.get("path", "")),
                    str(item.get("rule", "")),
                    str(item.get("message", "")),
                )
            )
    return entries


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    for raw in args.paths:
        if not Path(raw).exists():
            parser.error(f"no such path: {raw}")

    selected = _split_ids(args.select)
    ignored = _split_ids(args.ignore)

    if args.project:
        from repro.analysis.xmodule import (
            PROJECT_RULES,
            Project,
            active_project_rules,
            analyze_project,
        )

        active_rules()  # force catalogue import before validating ids
        known = set(RULES) | set(PROJECT_RULES)
        unknown = (set(selected or ()) | set(ignored or ())) - known
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        module_rules = active_rules(
            select=None
            if selected is None
            else [rule for rule in selected if rule in RULES],
            ignore=[rule for rule in ignored or () if rule in RULES],
        )
        project_rules = active_project_rules(
            select=None
            if selected is None
            else [rule for rule in selected if rule in PROJECT_RULES],
            ignore=[rule for rule in ignored or () if rule in PROJECT_RULES],
        )
        doc_paths: Sequence[Path] = (
            [Path(doc) for doc in args.doc]
            if args.doc
            else _default_docs(args.paths)
        )
        for doc in doc_paths:
            if not doc.is_file():
                parser.error(f"no such doc file: {doc}")
        findings = lint_paths(args.paths, module_rules)
        project = Project.load(args.paths, docs=doc_paths)
        findings.extend(analyze_project(project, project_rules))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    else:
        try:
            rules = active_rules(select=selected, ignore=ignored)
        except KeyError as exc:
            parser.error(str(exc.args[0]) if exc.args else str(exc))
        findings = lint_paths(args.paths, rules)

    if args.baseline:
        try:
            baseline = _load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot read baseline {args.baseline}: {exc}")
        findings = [
            finding
            for finding in findings
            if (finding.path, finding.rule_id, finding.message) not in baseline
        ]

    _emit(findings, args.format)
    return 1 if findings else 0


def _emit(findings: Sequence[Finding], fmt: str) -> None:
    if fmt == "json":
        print(json.dumps([finding.to_json() for finding in findings], indent=2))
        return
    for finding in findings:
        print(finding.render())
    if findings:
        print(
            f"repro-lint: {len(findings)} finding(s) across "
            f"{len({f.path for f in findings})} file(s)",
            file=sys.stderr,
        )


if __name__ == "__main__":
    sys.exit(main())
