"""``repro-lint`` — run the repo's static-analysis pass from the shell.

Exit codes: 0 clean, 1 findings reported, 2 usage error (unknown rule
id, no such path, unreadable baseline).  ``--format=json`` emits a
stable machine-readable array for CI; the default human format is one
``path:line:col: [rule-id] message`` line per finding.

``--project`` additionally runs the cross-module rules of
:mod:`repro.analysis.xmodule` over the whole tree (metrics drift,
CLI/doc drift, fork safety, error-taxonomy reachability, checkpoint
schema drift).  ``--flow`` additionally runs the path-sensitive rules
of :mod:`repro.analysis.flow` (resource leaks on exception edges, WAL
append-before-mutate ordering, staleness-guard domination, swallowed
count-and-skip tallies).  ``--inter`` (requires ``--flow``) adds the
summary-based interprocedural rules of :mod:`repro.analysis.inter` —
cross-function ownership, helper-hidden WAL mutations, and the shm
epoch protocol.  ``--baseline`` suppresses previously recorded findings
(path-sensitive witnesses are normalized, so a recorded flow finding
survives unrelated line drift) so a new rule can land without blocking
on legacy debt.  ``--cache [FILE]`` memoizes the expensive
``--project``/``--flow``/``--inter`` results by content hash (default
file: ``.repro-lint-cache.json``); ``--inter`` keys are
dependency-aware — they fold in the effect summaries of out-of-module
callees.  ``--format=sarif`` emits SARIF 2.1.0 for GitHub code
scanning.  ``--timings`` prints a per-rule timing table to stderr, and
``--budget SECONDS`` fails the run when the ``--inter`` pass exceeds
its time budget.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    RULES,
    Finding,
    active_rules,
    apply_suppressions,
    lint_paths,
)

__all__ = ["main", "build_parser"]

#: Doc files ``--project`` auto-discovers next to (or one level above)
#: each analyzed path, unless ``--doc`` overrides them.
_DEFAULT_DOC_NAMES = ("README.md", "DESIGN.md")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="repo-specific static analysis (determinism, pickle "
        "boundary, error taxonomy, parser discipline; --project adds the "
        "cross-module drift and fork-safety rules; --flow adds the "
        "path-sensitive lifecycle rules)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human); sarif emits SARIF 2.1.0 "
        "for GitHub code scanning",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="also run the whole-program (cross-module) rules over the tree",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the path-sensitive (CFG/typestate) rules: resource "
        "leaks on exception edges, WAL ordering, staleness guards, "
        "swallowed truncation tallies",
    )
    parser.add_argument(
        "--inter",
        action="store_true",
        help="with --flow: also run the summary-based interprocedural "
        "rules (cross-function resource ownership, helper-hidden WAL "
        "mutations, shm epoch protocol)",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print a per-rule timing table for the --flow/--inter "
        "passes to stderr",
    )
    parser.add_argument(
        "--budget",
        type=float,
        metavar="SECONDS",
        help="fail (exit 1) when the --inter pass exceeds this many "
        "seconds — keeps the interprocedural fixpoint honest as the "
        "tree grows",
    )
    parser.add_argument(
        "--doc",
        action="append",
        metavar="FILE",
        help="documentation file for the cli-doc-drift rule (repeatable; "
        "default: README.md/DESIGN.md discovered near each path)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in FILE (a previous --format=json "
        "report); lets new rules land without blocking on legacy findings",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const=".repro-lint-cache.json",
        metavar="FILE",
        help="memoize --project/--flow results by content hash in FILE "
        "(default: .repro-lint-cache.json); unchanged modules are not "
        "re-analyzed",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_ids(values: Optional[Sequence[str]]) -> Optional[List[str]]:
    if values is None:
        return None
    ids: List[str] = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids


def _list_rules() -> str:
    from repro.analysis.flow import FLOW_RULES
    from repro.analysis.xmodule import PROJECT_RULES

    active_rules()  # force catalogue import
    lines = []
    for rule_id, rule in sorted(RULES.items()):
        marker = " (suppression requires a reason)" if rule.require_reason else ""
        lines.append(f"{rule_id}{marker}\n    {rule.summary}")
    lines.append("")
    lines.append("cross-module rules (--project):")
    for rule_id, project_rule in sorted(PROJECT_RULES.items()):
        lines.append(f"{rule_id}\n    {project_rule.summary}")
    lines.append("")
    lines.append("path-sensitive rules (--flow):")
    for rule_id, flow_rule in sorted(FLOW_RULES.items()):
        lines.append(f"{rule_id}\n    {flow_rule.summary}")
    from repro.analysis.inter import INTER_RULES

    lines.append("")
    lines.append("interprocedural rules (--flow --inter):")
    for rule_id, inter_rule in sorted(INTER_RULES.items()):
        lines.append(f"{rule_id}\n    {inter_rule.summary}")
    return "\n".join(lines)


def _default_docs(paths: Sequence[str]) -> List[Path]:
    """README/DESIGN files living next to (or one above) each path."""
    docs: List[Path] = []
    seen: Set[Path] = set()
    for raw in paths:
        base = Path(raw).resolve()
        directories = [base, base.parent] if base.is_dir() else [base.parent]
        for directory in directories:
            for name in _DEFAULT_DOC_NAMES:
                candidate = directory / name
                if candidate.is_file() and candidate not in seen:
                    seen.add(candidate)
                    docs.append(candidate)
    return docs


#: Path-sensitive messages embed a concrete witness ("via line(s)
#: 3 -> 5 to exception exit") whose line numbers drift under unrelated
#: edits; baseline matching strips it from both sides.
_WITNESS_RE = re.compile(r" \((?:via line\(s\) |straight to )[^)]*\)")


def _normalize_message(message: str) -> str:
    return _WITNESS_RE.sub("", message)


def _load_baseline(path: str) -> Set[Tuple[str, str, str]]:
    """Baseline entries as (path, rule, normalized message) — line/col
    and path witnesses are ignored so unrelated edits above a legacy
    finding don't un-baseline it.  Covers every pass, ``--flow`` and
    ``--inter`` findings included."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, list):
        raise ValueError("baseline must be a JSON array of findings")
    entries: Set[Tuple[str, str, str]] = set()
    for item in data:
        if isinstance(item, dict):
            entries.add(
                (
                    str(item.get("path", "")),
                    str(item.get("rule", "")),
                    _normalize_message(str(item.get("message", ""))),
                )
            )
    return entries


class _TimedRule:
    """Wraps a rule so its check() time accrues to a timings table."""

    def __init__(self, rule, label: str, timings: Dict[str, float]) -> None:
        self.rule_id = rule.rule_id
        self.summary = rule.summary
        self.rationale = rule.rationale
        self._rule = rule
        self._label = label
        self._timings = timings

    def check(self, *args, **kwargs):
        start = time.perf_counter()
        try:
            return list(self._rule.check(*args, **kwargs))
        finally:
            elapsed = time.perf_counter() - start
            self._timings[self._label] = (
                self._timings.get(self._label, 0.0) + elapsed
            )


def _timed(rules, prefix: str, timings: Optional[Dict[str, float]]):
    if timings is None:
        return rules
    return [
        _TimedRule(rule, f"{prefix}:{rule.rule_id}", timings) for rule in rules
    ]


def _print_timings(timings: Dict[str, float]) -> None:
    if not timings:
        return
    width = max(len(label) for label in timings)
    print("repro-lint timings:", file=sys.stderr)
    for label, seconds in sorted(timings.items(), key=lambda kv: -kv[1]):
        print(f"  {label:<{width}}  {seconds * 1000:9.1f} ms", file=sys.stderr)


def _run_project(
    args: argparse.Namespace,
    parser: argparse.ArgumentParser,
    selected: Optional[List[str]],
    ignored: Optional[List[str]],
    cache: Optional["LintCache"],
) -> List[Finding]:
    from repro.analysis.cache import LintCache, source_hash
    from repro.analysis.xmodule import (
        PROJECT_RULES,
        Project,
        active_project_rules,
        analyze_project,
    )

    project_rules = active_project_rules(
        select=None
        if selected is None
        else [rule for rule in selected if rule in PROJECT_RULES],
        ignore=[rule for rule in ignored or () if rule in PROJECT_RULES],
    )
    doc_paths: Sequence[Path] = (
        [Path(doc) for doc in args.doc]
        if args.doc
        else _default_docs(args.paths)
    )
    for doc in doc_paths:
        if not doc.is_file():
            parser.error(f"no such doc file: {doc}")

    key: Optional[str] = None
    if cache is not None:
        from repro.analysis.core import _iter_python_files

        try:
            source_hashes = [
                source_hash(path.read_bytes())
                for path in _iter_python_files(args.paths)
            ]
            doc_hashes = [source_hash(doc.read_bytes()) for doc in doc_paths]
        except OSError:
            source_hashes = None  # type: ignore[assignment]
        if source_hashes is not None:
            key = LintCache.project_key(
                source_hashes,
                doc_hashes,
                [rule.rule_id for rule in project_rules],
            )
            cached = cache.get(key)
            if cached is not None:
                return cached

    project = Project.load(args.paths, docs=doc_paths)
    findings = analyze_project(project, project_rules)
    if cache is not None and key is not None:
        cache.put(key, findings)
    return findings


def _run_flow(
    args: argparse.Namespace,
    selected: Optional[List[str]],
    ignored: Optional[List[str]],
    cache: Optional["LintCache"],
    timings: Optional[Dict[str, float]] = None,
) -> List[Finding]:
    from repro.analysis.cache import LintCache, source_hash
    from repro.analysis.flow import (
        FLOW_RULES,
        active_flow_rules,
        collect_specs,
        flow_findings_for_module,
        load_flow_modules,
        spec_fingerprint,
    )

    flow_rules = active_flow_rules(
        select=None
        if selected is None
        else [rule for rule in selected if rule in FLOW_RULES],
        ignore=[rule for rule in ignored or () if rule in FLOW_RULES],
    )
    rule_ids = sorted(rule.rule_id for rule in flow_rules)
    modules, findings = load_flow_modules(args.paths)
    specs, spec_findings = collect_specs(modules)
    findings.extend(f for f in spec_findings if f.rule_id in set(rule_ids))
    fingerprint = spec_fingerprint(specs, rule_ids)
    timed_rules = _timed(flow_rules, "flow", timings)
    for module in modules:
        key: Optional[str] = None
        if cache is not None:
            key = LintCache.flow_key(source_hash(module.source), fingerprint)
            cached = cache.get(key)
            if cached is not None:
                findings.extend(cached)
                continue
        module_findings = flow_findings_for_module(module, specs, timed_rules)
        if cache is not None and key is not None:
            cache.put(key, module_findings)
        findings.extend(module_findings)
    if args.inter:
        findings.extend(
            _run_inter(args, selected, ignored, cache, modules, specs, timings)
        )
    return apply_suppressions(findings, modules)


def _run_inter(
    args: argparse.Namespace,
    selected: Optional[List[str]],
    ignored: Optional[List[str]],
    cache: Optional["LintCache"],
    modules,
    specs,
    timings: Optional[Dict[str, float]] = None,
) -> List[Finding]:
    """The summary-based interprocedural pass over the ``--flow`` modules.

    Cache keys are dependency-aware: each module's key folds in the
    effect-summary fingerprint of its transitive out-of-module callees,
    so a behavioural edit to a helper busts its callers' entries.
    """
    from repro.analysis.cache import LintCache, source_hash
    from repro.analysis.flow import spec_fingerprint
    from repro.analysis.inter import (
        INTER_RULES,
        active_inter_rules,
        build_inter_context,
        dep_fingerprint,
        inter_findings_for_module,
    )

    inter_rules = active_inter_rules(
        select=None
        if selected is None
        else [rule for rule in selected if rule in INTER_RULES],
        ignore=[rule for rule in ignored or () if rule in INTER_RULES],
    )
    rule_ids = sorted(rule.rule_id for rule in inter_rules)
    fingerprint = spec_fingerprint(specs, ["inter"] + rule_ids)
    start = time.perf_counter()
    context = build_inter_context(modules, specs)
    if timings is not None:
        timings["inter:summaries"] = time.perf_counter() - start
    timed_rules = _timed(inter_rules, "inter", timings)
    findings: List[Finding] = []
    for module in modules:
        key: Optional[str] = None
        if cache is not None:
            key = LintCache.inter_key(
                source_hash(module.source),
                fingerprint,
                dep_fingerprint(module, context),
            )
            cached = cache.get(key)
            if cached is not None:
                findings.extend(cached)
                continue
        module_findings = inter_findings_for_module(
            module, context, timed_rules
        )
        if cache is not None and key is not None:
            cache.put(key, module_findings)
        findings.extend(module_findings)
    elapsed = time.perf_counter() - start
    if timings is not None:
        timings["inter:total"] = elapsed
    if args.budget is not None and elapsed > args.budget:
        print(
            f"repro-lint: --inter pass took {elapsed:.1f}s, over the "
            f"{args.budget:.1f}s budget",
            file=sys.stderr,
        )
        args._budget_exceeded = True
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    if args.inter and not args.flow:
        parser.error("--inter requires --flow")

    for raw in args.paths:
        if not Path(raw).exists():
            parser.error(f"no such path: {raw}")

    selected = _split_ids(args.select)
    ignored = _split_ids(args.ignore)

    active_rules()  # force catalogue import before validating ids
    known = set(RULES)
    if args.project:
        from repro.analysis.xmodule import PROJECT_RULES

        known |= set(PROJECT_RULES)
    if args.flow:
        from repro.analysis.flow import FLOW_RULES

        known |= set(FLOW_RULES)
    if args.inter:
        from repro.analysis.inter import INTER_RULES

        known |= set(INTER_RULES)
    unknown = (set(selected or ()) | set(ignored or ())) - known
    if unknown:
        parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")

    cache = None
    if args.cache:
        from repro.analysis.cache import LintCache

        cache = LintCache(args.cache)

    module_rules = active_rules(
        select=None
        if selected is None
        else [rule for rule in selected if rule in RULES],
        ignore=[rule for rule in ignored or () if rule in RULES],
    )
    timings: Optional[Dict[str, float]] = (
        {} if (args.timings or args.budget is not None) else None
    )
    args._budget_exceeded = False
    findings = lint_paths(args.paths, module_rules)
    if args.project:
        findings.extend(_run_project(args, parser, selected, ignored, cache))
    if args.flow:
        findings.extend(_run_flow(args, selected, ignored, cache, timings))
    if cache is not None:
        cache.save()
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))

    if args.baseline:
        try:
            baseline = _load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot read baseline {args.baseline}: {exc}")
        findings = [
            finding
            for finding in findings
            if (
                finding.path,
                finding.rule_id,
                _normalize_message(finding.message),
            )
            not in baseline
        ]

    if args.timings and timings is not None:
        _print_timings(timings)
    _emit(findings, args.format)
    if args._budget_exceeded:
        return 1
    return 1 if findings else 0


def _emit(findings: Sequence[Finding], fmt: str) -> None:
    if fmt == "sarif":
        from repro.analysis.sarif import sarif_json

        print(sarif_json(findings))
        return
    if fmt == "json":
        print(json.dumps([finding.to_json() for finding in findings], indent=2))
        return
    for finding in findings:
        print(finding.render())
    if findings:
        print(
            f"repro-lint: {len(findings)} finding(s) across "
            f"{len({f.path for f in findings})} file(s)",
            file=sys.stderr,
        )


if __name__ == "__main__":
    sys.exit(main())
