"""``repro-lint`` — run the repo's static-analysis pass from the shell.

Exit codes: 0 clean, 1 findings reported, 2 usage error (unknown rule
id, no such path).  ``--format=json`` emits a stable machine-readable
array for CI; the default human format is one ``path:line:col:
[rule-id] message`` line per finding.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.core import RULES, active_rules, lint_paths

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="repo-specific static analysis (determinism, pickle "
        "boundary, error taxonomy, parser discipline)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_ids(values: Optional[Sequence[str]]) -> Optional[List[str]]:
    if values is None:
        return None
    ids: List[str] = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids


def _list_rules() -> str:
    active_rules()  # force catalogue import
    lines = []
    for rule_id, rule in sorted(RULES.items()):
        marker = " (suppression requires a reason)" if rule.require_reason else ""
        lines.append(f"{rule_id}{marker}\n    {rule.summary}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    for raw in args.paths:
        if not Path(raw).exists():
            parser.error(f"no such path: {raw}")

    try:
        rules = active_rules(
            select=_split_ids(args.select), ignore=_split_ids(args.ignore)
        )
    except KeyError as exc:
        parser.error(str(exc.args[0]) if exc.args else str(exc))

    findings = lint_paths(args.paths, rules)

    if args.format == "json":
        print(json.dumps([finding.to_json() for finding in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(
                f"repro-lint: {len(findings)} finding(s) across "
                f"{len({f.path for f in findings})} file(s)",
                file=sys.stderr,
            )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
