"""The lint engine: modules, findings, suppressions, and the registry.

``repro-lint`` is an AST-based static-analysis pass for *this
repository's* invariants — the properties the engine's bit-identical
guarantees rest on (seeded RNG discipline, picklability across the
worker boundary, the :mod:`repro.errors` taxonomy) that generic linters
cannot know about.  The machinery is deliberately small:

* :class:`LintModule` — one parsed source file: its dotted module name,
  AST, a parent map for scope queries, and the suppression comments
  scanned from its tokens.
* :class:`Rule` — a check over one module.  Rules register themselves
  into :data:`RULES` with :func:`register` and yield
  :class:`Finding` objects.
* :func:`lint_paths` / :func:`lint_source` — the entry points: walk
  files (or take a source string), run every active rule, apply
  suppressions, and return findings sorted by location.

Suppression syntax — one comment on the offending line::

    something_flagged()  # lint: ignore[rule-id]
    something_flagged()  # lint: ignore[rule-id] -- why this is safe

Several ids may be listed (``ignore[a, b]``).  Rules with
``require_reason`` (the error-taxonomy check) accept only the second
form: a bare ``ignore`` without a reason is itself reported.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

__all__ = [
    "Finding",
    "Suppression",
    "LintModule",
    "Rule",
    "RULES",
    "register",
    "active_rules",
    "apply_suppressions",
    "lint_module",
    "lint_source",
    "lint_paths",
    "module_name_for",
]

#: ``# lint: ignore[rule-a, rule-b]`` with an optional ``-- reason``.
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*ignore\[([A-Za-z0-9_\-, ]+)\]\s*(?:--\s*(?P<reason>\S.*))?"
)

#: Scopes that shield a node from "module level" (import-time) status.
_FUNCTION_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass(frozen=True)
class Finding:
    """One reported violation, anchored to a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """Human form: ``path:line:col: [rule-id] message``."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule_id}] {self.message}"

    def to_json(self) -> Dict[str, object]:
        """JSON form (stable keys, plain types)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One ``# lint: ignore[...]`` comment on one line."""

    rule_ids: Tuple[str, ...]
    reason: str

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rule_ids


def _scan_suppressions(source: str) -> Dict[int, Suppression]:
    """Map line number → suppression for every lint comment in ``source``.

    Tokenising (rather than regexing raw lines) keeps a ``# lint:``
    sequence inside a string literal from registering as a suppression.
    """
    suppressions: Dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            ids = tuple(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            reason = (match.group("reason") or "").strip()
            suppressions[token.start[0]] = Suppression(ids, reason)
    except tokenize.TokenError:
        # The AST parse will have raised (or will raise) a clearer error.
        pass
    return suppressions


def module_name_for(path: Union[str, Path]) -> str:
    """Best-effort dotted module name for ``path``.

    Recognises the ``src/<package>/...`` layout; outside it, falls back
    to the dotted path from the last ``repro`` component, or the bare
    stem — rules that scope by package simply do not fire on files whose
    package cannot be determined.
    """
    parts = Path(path).parts
    anchor: Optional[int] = None
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "src" and index + 1 < len(parts):
            anchor = index + 1
            break
        if parts[index] == "repro" and anchor is None:
            anchor = index
    if anchor is None:
        anchor = len(parts) - 1
    dotted = [part for part in parts[anchor:]]
    if dotted and dotted[-1].endswith(".py"):
        dotted[-1] = dotted[-1][: -len(".py")]
    if dotted and dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


class LintModule:
    """One parsed source file plus the scope/suppression context rules need."""

    def __init__(
        self,
        source: str,
        path: str = "<string>",
        module: Optional[str] = None,
    ) -> None:
        self.source = source
        self.path = path
        self.module = module if module is not None else module_name_for(path)
        self.tree = ast.parse(source, filename=path)
        self.suppressions = _scan_suppressions(source)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    # -- scope queries ---------------------------------------------------

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child → parent map over the whole tree (built lazily once)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]]:
        """The innermost function/lambda containing ``node``, or None."""
        parents = self.parents
        current = parents.get(node)
        while current is not None:
            if isinstance(current, _FUNCTION_SCOPES):
                return current
            current = parents.get(current)
        return None

    def at_module_level(self, node: ast.AST) -> bool:
        """True when no function scope shields ``node`` from import time."""
        return self.enclosing_function(node) is None

    def in_package(self, *packages: str) -> bool:
        """True when this module lives in (or is) any of ``packages``."""
        for package in packages:
            if self.module == package or self.module.startswith(package + "."):
                return True
        return False


class Rule:
    """Base class for one registered check.

    Subclasses set ``rule_id`` (the suppression handle), ``summary``
    (one line for ``--list-rules``), ``rationale`` (why the repo cares),
    and implement :meth:`check`.  ``require_reason`` rules accept only
    reasoned suppressions.
    """

    rule_id: str = ""
    summary: str = ""
    rationale: str = ""
    require_reason: bool = False

    def check(self, module: LintModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: LintModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


#: The registry: rule id → singleton rule instance.
RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in RULES:
        raise ValueError(f"duplicate rule id: {cls.rule_id}")
    RULES[cls.rule_id] = cls()
    return cls


def active_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """Resolve ``--select`` / ``--ignore`` into a rule list."""
    _ensure_rules_loaded()
    wanted = set(select) if select is not None else set(RULES)
    wanted -= set(ignore or ())
    unknown = wanted - set(RULES)
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [rule for rule_id, rule in sorted(RULES.items()) if rule_id in wanted]


def _ensure_rules_loaded() -> None:
    # The rule catalogue registers on import; import lazily so that
    # ``core`` stays import-cycle-free for the rules module itself.
    from repro.analysis import rules  # noqa: F401  (import registers)


def apply_suppressions(
    findings: Iterable[Finding], modules: Iterable[LintModule]
) -> List[Finding]:
    """Filter ``findings`` through per-line ``# lint: ignore`` comments.

    The one suppression channel every pass shares: per-file AST rules,
    the ``--project`` cross-module rules, and the ``--flow``
    path-sensitive rules all honour the same comment on the line a
    finding is anchored to.  Findings anchored outside the analyzed
    modules (prose docs) pass through — they have no comment to carry a
    suppression.  Deduplicates and sorts, so callers can feed raw rule
    output straight in.
    """
    by_path = {module.path: module for module in modules}
    kept: List[Finding] = []
    seen: set = set()
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None:
            suppression = module.suppressions.get(finding.line)
            if suppression is not None and suppression.covers(finding.rule_id):
                continue
        key = (finding.path, finding.line, finding.rule_id, finding.message)
        if key in seen:
            continue
        seen.add(key)
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return kept


def lint_module(
    module: LintModule, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Run ``rules`` (default: all registered) over one module."""
    if rules is None:
        rules = active_rules()
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(module):
            suppression = module.suppressions.get(finding.line)
            if suppression is not None and suppression.covers(finding.rule_id):
                if rule.require_reason and not suppression.reason:
                    findings.append(
                        Finding(
                            path=finding.path,
                            line=finding.line,
                            col=finding.col,
                            rule_id=finding.rule_id,
                            message=(
                                f"suppressing {finding.rule_id} requires a "
                                "reason: use "
                                f"'# lint: ignore[{finding.rule_id}] -- why'"
                            ),
                        )
                    )
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint a source string (the test suite's entry point).

    ``module`` overrides the dotted-name guess from ``path`` so fixture
    snippets can opt into package-scoped rules (pass e.g.
    ``module="repro.engine.fake"`` to enable the hot-path checks).
    """
    return lint_module(LintModule(source, path=path, module=module), rules)


def _iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    A file that fails to read or parse contributes a single
    ``syntax-error`` pseudo-finding rather than aborting the run — a
    lint gate must report a broken file, not crash on it.
    """
    if rules is None:
        rules = active_rules()
    findings: List[Finding] = []
    for file_path in _iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
            module = LintModule(source, path=str(file_path))
        except (OSError, SyntaxError, ValueError) as exc:
            findings.append(
                Finding(
                    path=str(file_path),
                    line=getattr(exc, "lineno", 0) or 0,
                    col=getattr(exc, "offset", 0) or 0,
                    rule_id="syntax-error",
                    message=f"cannot lint file: {exc}",
                )
            )
            continue
        findings.extend(lint_module(module, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
