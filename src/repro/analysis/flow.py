"""Path-sensitive dataflow: CFGs, a worklist engine, and typestate rules.

The per-module rules (:mod:`repro.analysis.rules`) and the cross-module
rules (:mod:`repro.analysis.xmodule`) are syntactic — they can see that
a module calls ``SharedMemory(create=True)`` and ``unlink`` *somewhere*,
but not that an exception edge skips the unlink.  PRs 6–8 made
correctness depend on exactly those lifecycle protocols (WAL
append-before-mutate, segment create→publish→unlink on every exit path,
the shm generation handshake), so this module adds the missing layer:

* :func:`build_cfg` — an intraprocedural control-flow graph per
  function: basic blocks of statements, with ``true``/``false`` branch
  edges, loop ``back`` edges, ``with`` unwind blocks, ``finally``
  duplication per continuation (fallthrough / exception / return /
  break / continue each get their own copy, the classic modeling), and
  — critically — an ``except`` edge for every statement that can raise,
  originating at the statement's index inside its block so mid-block
  exception state is exact.
* :func:`run_worklist` / :func:`reaching_definitions` — a generic
  forward worklist engine over the CFG and its standard client.
* :func:`reach_without` — the typestate core: BFS over
  ``(block, statement)`` positions that asks "is there a real path from
  *here* that reaches *there* without passing a neutralising statement?"
  and returns the witness path (the actual edge sequence) when one
  exists.  Every path-sensitive rule below is a thin wrapper around it.

Four rules ship behind ``repro-lint --flow``, driven by declarative
lifecycle specs — built-in defaults here, plus ``FLOW_SPECS`` literal
tuples declared next to the code they govern (``repro.engine.shm``,
``repro.serve.wal``, ``repro.serve.daemon``):

``resource-leak``
    acquire → [use]* → release typestate: a tracked resource acquired
    on some path must reach a release on *all* paths, including
    exception edges.  Inside ``__init__`` a ``self.attr = acquire()``
    is tracked too, but only the *exceptional* exit counts as a leak
    (on normal exit the instance owns it) — a half-constructed object
    nobody can release is exactly the WAL/shm teardown gap class.
``wal-order``
    a must-precede spec: in the functions it names, no ``self`` state
    mutation may be reachable before the append call on any path.
``stale-epoch-read``
    reads named by the spec must be guard-dominated: every path from
    function entry (or from the latest invalidating call) to the read
    passes a staleness-check call.
``unchecked-truncation``
    count-and-skip tallies incremented on a path that reaches a normal
    return without the report object ever escaping (returned, passed
    on, raised with) are silently dropped counts.

Known imprecision (deliberate, documented in DESIGN.md): "can raise"
is a syntactic over-approximation (calls, subscripts, ``raise``,
``assert``, ``await``, imports — not bare name/attribute loads); escape
analysis is flow-insensitive (a resource that is ever returned, stored,
aliased, shipped in a container, or captured by a nested function stops
being tracked rather than risk false positives); a release call is
treated as effective even on its own exception edge (a failing
``close()`` would otherwise make every ``finally`` block a finding);
and ``except Exception`` is *not* exhaustive (``BaseException`` still
propagates — only a bare ``except`` or ``except BaseException`` seals
the propagation edge).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
    Union,
)

from repro.analysis.core import (
    Finding,
    LintModule,
    _iter_python_files,
    apply_suppressions,
)

__all__ = [
    "CFG",
    "Block",
    "Edge",
    "build_cfg",
    "run_worklist",
    "reaching_definitions",
    "reach_without",
    "STOP_NORMAL_ONLY",
    "PathWitness",
    "FlowRule",
    "FLOW_RULES",
    "register_flow",
    "active_flow_rules",
    "collect_specs",
    "spec_fingerprint",
    "analyze_flow",
    "flow_findings_for_module",
    "load_flow_modules",
    "find_resource_leaks",
]


# -- pseudo-statements ------------------------------------------------------
#
# Blocks hold plain ``ast.stmt`` nodes plus four pseudo-entries for the
# control constructs whose *effects* matter to dataflow but whose bodies
# live in other blocks.


@dataclass(frozen=True)
class TestExpr:
    """A branch or loop test evaluated at its position in the block."""

    node: ast.expr


@dataclass(frozen=True)
class ForIter:
    """The implicit ``next()`` + target binding at a ``for`` loop head."""

    node: ast.stmt  # the For/AsyncFor node


@dataclass(frozen=True)
class WithEnter:
    """The context-manager entries of a ``with`` statement (items only)."""

    node: ast.stmt  # the With/AsyncWith node


@dataclass(frozen=True)
class WithExit:
    """The implicit ``__exit__`` calls unwinding a ``with`` block.

    ``names`` are the context variables this exit releases — as-names,
    plus bare ``Name``/``self.attr`` context expressions.
    """

    node: ast.stmt
    names: Tuple[str, ...]


Entry = Union[ast.stmt, TestExpr, ForIter, WithEnter, WithExit]

_PSEUDO = (TestExpr, ForIter, WithEnter, WithExit)


def entry_node(entry: Entry) -> ast.AST:
    return entry.node if isinstance(entry, _PSEUDO) else entry


def entry_line(entry: Entry) -> int:
    return getattr(entry_node(entry), "lineno", 0)


# -- the graph --------------------------------------------------------------


class Block:
    """One basic block: a label (for tests/debugging) and its entries."""

    __slots__ = ("index", "label", "entries")

    def __init__(self, index: int, label: str) -> None:
        self.index = index
        self.label = label
        self.entries: List[Entry] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block {self.index} {self.label!r} n={len(self.entries)}>"


@dataclass(frozen=True)
class Edge:
    """A CFG edge.

    ``origin`` is the index of the entry an ``except`` edge leaves from
    (mid-block), or ``None`` for block-end edges — the typestate engine
    uses it to apply exactly the effects that precede the raise.
    """

    src: int
    dst: int
    kind: str  # flow | true | false | back | except | return | break | continue
    origin: Optional[int] = None


class CFG:
    """Control-flow graph of one function.

    ``entry`` is the (empty) entry block, ``exit`` the normal-return
    exit, ``raise_exit`` the exceptional exit — an unhandled exception
    anywhere in the function reaches ``raise_exit``.
    """

    def __init__(self, name: str, node: ast.AST) -> None:
        self.name = name
        self.node = node
        self.blocks: List[Block] = []
        self.edges: List[Edge] = []
        self._edge_set: Set[Edge] = set()
        self._succs: Dict[int, List[Edge]] = {}
        self._preds: Dict[int, List[Edge]] = {}
        self.entry = self.new_block("entry").index
        self.exit = self.new_block("exit").index
        self.raise_exit = self.new_block("raise-exit").index

    def new_block(self, label: str) -> Block:
        block = Block(len(self.blocks), label)
        self.blocks.append(block)
        return block

    def add_edge(
        self, src: int, dst: int, kind: str, origin: Optional[int] = None
    ) -> None:
        edge = Edge(src, dst, kind, origin)
        if edge in self._edge_set:
            return
        self._edge_set.add(edge)
        self.edges.append(edge)
        self._succs.setdefault(src, []).append(edge)
        self._preds.setdefault(dst, []).append(edge)

    def succs(self, index: int) -> List[Edge]:
        return self._succs.get(index, [])

    def preds(self, index: int) -> List[Edge]:
        return self._preds.get(index, [])

    def blocks_labeled(self, label: str) -> List[Block]:
        return [block for block in self.blocks if block.label == label]


# -- "can this raise" -------------------------------------------------------

_RAISING_SUBNODES = (ast.Call, ast.Subscript, ast.Raise, ast.Assert, ast.Await)
_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _can_raise(entry: Entry) -> bool:
    if isinstance(entry, WithExit):
        return False
    if isinstance(entry, (WithEnter, ForIter)):
        return True
    node = entry.node if isinstance(entry, TestExpr) else entry
    if isinstance(node, (ast.Raise, ast.Assert, ast.Import, ast.ImportFrom)):
        return True
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        # Defining a function runs decorators and defaults, not the body.
        return bool(node.decorator_list) or bool(
            node.args.defaults or node.args.kw_defaults
        )
    if isinstance(node, ast.ClassDef):
        return True
    return any(isinstance(sub, _RAISING_SUBNODES) for sub in ast.walk(node))


def _const_truth(node: ast.expr) -> Optional[bool]:
    if isinstance(node, ast.Constant):
        return bool(node.value)
    return None


def _handler_catches_all(type_node: Optional[ast.expr]) -> bool:
    if type_node is None:
        return True
    names = []
    if isinstance(type_node, ast.Tuple):
        names = [e for e in type_node.elts]
    else:
        names = [type_node]
    return any(
        isinstance(n, ast.Name) and n.id == "BaseException" for n in names
    )


# -- the builder ------------------------------------------------------------


class _LoopFrame:
    __slots__ = ("head", "after")

    def __init__(self, head: int, after: int) -> None:
        self.head = head
        self.after = after


class _FinallyFrame:
    __slots__ = ("finalbody", "outer_raise")

    def __init__(self, finalbody: List[ast.stmt], outer_raise: int) -> None:
        self.finalbody = finalbody
        self.outer_raise = outer_raise


class _WithFrame:
    __slots__ = ("node", "names", "outer_raise")

    def __init__(
        self, node: ast.stmt, names: Tuple[str, ...], outer_raise: int
    ) -> None:
        self.node = node
        self.names = names
        self.outer_raise = outer_raise


_CLEANUP_FRAMES = (_FinallyFrame, _WithFrame)


class _CfgBuilder:
    def __init__(self, func: ast.AST, name: str) -> None:
        self.cfg = CFG(name, func)
        body_entry = self.cfg.new_block("body")
        self.cfg.add_edge(self.cfg.entry, body_entry.index, "flow")
        self.current: Optional[int] = body_entry.index
        self.raise_target: int = self.cfg.raise_exit
        self.frames: List[object] = []

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        self._stmts(body)
        if self.current is not None:
            self.cfg.add_edge(self.current, self.cfg.exit, "flow")
        return self.cfg

    # -- plumbing --------------------------------------------------------

    def _block(self) -> int:
        if self.current is None:
            # Unreachable code after a jump: keep the statements in an
            # orphan block so they still exist, with no incoming edges.
            self.current = self.cfg.new_block("unreachable").index
        return self.current

    def _append(self, entry: Entry) -> None:
        index = self._block()
        block = self.cfg.blocks[index]
        block.entries.append(entry)
        if _can_raise(entry):
            self.cfg.add_edge(
                index, self.raise_target, "except", origin=len(block.entries) - 1
            )

    def _detached(
        self,
        stmts: Sequence[ast.stmt],
        raise_target: int,
        frames: Sequence[object],
        label: str,
    ) -> Tuple[int, Optional[int]]:
        """Build ``stmts`` as a fresh chain; return (entry, end) blocks."""
        saved = (self.current, self.raise_target, self.frames)
        entry = self.cfg.new_block(label).index
        self.current = entry
        self.raise_target = raise_target
        self.frames = list(frames)
        self._stmts(stmts)
        end = self.current
        self.current, self.raise_target, self.frames = saved
        return entry, end

    def _stmts(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._for(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
        elif isinstance(stmt, ast.Try):
            self._try(stmt)
        elif isinstance(stmt, ast.Return):
            self._append(stmt)
            self._jump_through(None, "return")
            self.current = None
        elif isinstance(stmt, ast.Raise):
            self._append(stmt)  # the except edge is the only way out
            self.current = None
        elif isinstance(stmt, ast.Break):
            self._jump_through(_LoopFrame, "break")
            self.current = None
        elif isinstance(stmt, ast.Continue):
            self._jump_through(_LoopFrame, "continue")
            self.current = None
        else:
            self._append(stmt)

    # -- structured statements -------------------------------------------

    def _if(self, node: ast.If) -> None:
        self._append(TestExpr(node.test))
        cond = self._block()
        then_entry = self.cfg.new_block("then").index
        self.cfg.add_edge(cond, then_entry, "true")
        self.current = then_entry
        self._stmts(node.body)
        then_end = self.current
        else_end: Optional[int] = None
        if node.orelse:
            else_entry = self.cfg.new_block("else").index
            self.cfg.add_edge(cond, else_entry, "false")
            self.current = else_entry
            self._stmts(node.orelse)
            else_end = self.current
        joins: List[Tuple[int, str]] = []
        if then_end is not None:
            joins.append((then_end, "flow"))
        if node.orelse:
            if else_end is not None:
                joins.append((else_end, "flow"))
        else:
            joins.append((cond, "false"))
        if joins:
            join = self.cfg.new_block("after-if").index
            for src, kind in joins:
                self.cfg.add_edge(src, join, kind)
            self.current = join
        else:
            self.current = None

    def _while(self, node: ast.While) -> None:
        head = self.cfg.new_block("while-head").index
        self.cfg.add_edge(self._block(), head, "flow")
        self.current = head
        self._append(TestExpr(node.test))
        truth = _const_truth(node.test)
        after = self.cfg.new_block("after-while").index
        body_entry = self.cfg.new_block("while-body").index
        if truth is not False:
            self.cfg.add_edge(head, body_entry, "true")
        false_target = after
        if node.orelse:
            else_entry = self.cfg.new_block("loop-else").index
            false_target = else_entry
        if truth is not True:
            self.cfg.add_edge(head, false_target, "false")
        self.frames.append(_LoopFrame(head, after))
        self.current = body_entry
        self._stmts(node.body)
        if self.current is not None:
            self.cfg.add_edge(self.current, head, "back")
        self.frames.pop()
        if node.orelse:
            self.current = false_target
            self._stmts(node.orelse)
            if self.current is not None:
                self.cfg.add_edge(self.current, after, "flow")
        self.current = after if self.cfg.preds(after) else None

    def _for(self, node: Union[ast.For, ast.AsyncFor]) -> None:
        self._append(TestExpr(node.iter))
        head = self.cfg.new_block("for-head").index
        self.cfg.add_edge(self._block(), head, "flow")
        self.current = head
        self._append(ForIter(node))
        after = self.cfg.new_block("after-for").index
        body_entry = self.cfg.new_block("for-body").index
        self.cfg.add_edge(head, body_entry, "true")
        false_target = after
        if node.orelse:
            else_entry = self.cfg.new_block("loop-else").index
            false_target = else_entry
        self.cfg.add_edge(head, false_target, "false")
        self.frames.append(_LoopFrame(head, after))
        self.current = body_entry
        self._stmts(node.body)
        if self.current is not None:
            self.cfg.add_edge(self.current, head, "back")
        self.frames.pop()
        if node.orelse:
            self.current = false_target
            self._stmts(node.orelse)
            if self.current is not None:
                self.cfg.add_edge(self.current, after, "flow")
        self.current = after if self.cfg.preds(after) else None

    def _with(self, node: Union[ast.With, ast.AsyncWith]) -> None:
        names: List[str] = []
        for item in node.items:
            var = item.optional_vars
            if isinstance(var, ast.Name):
                names.append(var.id)
            elif var is None:
                ref = _ref_string(item.context_expr)
                if ref is not None:
                    names.append(ref)
        self._append(WithEnter(node))
        frame = _WithFrame(node, tuple(names), self.raise_target)
        unwind = self.cfg.new_block("with-unwind")
        unwind.entries.append(WithExit(node, frame.names))
        self.cfg.add_edge(unwind.index, frame.outer_raise, "except")
        self.frames.append(frame)
        self.raise_target = unwind.index
        self._stmts(node.body)
        self.frames.pop()
        self.raise_target = frame.outer_raise
        if self.current is not None:
            exit_block = self.cfg.new_block("with-exit")
            exit_block.entries.append(WithExit(node, frame.names))
            self.cfg.add_edge(self.current, exit_block.index, "flow")
            self.current = exit_block.index

    def _try(self, node: ast.Try) -> None:
        outer_raise = self.raise_target
        fin_frame: Optional[_FinallyFrame] = None
        frames_outside = list(self.frames)
        if node.finalbody:
            fin_frame = _FinallyFrame(node.finalbody, outer_raise)
            self.frames.append(fin_frame)
        exc_cont_cache: Dict[str, int] = {}

        def exc_cont() -> int:
            # Where an exception escaping this try propagates to: through
            # a fresh copy of the finally body when there is one.
            if not node.finalbody:
                return outer_raise
            if "entry" not in exc_cont_cache:
                entry, end = self._detached(
                    node.finalbody, outer_raise, frames_outside, "finally-exc"
                )
                if end is not None:
                    self.cfg.add_edge(end, outer_raise, "except")
                exc_cont_cache["entry"] = entry
            return exc_cont_cache["entry"]

        dispatch: Optional[int] = None
        if node.handlers:
            dispatch = self.cfg.new_block("except-dispatch").index

        body_entry = self.cfg.new_block("try-body").index
        self.cfg.add_edge(self._block(), body_entry, "flow")
        self.current = body_entry
        self.raise_target = dispatch if dispatch is not None else exc_cont()
        self._stmts(node.body)
        body_end = self.current

        # ``else`` runs after a clean body; its exceptions skip the
        # handlers and go straight through the finally.
        self.raise_target = exc_cont() if node.finalbody else outer_raise
        if node.orelse and body_end is not None:
            self._stmts(node.orelse)
            body_end = self.current

        handler_ends: List[Optional[int]] = []
        exhaustive = False
        for handler in node.handlers:
            label = "except"
            if isinstance(handler.type, ast.Name):
                label = f"except-{handler.type.id}"
            h_entry = self.cfg.new_block(label).index
            assert dispatch is not None
            self.cfg.add_edge(dispatch, h_entry, "except")
            if _handler_catches_all(handler.type):
                exhaustive = True
            self.current = h_entry
            self.raise_target = exc_cont() if node.finalbody else outer_raise
            self._stmts(handler.body)
            handler_ends.append(self.current)
        if dispatch is not None and not exhaustive:
            self.cfg.add_edge(dispatch, exc_cont(), "except")

        if fin_frame is not None:
            self.frames.pop()
        self.raise_target = outer_raise

        ends = [end for end in [body_end] + handler_ends if end is not None]
        if node.finalbody:
            if ends:
                fentry, fend = self._detached(
                    node.finalbody, outer_raise, self.frames, "finally"
                )
                for end in ends:
                    self.cfg.add_edge(end, fentry, "flow")
                self.current = fend
            else:
                self.current = None
        else:
            if ends:
                join = self.cfg.new_block("after-try").index
                for end in ends:
                    self.cfg.add_edge(end, join, "flow")
                self.current = join
            else:
                self.current = None

    # -- jumps crossing cleanup frames -----------------------------------

    def _jump_through(
        self, stop_frame: Optional[type], kind: str
    ) -> None:
        """Route return/break/continue through pending finally/with copies."""
        cleanups: List[Tuple[int, object]] = []
        stop_index: Optional[int] = None
        for index in range(len(self.frames) - 1, -1, -1):
            frame = self.frames[index]
            if stop_frame is not None and isinstance(frame, stop_frame):
                stop_index = index
                break
            if isinstance(frame, _CLEANUP_FRAMES):
                cleanups.append((index, frame))
        if stop_frame is _LoopFrame and stop_index is None:
            return  # break/continue outside a loop: a syntax error upstream
        src = self._block()
        for frame_index, frame in cleanups:
            below = self.frames[:frame_index]
            if isinstance(frame, _WithFrame):
                copy = self.cfg.new_block("with-exit")
                copy.entries.append(WithExit(frame.node, frame.names))
                entry, end = copy.index, copy.index
            else:
                assert isinstance(frame, _FinallyFrame)
                entry, end = self._detached(
                    frame.finalbody, frame.outer_raise, below, "finally-jump"
                )
            self.cfg.add_edge(src, entry, kind)
            if end is None:
                return  # the cleanup itself diverted control
            src = end
        if kind == "return":
            target = self.cfg.exit
        else:
            loop = self.frames[stop_index]
            assert isinstance(loop, _LoopFrame)
            target = loop.after if kind == "break" else loop.head
        self.cfg.add_edge(src, target, kind)


def build_cfg(
    func: Union[ast.FunctionDef, ast.AsyncFunctionDef], name: Optional[str] = None
) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _CfgBuilder(func, name or func.name).build(func.body)


def functions_in(tree: ast.AST) -> Iterator[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
    """Every function definition in ``tree``, at any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# -- generic worklist engine ------------------------------------------------


def run_worklist(
    cfg: CFG,
    init: object,
    bottom: object,
    transfer: Callable[[Block, Optional[int], object], object],
    join: Callable[[object, object], object],
) -> Dict[int, object]:
    """Forward dataflow to fixpoint; returns the in-state of every block.

    ``transfer(block, upto, state)`` applies the block's effects —
    all of them when ``upto`` is ``None``, or only the entries strictly
    before index ``upto`` (the semantics of an ``except`` edge
    originating mid-block).  ``join`` merges states at confluence
    points; ``bottom`` is the not-yet-reached state.
    """
    in_states: Dict[int, object] = {index: bottom for index in range(len(cfg.blocks))}
    in_states[cfg.entry] = init
    worklist: List[int] = [cfg.entry]
    while worklist:
        index = worklist.pop()
        state = in_states[index]
        if state is bottom:
            continue
        block = cfg.blocks[index]
        for edge in cfg.succs(index):
            out = transfer(block, edge.origin, state)
            merged = (
                out
                if in_states[edge.dst] is bottom
                else join(in_states[edge.dst], out)
            )
            if merged != in_states[edge.dst] or in_states[edge.dst] is bottom:
                in_states[edge.dst] = merged
                worklist.append(edge.dst)
    return in_states


def _walk_local(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function/class bodies."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _DEF_NODES):
                yield child  # the binding itself, not its body
                continue
            stack.append(child)


def _defined_names(entry: Entry) -> Set[str]:
    names: Set[str] = set()
    node = entry_node(entry)
    if isinstance(entry, ForIter):
        target = node.target  # type: ignore[attr-defined]
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
        return names
    if isinstance(entry, WithEnter):
        for item in node.items:  # type: ignore[attr-defined]
            if isinstance(item.optional_vars, ast.Name):
                names.add(item.optional_vars.id)
        return names
    if isinstance(entry, _PSEUDO):
        return names
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    elif isinstance(node, (ast.Import, ast.ImportFrom)):
        for alias in node.names:
            names.add((alias.asname or alias.name).split(".")[0])
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        names.add(node.name)
    return names


def reaching_definitions(cfg: CFG) -> Dict[int, FrozenSet[Tuple[str, int]]]:
    """Classic reaching definitions: in-state per block as (name, line).

    Parameters reach from line 0.  The standard worklist client — and
    the engine's unit-testable face.
    """
    params: Set[Tuple[str, int]] = set()
    func = cfg.node
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func.args
        all_args = (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
        params = {(a.arg, 0) for a in all_args}
    bottom = object()

    def transfer(block: Block, upto: Optional[int], state: object) -> object:
        defs = set(state)  # type: ignore[call-overload]
        end = len(block.entries) if upto is None else upto
        for entry in block.entries[:end]:
            defined = _defined_names(entry)
            if not defined:
                continue
            line = entry_line(entry)
            defs = {d for d in defs if d[0] not in defined}
            defs |= {(name, line) for name in defined}
        return frozenset(defs)

    def join(a: object, b: object) -> object:
        return frozenset(a) | frozenset(b)  # type: ignore[arg-type]

    raw = run_worklist(cfg, frozenset(params), bottom, transfer, join)
    return {
        index: (state if state is not bottom else frozenset())  # type: ignore[misc]
        for index, state in raw.items()
    }


# -- reachability with witnesses --------------------------------------------


@dataclass(frozen=True)
class PathWitness:
    """A concrete path through the CFG backing one finding.

    ``edges`` is the actual edge sequence used; ``blocks`` the block
    index sequence it induces.  ``end_kind`` names what was reached:
    ``"exit"``, ``"raise-exit"``, or ``"target"`` (a mid-block goal
    position).
    """

    edges: Tuple[Edge, ...]
    start: Tuple[int, int]
    end_kind: str
    end_line: int = 0

    @property
    def blocks(self) -> Tuple[int, ...]:
        if not self.edges:
            return (self.start[0],)
        return tuple([e.src for e in self.edges] + [self.edges[-1].dst])


#: Sentinel a ``stops`` callable may return instead of ``True``: the entry
#: neutralises *fallthrough* (its normal exit releases), but its own except
#: edges stay live — a callee that may raise before it releases.  Compares
#: unequal to ``True``, so boolean-returning stops are unaffected.
STOP_NORMAL_ONLY = "normal-only"


def reach_without(
    cfg: CFG,
    starts: Sequence[Tuple[int, int]],
    stops: Callable[[Entry], object],
    goal_blocks: FrozenSet[int] = frozenset(),
    goal_positions: FrozenSet[Tuple[int, int]] = frozenset(),
    stop_on_except_origin: bool = True,
) -> Optional[PathWitness]:
    """Find a path from a start position that avoids every stop entry.

    BFS over ``(block, entry-index)`` positions.  A position scans its
    block's entries forward: hitting a stop neutralises the branch;
    every ``except`` edge originating at a scanned entry is followed
    with the state *before* that entry (when the entry is itself a stop
    and ``stop_on_except_origin`` is true, its own except edge counts
    as stopped — the release-effective-even-if-it-raises asymmetry;
    a stop verdict of ``STOP_NORMAL_ONLY`` keeps the entry's own except
    edges live regardless, for callees that may raise *before* they
    release).  Falling off the block end follows every block-end edge.
    Reaching a goal block or goal position returns the shortest witness.
    """
    from collections import deque

    parents: Dict[Tuple[int, int], Tuple[Optional[Tuple[int, int]], Optional[Edge]]] = {}
    queue: deque = deque()
    for start in starts:
        if start not in parents:
            parents[start] = (None, None)
            queue.append(start)

    def witness(
        state: Tuple[int, int], end_kind: str, end_line: int, last: Optional[Edge]
    ) -> PathWitness:
        edges: List[Edge] = []
        if last is not None:
            edges.append(last)
        cursor: Optional[Tuple[int, int]] = state
        while cursor is not None:
            parent, via = parents[cursor]
            if via is not None:
                edges.append(via)
            cursor = parent
        edges.reverse()
        root = state
        while parents[root][0] is not None:
            root = parents[root][0]  # type: ignore[assignment]
        return PathWitness(tuple(edges), root, end_kind, end_line)

    def except_edges_at(block: Block, position: int) -> List[Edge]:
        return [
            e
            for e in cfg.succs(block.index)
            if e.kind == "except" and e.origin == position
        ]

    while queue:
        state = queue.popleft()
        block_index, start_at = state
        block = cfg.blocks[block_index]
        neutralised = False
        for position in range(start_at, len(block.entries)):
            if (block_index, position) in goal_positions:
                entry = block.entries[position]
                return witness(state, "target", entry_line(entry), None)
            entry = block.entries[position]
            verdict = stops(entry)
            if verdict:
                if verdict == STOP_NORMAL_ONLY or not stop_on_except_origin:
                    for edge in except_edges_at(block, position):
                        nxt = (edge.dst, 0)
                        if edge.dst in goal_blocks:
                            return witness(state, _end_kind(cfg, edge.dst), 0, edge)
                        if nxt not in parents:
                            parents[nxt] = (state, edge)
                            queue.append(nxt)
                neutralised = True
                break
            for edge in except_edges_at(block, position):
                if edge.dst in goal_blocks:
                    return witness(state, _end_kind(cfg, edge.dst), 0, edge)
                nxt = (edge.dst, 0)
                if nxt not in parents:
                    parents[nxt] = (state, edge)
                    queue.append(nxt)
        if neutralised:
            continue
        for edge in cfg.succs(block_index):
            if edge.origin is not None:
                continue  # mid-block except edges were handled in the scan
            if edge.dst in goal_blocks:
                return witness(state, _end_kind(cfg, edge.dst), 0, edge)
            nxt = (edge.dst, 0)
            if nxt not in parents:
                parents[nxt] = (state, edge)
                queue.append(nxt)
    return None


def _end_kind(cfg: CFG, block_index: int) -> str:
    if block_index == cfg.exit:
        return "exit"
    if block_index == cfg.raise_exit:
        return "raise-exit"
    return "target"


def _format_path(cfg: CFG, w: PathWitness) -> str:
    lines: List[int] = []
    for index in w.blocks:
        block = cfg.blocks[index]
        for entry in block.entries:
            line = entry_line(entry)
            if line:
                lines.append(line)
                break
    hops: List[str] = []
    for line in lines:
        text = str(line)
        if not hops or hops[-1] != text:
            hops.append(text)
    if len(hops) > 6:
        hops = hops[:3] + ["..."] + hops[-2:]
    tail = {
        "exit": "function exit",
        "raise-exit": "exception exit",
        "target": f"line {w.end_line}" if w.end_line else "here",
    }[w.end_kind]
    if hops:
        return "via line(s) " + " -> ".join(hops) + f" to {tail}"
    return f"straight to {tail}"


# -- lifecycle specs --------------------------------------------------------

_DEFAULT_CLEANUP_METHODS = (
    "close",
    "shutdown",
    "release",
    "stop",
    "cleanup",
    "terminate",
)


@dataclass(frozen=True)
class ResourceSpec:
    """``acquire -> [use]* -> release`` lifecycle for one resource kind.

    ``transfers`` and ``returns_ownership`` are interprocedural clauses
    (``--inter``): calling a ``transfers`` function with the resource
    hands ownership over (a release, not an escape), and a call to a
    ``returns_ownership`` function is an acquire site in the caller.
    """

    resource: str
    acquire: Tuple[str, ...]
    release_methods: Tuple[str, ...] = ("close",)
    release_funcs: Tuple[str, ...] = ()
    cleanup_methods: Tuple[str, ...] = _DEFAULT_CLEANUP_METHODS
    require_kwarg: Optional[str] = None
    tuple_result: bool = False
    modules: Tuple[str, ...] = ()
    transfers: Tuple[str, ...] = ()
    returns_ownership: Tuple[str, ...] = ()


@dataclass(frozen=True)
class OrderSpec:
    """Must-precede: in ``functions``, ``append`` precedes any mutation."""

    functions: Tuple[str, ...]
    append: Tuple[str, ...]
    allow: Tuple[str, ...] = ()
    modules: Tuple[str, ...] = ()


@dataclass(frozen=True)
class GuardSpec:
    """Reads must be dominated by a guard since the last invalidation."""

    reads: Tuple[str, ...]
    guards: Tuple[str, ...]
    invalidators: Tuple[str, ...] = ()
    modules: Tuple[str, ...] = ()


@dataclass(frozen=True)
class TruncationSpec:
    """Extra modules opted into the count-and-skip sink check."""

    modules: Tuple[str, ...] = ()


@dataclass(frozen=True)
class EpochSpec:
    """The shm exactly-once protocol, machine-checkable (``--inter``).

    Three obligations over the governed modules' functions:

    * every ``reads`` call is dominated by a ``guards`` check (a call,
      or a branch test naming a guard token) after any ``invalidators``
      call — the worker/driver generation handshake;
    * no ``folds`` call is reachable from a previous fold without a
      ``refresh`` in between — ack-fold paths must not double-fold the
      accumulator deltas;
    * no ``dispatch`` call is reachable after an ``unlink`` call
      without a ``republish`` in between — a live handle must never be
      dispatched against unlinked segments.
    """

    reads: Tuple[str, ...] = ()
    guards: Tuple[str, ...] = ()
    invalidators: Tuple[str, ...] = ()
    folds: Tuple[str, ...] = ()
    refresh: Tuple[str, ...] = ()
    unlink: Tuple[str, ...] = ()
    dispatch: Tuple[str, ...] = ()
    republish: Tuple[str, ...] = ()
    modules: Tuple[str, ...] = ()


FlowSpec = Union[ResourceSpec, OrderSpec, GuardSpec, TruncationSpec, EpochSpec]

#: Resource lifecycles every module is checked against.
DEFAULT_RESOURCE_SPECS: Tuple[ResourceSpec, ...] = (
    ResourceSpec(
        resource="shared-memory segment",
        acquire=("SharedMemory",),
        release_methods=("close", "unlink"),
        require_kwarg="create",
    ),
    ResourceSpec(
        resource="file handle",
        acquire=("open",),
        release_methods=("close",),
    ),
    ResourceSpec(
        resource="process pool",
        acquire=("Pool", "multiprocessing.Pool"),
        release_methods=("terminate", "close", "join"),
    ),
)

#: Parser packages the ``unchecked-truncation`` rule covers by default.
TRUNCATION_PACKAGES: Tuple[str, ...] = ("repro.weblog", "repro.bgp")

_SPEC_FIELDS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    # rule -> (required keys, optional keys)
    "resource-leak": (
        ("resource", "acquire"),
        (
            "release_methods",
            "release_funcs",
            "cleanup_methods",
            "require_kwarg",
            "tuple_result",
            "modules",
            "transfers",
            "returns_ownership",
        ),
    ),
    "wal-order": (("functions", "append"), ("allow", "modules")),
    "stale-epoch-read": (("reads", "guards"), ("invalidators", "modules")),
    "unchecked-truncation": ((), ("modules",)),
    "epoch-protocol": (
        (),
        (
            "reads",
            "guards",
            "invalidators",
            "folds",
            "refresh",
            "unlink",
            "dispatch",
            "republish",
            "modules",
        ),
    ),
}


def _as_str_tuple(value: object) -> Tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    if isinstance(value, (tuple, list)) and all(
        isinstance(item, str) for item in value
    ):
        return tuple(value)
    raise ValueError(f"expected a string or tuple of strings, got {value!r}")


def _parse_spec(raw: Dict[str, object], declaring_module: str) -> FlowSpec:
    rule = raw.get("rule")
    if not isinstance(rule, str) or rule not in _SPEC_FIELDS:
        raise ValueError(
            f"spec 'rule' must be one of {sorted(_SPEC_FIELDS)}, got {rule!r}"
        )
    required, optional = _SPEC_FIELDS[rule]
    keys = set(raw) - {"rule"}
    missing = set(required) - keys
    unknown = keys - set(required) - set(optional)
    if missing:
        raise ValueError(f"{rule} spec missing key(s): {', '.join(sorted(missing))}")
    if unknown:
        raise ValueError(f"{rule} spec has unknown key(s): {', '.join(sorted(unknown))}")
    modules = (
        _as_str_tuple(raw["modules"]) if "modules" in raw else (declaring_module,)
    )
    if rule == "resource-leak":
        require_kwarg = raw.get("require_kwarg")
        if require_kwarg is not None and not isinstance(require_kwarg, str):
            raise ValueError("'require_kwarg' must be a string")
        tuple_result = raw.get("tuple_result", False)
        if not isinstance(tuple_result, bool):
            raise ValueError("'tuple_result' must be a bool")
        return ResourceSpec(
            resource=str(raw["resource"]),
            acquire=_as_str_tuple(raw["acquire"]),
            release_methods=_as_str_tuple(
                raw.get("release_methods", ("close",))
            ),
            release_funcs=_as_str_tuple(raw.get("release_funcs", ())),
            cleanup_methods=_as_str_tuple(
                raw.get("cleanup_methods", _DEFAULT_CLEANUP_METHODS)
            ),
            require_kwarg=require_kwarg,
            tuple_result=tuple_result,
            modules=modules,
            transfers=_as_str_tuple(raw.get("transfers", ())),
            returns_ownership=_as_str_tuple(raw.get("returns_ownership", ())),
        )
    if rule == "wal-order":
        return OrderSpec(
            functions=_as_str_tuple(raw["functions"]),
            append=_as_str_tuple(raw["append"]),
            allow=_as_str_tuple(raw.get("allow", ())),
            modules=modules,
        )
    if rule == "stale-epoch-read":
        return GuardSpec(
            reads=_as_str_tuple(raw["reads"]),
            guards=_as_str_tuple(raw["guards"]),
            invalidators=_as_str_tuple(raw.get("invalidators", ())),
            modules=modules,
        )
    if rule == "epoch-protocol":
        return EpochSpec(
            reads=_as_str_tuple(raw.get("reads", ())),
            guards=_as_str_tuple(raw.get("guards", ())),
            invalidators=_as_str_tuple(raw.get("invalidators", ())),
            folds=_as_str_tuple(raw.get("folds", ())),
            refresh=_as_str_tuple(raw.get("refresh", ())),
            unlink=_as_str_tuple(raw.get("unlink", ())),
            dispatch=_as_str_tuple(raw.get("dispatch", ())),
            republish=_as_str_tuple(raw.get("republish", ())),
            modules=modules,
        )
    return TruncationSpec(modules=modules)


def collect_specs(
    modules: Iterable[LintModule],
) -> Tuple[List[FlowSpec], List[Finding]]:
    """Extract every ``FLOW_SPECS`` declaration from ``modules``.

    Specs are module-level ``FLOW_SPECS = (...)`` tuples of dict
    *literals* — evaluated with :func:`ast.literal_eval`, never
    imported, so declaring a spec costs the governed module nothing at
    runtime.  Malformed declarations become ``flow-spec`` findings
    rather than passing silently.
    """
    specs: List[FlowSpec] = list(DEFAULT_RESOURCE_SPECS)
    findings: List[Finding] = []
    for module in modules:
        for node in module.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "FLOW_SPECS"
                for t in node.targets
            ):
                continue
            try:
                value = ast.literal_eval(node.value)
            except (ValueError, SyntaxError):
                findings.append(
                    Finding(
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule_id="flow-spec",
                        message=(
                            "FLOW_SPECS must be a literal tuple of dicts "
                            "(ast.literal_eval-able, no names or calls)"
                        ),
                    )
                )
                continue
            if isinstance(value, dict):
                value = (value,)
            if not isinstance(value, (tuple, list)):
                findings.append(
                    Finding(
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule_id="flow-spec",
                        message="FLOW_SPECS must be a tuple of spec dicts",
                    )
                )
                continue
            for raw in value:
                if not isinstance(raw, dict):
                    findings.append(
                        Finding(
                            path=module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            rule_id="flow-spec",
                            message=f"spec entries must be dicts, got {raw!r}",
                        )
                    )
                    continue
                try:
                    specs.append(_parse_spec(raw, module.module))
                except ValueError as exc:
                    findings.append(
                        Finding(
                            path=module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            rule_id="flow-spec",
                            message=str(exc),
                        )
                    )
    return specs, findings


def _spec_applies(spec: FlowSpec, module: LintModule) -> bool:
    if not spec.modules:
        return True
    return module.in_package(*spec.modules)


def spec_fingerprint(specs: Sequence[FlowSpec], rule_ids: Sequence[str]) -> str:
    """A stable content hash over the collected specs and active rules.

    Part of every per-module cache key: editing a spec in one module
    must invalidate cached results for every module it governs.
    """
    import hashlib

    digest = hashlib.sha256()
    for spec in sorted(specs, key=repr):
        digest.update(repr(spec).encode("utf-8"))
    for rule_id in sorted(rule_ids):
        digest.update(rule_id.encode("utf-8"))
    return digest.hexdigest()


# -- shared predicates ------------------------------------------------------


def _ref_string(node: ast.AST) -> Optional[str]:
    """``"x"`` for ``Name x``, ``"self.a"`` for ``self.a``, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


def _is_ref(node: ast.AST, var: str) -> bool:
    return _ref_string(node) == var


def _dotted_callee(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        base = _dotted_callee(func.value)
        return f"{base}.{func.attr}" if base else None
    return None


def _callee_matches(func: ast.expr, names: Sequence[str]) -> bool:
    for name in names:
        if "." in name:
            if _dotted_callee(func) == name:
                return True
        elif isinstance(func, ast.Name) and func.id == name:
            return True
    return False


def _call_attr(func: ast.expr) -> Optional[str]:
    """The method name of an attribute call (``x.y.m(...)`` -> ``m``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _acquire_call(entry_value: ast.expr, spec: ResourceSpec) -> Optional[ast.Call]:
    if not isinstance(entry_value, ast.Call):
        return None
    if not _callee_matches(entry_value.func, spec.acquire):
        return None
    if spec.require_kwarg is not None:
        for keyword in entry_value.keywords:
            if keyword.arg == spec.require_kwarg:
                truth = _const_truth(keyword.value)
                return entry_value if truth is not False else None
        return None
    return entry_value


def _releases(entry: Entry, var: str, spec: ResourceSpec, in_init: bool) -> bool:
    if isinstance(entry, WithExit):
        return var in entry.names
    if isinstance(entry, _PSEUDO):
        node: ast.AST = entry.node
    else:
        node = entry
    if isinstance(node, ast.Delete):
        return any(_is_ref(target, var) for target in node.targets)
    for sub in _walk_local(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Attribute):
            if func.attr in spec.release_methods and _is_ref(func.value, var):
                return True
            if (
                in_init
                and func.attr in spec.cleanup_methods
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                return True
        if spec.release_funcs and _callee_matches(func, spec.release_funcs):
            if any(_is_ref(arg, var) for arg in sub.args):
                return True
    return False


def _contains_name(node: ast.AST, var: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == var for sub in _walk_local(node)
    )


def _direct_or_container(node: ast.AST, var: str) -> bool:
    """Is ``var`` the node itself, or inside a container/starred literal?"""
    if _is_ref(node, var):
        return True
    if isinstance(node, ast.Starred):
        return _direct_or_container(node.value, var)
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return any(_direct_or_container(e, var) for e in node.elts)
    if isinstance(node, ast.Dict):
        return any(
            e is not None and _direct_or_container(e, var)
            for e in list(node.keys) + list(node.values)
        )
    return False


def _escapes(
    func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    var: str,
    spec: ResourceSpec,
) -> bool:
    """Flow-insensitive: does ``var`` ever leave this function's hands?

    Returned, yielded, aliased, stored into an attribute/subscript,
    shipped inside a container literal, passed to any call that is not
    a release, raised with, deleted by someone else, or captured by a
    nested function — any of these transfers ownership somewhere the
    intraprocedural checker cannot see, so tracking stops.
    """
    for node in _walk_local(func):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None and _contains_name(node.value, var):
                return True
        elif isinstance(node, ast.Raise):
            if node.exc is not None and _contains_name(node.exc, var):
                return True
        elif isinstance(node, ast.Call):
            if _callee_matches(node.func, spec.release_funcs):
                continue
            values = list(node.args) + [k.value for k in node.keywords]
            if any(_direct_or_container(value, var) for value in values):
                return True
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = node.value
            if value is not None and value is not getattr(node, "target", None):
                if _direct_or_container(value, var) and not (
                    isinstance(value, ast.Call)
                ):
                    # an alias (`other = seg`) or container store
                    return True
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    if value is not None and _direct_or_container(value, var):
                        return True
    for node in ast.walk(func):
        if isinstance(node, _DEF_NODES) and node is not func:
            body = getattr(node, "body", None)
            if body is None:
                body = [node.body]  # Lambda
            for stmt in body:
                if _contains_name(stmt, var):
                    return True
    return False


def _self_escapes(func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> bool:
    """Does ``__init__`` hand ``self`` to someone who could clean it up?"""
    for node in _walk_local(func):
        if isinstance(node, ast.Call):
            values = list(node.args) + [k.value for k in node.keywords]
            if any(isinstance(v, ast.Name) and v.id == "self" for v in values):
                return True
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is not None and _direct_or_container(value, "self"):
                return True
    return False


# -- flow rules -------------------------------------------------------------


class FlowRule:
    """Base class for one path-sensitive check over a module."""

    rule_id: str = ""
    summary: str = ""
    rationale: str = ""

    def check(self, module: LintModule, context: "FlowContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: LintModule, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=module.path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
        )


#: The path-sensitive registry: rule id -> singleton rule instance.
FLOW_RULES: Dict[str, FlowRule] = {}


def register_flow(cls: Type[FlowRule]) -> Type[FlowRule]:
    if not cls.rule_id:
        raise ValueError(f"flow rule {cls.__name__} has no rule_id")
    if cls.rule_id in FLOW_RULES:
        raise ValueError(f"duplicate flow rule id: {cls.rule_id}")
    FLOW_RULES[cls.rule_id] = cls()
    return cls


def active_flow_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[FlowRule]:
    """Resolve ``--select`` / ``--ignore`` into a flow-rule list."""
    wanted = set(select) if select is not None else set(FLOW_RULES)
    wanted -= set(ignore or ())
    unknown = wanted - set(FLOW_RULES)
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [
        rule for rule_id, rule in sorted(FLOW_RULES.items()) if rule_id in wanted
    ]


@dataclass
class FlowContext:
    """Per-module analysis context shared by every flow rule."""

    specs: Sequence[FlowSpec]
    _cfgs: Dict[int, Tuple[ast.AST, CFG]] = field(default_factory=dict)

    def cfgs(
        self, module: LintModule
    ) -> List[Tuple[Union[ast.FunctionDef, ast.AsyncFunctionDef], CFG]]:
        key = id(module)
        if key not in self._cfgs:
            built = [(f, build_cfg(f)) for f in functions_in(module.tree)]
            self._cfgs[key] = built  # type: ignore[assignment]
        return self._cfgs[key]  # type: ignore[return-value]

    def of_type(self, kind: type) -> List[FlowSpec]:
        return [spec for spec in self.specs if isinstance(spec, kind)]


@register_flow
class FlowSpecRule(FlowRule):
    """Registration stub: findings are produced during spec collection."""

    rule_id = "flow-spec"
    summary = "FLOW_SPECS declarations are literal, well-formed spec dicts"
    rationale = (
        "a lifecycle spec that fails to parse silently un-guards the "
        "code it was declared to protect"
    )

    def check(self, module: LintModule, context: FlowContext) -> Iterator[Finding]:
        return iter(())


@dataclass(frozen=True)
class Leak:
    """One unreleased-path diagnosis (the property-testable record)."""

    var: str
    resource: str
    line: int
    col: int
    scope: str  # "local" | "init-attr" | "with"
    witness: PathWitness
    cfg: CFG
    function: str


@register_flow
class ResourceLeakRule(FlowRule):
    rule_id = "resource-leak"
    summary = (
        "acquired resources reach a release on every path, including "
        "exception edges"
    )
    rationale = (
        "a SharedMemory segment, WAL segment file, or pool acquired on a "
        "path that can exit without close/unlink/terminate outlives the "
        "process that knew its name — the leak class the syntactic "
        "shm-lifecycle rule cannot see"
    )

    def check(self, module: LintModule, context: FlowContext) -> Iterator[Finding]:
        for leak in find_resource_leaks(module, context):
            where = (
                "the exception exit"
                if leak.witness.end_kind == "raise-exit"
                else "a function exit"
            )
            path = _format_path(leak.cfg, leak.witness)
            yield self.finding(
                module,
                leak.line,
                leak.col,
                f"{leak.resource} {leak.var!r} acquired in "
                f"{leak.function}() can reach {where} without a release "
                f"({path}); release it on every path, including exception "
                "edges",
            )


def find_resource_leaks(
    module: LintModule, context: Optional[FlowContext] = None
) -> List[Leak]:
    """Every unreleased-path diagnosis in ``module`` (rich records).

    The rule formats these into findings; tests (including the
    hypothesis property test) consume the witnesses directly.
    """
    if context is None:
        specs, _ = collect_specs([module])
        context = FlowContext(specs=[s for s in specs if _spec_applies(s, module)])
    specs = [s for s in context.of_type(ResourceSpec)]
    if not specs:
        return []
    leaks: List[Leak] = []
    for func, cfg in context.cfgs(module):
        in_init = func.name == "__init__" and bool(func.args.args) and (
            func.args.args[0].arg == "self"
        )
        for spec in specs:
            assert isinstance(spec, ResourceSpec)
            for site in _acquire_sites(cfg, spec, in_init):
                var, block_index, position, scope, node = site
                if scope == "init-attr":
                    if _self_escapes(func):
                        continue
                    goals = frozenset({cfg.raise_exit})
                elif _escapes(func, var, spec):
                    continue
                else:
                    goals = frozenset({cfg.exit, cfg.raise_exit})
                witness = reach_without(
                    cfg,
                    [(block_index, position + 1)],
                    lambda entry, v=var, s=spec: _releases(entry, v, s, in_init),
                    goal_blocks=goals,
                )
                if witness is None:
                    continue
                leaks.append(
                    Leak(
                        var=var,
                        resource=spec.resource,
                        line=getattr(node, "lineno", 0),
                        col=getattr(node, "col_offset", 0),
                        scope=scope,
                        witness=witness,
                        cfg=cfg,
                        function=func.name,
                    )
                )
    return leaks


def _acquire_sites(
    cfg: CFG, spec: ResourceSpec, in_init: bool
) -> List[Tuple[str, int, int, str, ast.AST]]:
    sites: List[Tuple[str, int, int, str, ast.AST]] = []
    for block in cfg.blocks:
        for position, entry in enumerate(block.entries):
            if isinstance(entry, WithEnter):
                with_node = entry.node
                for item in with_node.items:  # type: ignore[attr-defined]
                    call = _acquire_call(item.context_expr, spec)
                    if call is None:
                        continue
                    if isinstance(item.optional_vars, ast.Name):
                        sites.append(
                            (
                                item.optional_vars.id,
                                block.index,
                                position,
                                "with",
                                with_node,
                            )
                        )
                continue
            if isinstance(entry, _PSEUDO) or not isinstance(
                entry, (ast.Assign, ast.AnnAssign)
            ):
                continue
            value = entry.value
            if value is None:
                continue
            call = _acquire_call(value, spec)
            if call is None:
                continue
            targets = (
                entry.targets if isinstance(entry, ast.Assign) else [entry.target]
            )
            if len(targets) != 1:
                continue
            target = targets[0]
            if spec.tuple_result:
                if not isinstance(target, ast.Tuple) or not target.elts:
                    continue
                target = target.elts[0]
            ref = _ref_string(target)
            if ref is None:
                continue
            if ref.startswith("self."):
                if in_init:
                    sites.append((ref, block.index, position, "init-attr", entry))
                continue
            if "." in ref:
                continue
            sites.append((ref, block.index, position, "local", entry))
    return sites


@register_flow
class WalOrderRule(FlowRule):
    rule_id = "wal-order"
    summary = "WAL append precedes every state mutation on every path"
    rationale = (
        "a mutation the WAL has not recorded yet is unrecoverable: a "
        "crash between the mutation and the append replays a stream "
        "that never contained the event"
    )

    _MUTATORS = (
        "append",
        "add",
        "update",
        "pop",
        "extend",
        "insert",
        "setdefault",
        "clear",
        "remove",
        "popleft",
        "appendleft",
    )

    def check(self, module: LintModule, context: FlowContext) -> Iterator[Finding]:
        specs = [
            s
            for s in context.of_type(OrderSpec)
            if isinstance(s, OrderSpec)
        ]
        if not specs:
            return
        for func, cfg in context.cfgs(module):
            for spec in specs:
                assert isinstance(spec, OrderSpec)
                if func.name not in spec.functions:
                    continue
                targets: Dict[Tuple[int, int], Tuple[str, int, int]] = {}
                for block in cfg.blocks:
                    for position, entry in enumerate(block.entries):
                        mutated = self._mutation(entry, spec)
                        if mutated is None:
                            continue
                        node = entry_node(entry)
                        targets[(block.index, position)] = (
                            mutated,
                            getattr(node, "lineno", 0),
                            getattr(node, "col_offset", 0),
                        )
                if not targets:
                    continue
                stops = _call_stop(spec.append)
                for position, (attr, line, col) in sorted(
                    targets.items(), key=lambda kv: kv[1][1:]
                ):
                    witness = reach_without(
                        cfg,
                        [(cfg.entry, 0)],
                        stops,
                        goal_positions=frozenset({position}),
                        stop_on_except_origin=False,
                    )
                    if witness is None:
                        continue
                    path = _format_path(cfg, witness)
                    yield self.finding(
                        module,
                        line,
                        col,
                        f"state mutation of {attr!r} in {func.name}() is "
                        f"reachable before the WAL append "
                        f"({'/'.join(spec.append)}) on some path ({path}); "
                        "append before mutating so recovery replays the "
                        "event",
                    )

    def _mutation(self, entry: Entry, spec: OrderSpec) -> Optional[str]:
        if isinstance(entry, _PSEUDO):
            return None
        node = entry
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = self._self_state(target)
                if attr is not None and attr not in spec.allow:
                    return f"self.{attr}"
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            func = node.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._MUTATORS
            ):
                attr = self._self_state(func.value)
                if attr is not None and attr not in spec.allow:
                    return f"self.{attr}.{func.attr}()"
        return None

    @staticmethod
    def _self_state(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None


def _call_stop(names: Sequence[str]) -> Callable[[Entry], bool]:
    """A stop predicate: the entry performs a call to one of ``names``.

    Matches on the final callee segment, so both ``self._wal_append(e)``
    and ``wal.append(e)`` satisfy an ``("append", "_wal_append")`` spec.
    """

    def stop(entry: Entry) -> bool:
        node = entry_node(entry)
        for sub in _walk_local(node):
            if isinstance(sub, ast.Call):
                attr = _call_attr(sub.func)
                if attr is not None and attr in names:
                    return True
        return False

    return stop


@register_flow
class StaleEpochReadRule(FlowRule):
    rule_id = "stale-epoch-read"
    summary = "shm table reads are dominated by a staleness check"
    rationale = (
        "dispatching against a shared table after a republish point "
        "without re-checking the generation resolves lookups against "
        "superseded buffers — silently wrong clusters, not a crash"
    )

    def check(self, module: LintModule, context: FlowContext) -> Iterator[Finding]:
        specs = context.of_type(GuardSpec)
        if not specs:
            return
        for func, cfg in context.cfgs(module):
            for spec in specs:
                assert isinstance(spec, GuardSpec)
                reads: Dict[Tuple[int, int], Tuple[str, int, int]] = {}
                invalidator_starts: List[Tuple[int, int]] = [(cfg.entry, 0)]
                invalidates = _call_stop(spec.invalidators) if spec.invalidators else None
                stops = _call_stop(spec.guards)
                for block in cfg.blocks:
                    for position, entry in enumerate(block.entries):
                        node = entry_node(entry)
                        for sub in _walk_local(node):
                            if not isinstance(sub, ast.Call):
                                continue
                            if (
                                isinstance(sub.func, ast.Attribute)
                                and sub.func.attr in spec.reads
                            ):
                                reads[(block.index, position)] = (
                                    sub.func.attr,
                                    getattr(node, "lineno", 0),
                                    getattr(node, "col_offset", 0),
                                )
                        if invalidates is not None and invalidates(entry):
                            invalidator_starts.append((block.index, position + 1))
                if not reads:
                    continue
                for position, (read, line, col) in sorted(
                    reads.items(), key=lambda kv: kv[1][1:]
                ):
                    witness = reach_without(
                        cfg,
                        invalidator_starts,
                        stops,
                        goal_positions=frozenset({position}),
                        stop_on_except_origin=False,
                    )
                    if witness is None:
                        continue
                    path = _format_path(cfg, witness)
                    yield self.finding(
                        module,
                        line,
                        col,
                        f"shared-table read .{read}() in {func.name}() is "
                        f"reachable without a dominating staleness check "
                        f"({'/'.join(spec.guards)}) ({path}); re-check the "
                        "generation after every republish point",
                    )


@register_flow
class UncheckedTruncationRule(FlowRule):
    rule_id = "unchecked-truncation"
    summary = "count-and-skip tallies always reach the report sink"
    rationale = (
        "an error counter incremented on a path that returns without the "
        "report escaping is a silently dropped tally — 'parsed N entries' "
        "becomes a lie exactly when the input was damaged"
    )

    def check(self, module: LintModule, context: FlowContext) -> Iterator[Finding]:
        in_scope = module.in_package(*TRUNCATION_PACKAGES)
        for spec in context.of_type(TruncationSpec):
            assert isinstance(spec, TruncationSpec)
            if _spec_applies(spec, module):
                in_scope = True
        if not in_scope:
            return
        for func, cfg in context.cfgs(module):
            params = {a.arg for a in func.args.args + func.args.kwonlyargs}
            report_vars: Set[str] = set()
            for node in _walk_local(func):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Call):
                            attr = _call_attr(sub.func)
                            if attr is not None and attr.endswith("Report"):
                                report_vars.add(target.id)
            report_vars -= params  # a caller-held report is already sunk
            if not report_vars:
                continue
            for var in sorted(report_vars):
                increments: List[Tuple[int, int, int, int, str]] = []
                for block in cfg.blocks:
                    for position, entry in enumerate(block.entries):
                        if isinstance(entry, _PSEUDO):
                            continue
                        if (
                            isinstance(entry, ast.AugAssign)
                            and isinstance(entry.target, ast.Attribute)
                            and isinstance(entry.target.value, ast.Name)
                            and entry.target.value.id == var
                        ):
                            increments.append(
                                (
                                    block.index,
                                    position,
                                    entry.lineno,
                                    entry.col_offset,
                                    entry.target.attr,
                                )
                            )
                for block_index, position, line, col, attr in increments:
                    witness = reach_without(
                        cfg,
                        [(block_index, position + 1)],
                        lambda entry, v=var: _sinks_report(entry, v),
                        goal_blocks=frozenset({cfg.exit}),
                        stop_on_except_origin=False,
                    )
                    if witness is None:
                        continue
                    path = _format_path(cfg, witness)
                    yield self.finding(
                        module,
                        line,
                        col,
                        f"count-and-skip tally {var}.{attr} incremented in "
                        f"{func.name}() can reach a normal return without "
                        f"{var!r} ever escaping ({path}); return or hand "
                        "off the report so the dropped-line count survives",
                    )


def _sinks_report(entry: Entry, var: str) -> bool:
    """Does this entry hand the report object to someone who keeps it?"""
    if isinstance(entry, _PSEUDO):
        return False
    node = entry
    for sub in _walk_local(node):
        if isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
            if sub.value is not None and _contains_name(sub.value, var):
                return True
        elif isinstance(sub, ast.Raise):
            if _contains_name(sub, var):
                return True
        elif isinstance(sub, ast.Call):
            values = list(sub.args) + [k.value for k in sub.keywords]
            if any(_direct_or_container(v, var) for v in values):
                return True
        elif isinstance(sub, ast.Assign):
            if _direct_or_container(sub.value, var):
                return True
            for target in sub.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    if _contains_name(sub.value, var):
                        return True
    return False


# -- entry points -----------------------------------------------------------


def load_flow_modules(
    paths: Sequence[Union[str, Path]],
) -> Tuple[List[LintModule], List[Finding]]:
    """Parse every ``.py`` under ``paths``; broken files become findings."""
    modules: List[LintModule] = []
    findings: List[Finding] = []
    for file_path in _iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
            modules.append(LintModule(source, path=str(file_path)))
        except (OSError, SyntaxError, ValueError) as exc:
            findings.append(
                Finding(
                    path=str(file_path),
                    line=getattr(exc, "lineno", 0) or 0,
                    col=getattr(exc, "offset", 0) or 0,
                    rule_id="syntax-error",
                    message=f"cannot analyze file: {exc}",
                )
            )
    return modules, findings


def flow_findings_for_module(
    module: LintModule,
    specs: Sequence[FlowSpec],
    rules: Optional[Sequence[FlowRule]] = None,
) -> List[Finding]:
    """Run the flow rules over one module; suppressions applied.

    The per-module unit the CLI caches: results depend only on this
    module's source, the collected spec set, and the active rules.
    """
    if rules is None:
        rules = active_flow_rules()
    context = FlowContext(specs=[s for s in specs if _spec_applies(s, module)])
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(module, context))
    return apply_suppressions(findings, [module])


def analyze_flow(
    modules: Sequence[LintModule],
    rules: Optional[Sequence[FlowRule]] = None,
) -> List[Finding]:
    """The ``--flow`` pass: collect specs everywhere, check each module."""
    if rules is None:
        rules = active_flow_rules()
    rule_ids = {rule.rule_id for rule in rules}
    specs, spec_findings = collect_specs(modules)
    findings: List[Finding] = [
        finding for finding in spec_findings if finding.rule_id in rule_ids
    ]
    for module in modules:
        findings.extend(flow_findings_for_module(module, specs, rules))
    return apply_suppressions(findings, modules)
