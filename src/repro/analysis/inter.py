"""Interprocedural summary-based analysis (``repro-lint --flow --inter``).

The PR 9 flow rules are strictly intraprocedural: a helper that closes a
segment, appends to the WAL, or re-checks the shm generation is opaque
to them — passing a resource to *any* call is an escape, a mutation
hidden in ``self._flush_logs()`` is invisible, a guard established by
``self._ensure_shm_group()`` does not count.  This module closes that
blind spot with per-function **effect summaries** computed bottom-up
over the project call graph (:meth:`Project.call_graph`):

* strongly connected components are visited in reverse topological
  order (callees before callers, Tarjan's algorithm, iterative);
* within an SCC, summaries iterate to a least fixpoint from the empty
  summary;
* unknown callees (stdlib, third-party, nested defs, unresolved
  attribute calls) are havoc'd conservatively: they provide *no*
  beneficial effect (no release, no append, no guard) and may raise —
  but they are never assigned harmful effects they were not observed
  to have.

Three rule families consume the summaries, registered in
``INTER_RULES`` and reported only under ``--inter``:

* **inter-resource-leak** — ownership that crosses a call: helper
  constructors (``returns_ownership`` clauses or inferred
  returns-owned summaries) are acquire sites in the caller; helper
  teardown (a callee that must-releases its parameter, or a
  ``transfers`` clause) is a release stop — ``STOP_NORMAL_ONLY`` when
  the callee may raise before releasing, so the caller's exception
  edge stays honest.
* **inter-wal-order** — a ``self`` method call whose summary mutates
  daemon state is a mutation site for the WAL ordering check; a callee
  that must-appends counts as the append.
* **epoch-protocol** — the shm exactly-once protocol: reads dominated
  by a generation guard after every invalidation, no double-fold of
  the accumulator deltas without a refresh, and no dispatch reachable
  after an unlink without a republish — with guards, folds, refreshes
  and republishes all resolvable through callees.

Summaries use group ids like ``"guard:2"`` (clause tag + index of the
spec within its kind) so "any token of the clause" must-semantics
survives hashing into ``must_groups`` / ``may_groups`` sets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from repro.analysis.core import Finding, LintModule, apply_suppressions
from repro.analysis.flow import (
    CFG,
    Entry,
    EpochSpec,
    FlowContext,
    FlowSpec,
    OrderSpec,
    ResourceSpec,
    STOP_NORMAL_ONLY,
    TestExpr,
    WalOrderRule,
    _acquire_call,
    _acquire_sites,
    _call_attr,
    _call_stop,
    _callee_matches,
    _contains_name,
    _direct_or_container,
    _format_path,
    _is_ref,
    _ref_string,
    _releases,
    _spec_applies,
    _walk_local,
    build_cfg,
    collect_specs,
    entry_node,
    find_resource_leaks,
    reach_without,
)
from repro.analysis.xmodule import FuncInfo, Project

__all__ = [
    "FunctionSummary",
    "InterContext",
    "InterRule",
    "INTER_RULES",
    "register_inter",
    "active_inter_rules",
    "build_inter_context",
    "compute_summaries",
    "inter_findings_for_module",
    "analyze_inter",
    "dep_fingerprint",
]

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


# -- summaries ---------------------------------------------------------------


@dataclass(frozen=True)
class FunctionSummary:
    """The interprocedural effects of one function, as its callers see it.

    Resource effects are keyed ``(param index, resource-spec index)``;
    protocol effects are group ids ``"tag:spec-index"`` in
    ``must_groups`` (holds on every normal path) / ``may_groups``
    (holds on some path, *exposed* to the caller — e.g. a fold the
    callee itself refresh-dominates is not exposed).
    """

    key: str
    param_names: Tuple[str, ...] = ()
    arg_offset: int = 0
    releases_on_return: FrozenSet[Tuple[int, int]] = frozenset()
    may_raise_before_release: FrozenSet[Tuple[int, int]] = frozenset()
    sinks: FrozenSet[Tuple[int, int]] = frozenset()
    returns_owned: FrozenSet[int] = frozenset()
    mutated_self_attrs: FrozenSet[str] = frozenset()
    must_groups: FrozenSet[str] = frozenset()
    may_groups: FrozenSet[str] = frozenset()

    def stable_repr(self) -> str:
        """A deterministic rendering for cache fingerprints."""
        return "|".join(
            [
                self.key,
                ",".join(self.param_names),
                str(self.arg_offset),
                repr(sorted(self.releases_on_return)),
                repr(sorted(self.may_raise_before_release)),
                repr(sorted(self.sinks)),
                repr(sorted(self.returns_owned)),
                repr(sorted(self.mutated_self_attrs)),
                repr(sorted(self.must_groups)),
                repr(sorted(self.may_groups)),
            ]
        )


def _param_names(func: ast.FunctionDef) -> Tuple[str, ...]:
    args = func.args
    return tuple(
        a.arg for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    )


def _arg_offset(info: FuncInfo) -> int:
    """1 when callers omit the bound first parameter, else 0."""
    if info.class_name is None:
        return 0
    params = _param_names(info.node)
    if not params or params[0] not in ("self", "cls"):
        return 0
    for decorator in info.node.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "staticmethod":
            return 0
    return 1


def _param_indices(
    call: ast.Call, var: str, summary: FunctionSummary
) -> Optional[List[int]]:
    """Callee param indices ``var`` is passed at, or None if unmappable.

    ``None`` means the caller cannot prove where (or whether only
    there) the resource lands — starred args, container wrapping, or a
    keyword the callee does not declare.  ``[]`` means ``var`` is not
    an argument of this call at all.
    """
    if any(isinstance(arg, ast.Starred) for arg in call.args):
        involved = any(
            _contains_name(value, var)
            for value in list(call.args) + [k.value for k in call.keywords]
        )
        return None if involved else []
    indices: List[int] = []
    for position, arg in enumerate(call.args):
        if _is_ref(arg, var):
            indices.append(position + summary.arg_offset)
        elif _direct_or_container(arg, var):
            return None
    for keyword in call.keywords:
        if keyword.arg is None:
            if _contains_name(keyword.value, var):
                return None
            continue
        if _is_ref(keyword.value, var):
            if keyword.arg not in summary.param_names:
                return None
            indices.append(summary.param_names.index(keyword.arg))
        elif _direct_or_container(keyword.value, var):
            return None
    if any(index >= len(summary.param_names) for index in indices):
        return None
    return indices


def _transfer_call(call: ast.Call, var: str, spec: ResourceSpec) -> bool:
    if not spec.transfers:
        return False
    attr = _call_attr(call.func)
    if attr is None or attr not in spec.transfers:
        return False
    values = list(call.args) + [k.value for k in call.keywords]
    return any(_is_ref(value, var) for value in values)


class _Resolver:
    """Summary lookups for the calls of one function, with caching."""

    def __init__(
        self,
        project: Project,
        summaries: Dict[str, FunctionSummary],
        info: FuncInfo,
        key_cache: Optional[Dict[int, List[str]]] = None,
    ) -> None:
        self.project = project
        self.summaries = summaries
        self.info = info
        self._keys = key_cache if key_cache is not None else {}

    def keys(self, call: ast.Call) -> List[str]:
        cached = self._keys.get(id(call))
        if cached is None:
            cached = self.project.resolve_call_keys(
                self.info.module, call.func, self.info.class_name
            )
            self._keys[id(call)] = cached
        return cached

    def known(self, keys: Sequence[str]) -> bool:
        return bool(keys) and all(key in self.summaries for key in keys)

    def calls_in(self, entry: Entry) -> List[ast.Call]:
        return [
            sub
            for sub in _walk_local(entry_node(entry))
            if isinstance(sub, ast.Call)
        ]

    # -- resource effects ------------------------------------------------

    def release_verdict(
        self, entry: Entry, var: str, spec: ResourceSpec, spec_index: int
    ) -> object:
        """False, True, or STOP_NORMAL_ONLY for this entry's calls."""
        best: object = False
        for call in self.calls_in(entry):
            values = list(call.args) + [k.value for k in call.keywords]
            if not any(_direct_or_container(value, var) for value in values):
                continue
            if _transfer_call(call, var, spec):
                return True
            keys = self.keys(call)
            if not self.known(keys):
                continue
            releases_all = True
            never_raises_first = True
            for key in keys:
                summary = self.summaries[key]
                indices = _param_indices(call, var, summary)
                if not indices:
                    releases_all = False
                    break
                for index in indices:
                    if (index, spec_index) not in summary.releases_on_return:
                        releases_all = False
                        break
                    if (index, spec_index) in summary.may_raise_before_release:
                        never_raises_first = False
                if not releases_all:
                    break
            if releases_all:
                if never_raises_first:
                    return True
                best = STOP_NORMAL_ONLY
        return best

    def safe_handoff(self, call: ast.Call, var: str, spec_index: int) -> bool:
        """Passing ``var`` to this call keeps ownership with the caller."""
        keys = self.keys(call)
        if not self.known(keys):
            return False
        for key in keys:
            summary = self.summaries[key]
            indices = _param_indices(call, var, summary)
            if indices is None:
                return False
            if any((index, spec_index) in summary.sinks for index in indices):
                return False
        return True

    # -- protocol effects ------------------------------------------------

    def callee_may(self, entry: Entry, group: str) -> bool:
        return any(
            group in self.summaries[key].may_groups
            for call in self.calls_in(entry)
            for key in self.keys(call)
            if key in self.summaries
        )

    def callee_must(self, entry: Entry, group: str) -> bool:
        for call in self.calls_in(entry):
            keys = self.keys(call)
            if self.known(keys) and all(
                group in self.summaries[key].must_groups for key in keys
            ):
                return True
        return False

    def self_call_key(self, call: ast.Call) -> Optional[str]:
        """The own-class method key of a ``self.m(...)`` call, if any."""
        func = call.func
        if (
            self.info.class_name is not None
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            key = (
                f"{self.info.module.module}:"
                f"{self.info.class_name}.{func.attr}"
            )
            if key in self.summaries:
                return key
        return None


# -- interprocedural escape analysis ----------------------------------------


def _escapes_inter(
    func: ast.FunctionDef,
    var: str,
    spec: ResourceSpec,
    spec_index: int,
    resolver: _Resolver,
) -> bool:
    """The ``_escapes`` refinement: summarized hand-offs do not escape.

    Same flow-insensitive walk as the intraprocedural version, except a
    call passing ``var`` is transparent when every resolved callee is
    summarized and none of them sinks the parameter — and a
    ``transfers`` call hands ownership off on purpose (a stop, handled
    by the leak search, not an escape).
    """
    for node in _walk_local(func):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None and _contains_name(node.value, var):
                return True
        elif isinstance(node, ast.Raise):
            if node.exc is not None and _contains_name(node.exc, var):
                return True
        elif isinstance(node, ast.Call):
            if _callee_matches(node.func, spec.release_funcs):
                continue
            values = list(node.args) + [k.value for k in node.keywords]
            if not any(_direct_or_container(value, var) for value in values):
                continue
            if _transfer_call(node, var, spec):
                continue
            if resolver.safe_handoff(node, var, spec_index):
                continue
            return True
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = node.value
            if value is not None and value is not getattr(node, "target", None):
                if _direct_or_container(value, var) and not isinstance(
                    value, ast.Call
                ):
                    return True
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    if value is not None and _direct_or_container(value, var):
                        return True
    for node in ast.walk(func):
        if isinstance(node, _DEF_NODES) and node is not func:
            body = getattr(node, "body", None)
            if body is None:
                continue
            if not isinstance(body, list):
                body = [body]  # Lambda
            for stmt in body:
                if _contains_name(stmt, var):
                    return True
    return False


# -- token predicates --------------------------------------------------------


def _token_call_in(entry: Entry, tokens: Sequence[str]) -> bool:
    """The ``_call_stop`` predicate, applied to one entry."""
    if not tokens:
        return False
    return _call_stop(tokens)(entry)


def _test_names(expr: ast.AST) -> Iterator[str]:
    for sub in _walk_local(expr):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _guard_entry(entry: Entry, tokens: Sequence[str]) -> bool:
    """A guard is a token call or a branch test naming a guard token.

    The branch-test form covers the worker-side handshake —
    ``if job_generation != generation: ...`` guards without calling
    anything.
    """
    if _token_call_in(entry, tokens):
        return True
    if isinstance(entry, TestExpr) and tokens:
        return any(name in tokens for name in _test_names(entry.node))
    return False


# -- the call-graph fixpoint -------------------------------------------------


def _tarjan_sccs(graph: Dict[str, Tuple[str, ...]]) -> List[List[str]]:
    """SCCs in reverse topological order (callees first), iteratively."""
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = 0
    for root in graph:
        if root in index_of:
            continue
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work: List[Tuple[str, Iterator[str]]] = [(root, iter(graph.get(root, ())))]
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in graph:
                    continue
                if succ not in index_of:
                    index_of[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def _sites(
    cfg: CFG, predicate: Callable[[Entry], bool]
) -> List[Tuple[int, int, Entry]]:
    found: List[Tuple[int, int, Entry]] = []
    for block in cfg.blocks:
        for position, entry in enumerate(block.entries):
            if predicate(entry):
                found.append((block.index, position, entry))
    return found


def _must_on_exit(cfg: CFG, stop: Callable[[Entry], object]) -> bool:
    """Every path from entry to the normal exit hits a stop."""
    return (
        reach_without(
            cfg,
            [(cfg.entry, 0)],
            stop,
            goal_blocks=frozenset({cfg.exit}),
            stop_on_except_origin=False,
        )
        is None
    )


def _entry_exposed(
    cfg: CFG,
    goals: Sequence[Tuple[int, int]],
    stop: Callable[[Entry], object],
) -> bool:
    """Some goal position is reachable from entry without a stop."""
    if not goals:
        return False
    return (
        reach_without(
            cfg,
            [(cfg.entry, 0)],
            stop,
            goal_positions=frozenset((b, p) for b, p, _ in goals),
            stop_on_except_origin=False,
        )
        is not None
    )


def _exit_exposed(
    cfg: CFG,
    sources: Sequence[Tuple[int, int]],
    stop: Callable[[Entry], object],
) -> bool:
    """The normal exit is reachable from just after a source, unstopped."""
    if not sources:
        return False
    return (
        reach_without(
            cfg,
            [(b, p + 1) for b, p, _ in sources],
            stop,
            goal_blocks=frozenset({cfg.exit}),
            stop_on_except_origin=False,
        )
        is not None
    )


def _summarize(
    info: FuncInfo,
    cfg: CFG,
    resolver: _Resolver,
    resource_specs: Sequence[ResourceSpec],
    order_specs: Sequence[OrderSpec],
    epoch_specs: Sequence[EpochSpec],
) -> FunctionSummary:
    func = info.node
    params = _param_names(func)
    offset = _arg_offset(info)
    in_init = func.name == "__init__" and bool(params) and params[0] == "self"

    releases: Set[Tuple[int, int]] = set()
    raises_first: Set[Tuple[int, int]] = set()
    sinks: Set[Tuple[int, int]] = set()
    returns_owned: Set[int] = set()

    for spec_index, spec in enumerate(resource_specs):
        for param_index, param in enumerate(params):
            if param in ("self", "cls"):
                continue

            def release_stop(
                entry: Entry, v: str = param, s: ResourceSpec = spec, i: int = spec_index
            ) -> object:
                if _releases(entry, v, s, in_init):
                    return True
                return resolver.release_verdict(entry, v, s, i)

            if _escapes_inter(func, param, spec, spec_index, resolver):
                sinks.add((param_index, spec_index))
            # cheap prefilter: no release site anywhere means no release
            # effects, so skip the two path searches
            if not any(
                release_stop(entry)
                for block in cfg.blocks
                for entry in block.entries
            ):
                continue
            if (
                reach_without(
                    cfg,
                    [(cfg.entry, 0)],
                    release_stop,
                    goal_blocks=frozenset({cfg.exit}),
                )
                is None
            ):
                releases.add((param_index, spec_index))
                if (
                    reach_without(
                        cfg,
                        [(cfg.entry, 0)],
                        release_stop,
                        goal_blocks=frozenset({cfg.raise_exit}),
                    )
                    is not None
                ):
                    raises_first.add((param_index, spec_index))

        # returns-owned inference: a fresh acquire (or an owned result of
        # a summarized constructor helper) returned directly
        owned_vars = {
            site[0]
            for site in _acquire_sites(cfg, spec, in_init)
            if site[3] == "local"
        }
        for block in cfg.blocks:
            for entry in block.entries:
                node = entry_node(entry)
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                value = getattr(node, "value", None)
                if not isinstance(value, ast.Call):
                    continue
                if not _summary_returns_owned(value, spec, spec_index, resolver):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                if len(targets) == 1:
                    ref = _ref_string(targets[0])
                    if ref is not None and "." not in ref:
                        owned_vars.add(ref)
        for node in _walk_local(func):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            returned_inline = isinstance(
                node.value, ast.Call
            ) and (
                _acquire_call(node.value, spec) is not None
                or _summary_returns_owned(node.value, spec, spec_index, resolver)
            )
            if returned_inline or any(
                _direct_or_container(node.value, var) for var in owned_vars
            ):
                returns_owned.add(spec_index)
                break

    mutated: Set[str] = set()
    if info.class_name is not None and params and params[0] == "self":
        for node in _walk_local(func):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = WalOrderRule._self_state(target)
                    if attr is not None:
                        mutated.add(attr)
            elif isinstance(node, ast.Call):
                func_expr = node.func
                if (
                    isinstance(func_expr, ast.Attribute)
                    and func_expr.attr in WalOrderRule._MUTATORS
                ):
                    attr = WalOrderRule._self_state(func_expr.value)
                    if attr is not None:
                        mutated.add(attr)
                else:
                    key = resolver.self_call_key(node)
                    if key is not None:
                        mutated |= resolver.summaries[key].mutated_self_attrs

    must_groups: Set[str] = set()
    may_groups: Set[str] = set()

    for order_index, order in enumerate(order_specs):
        group = f"append:{order_index}"

        def append_stop(entry: Entry, g: str = group, o: OrderSpec = order) -> bool:
            return _token_call_in(entry, o.append) or resolver.callee_must(
                entry, g
            )

        if _sites(cfg, append_stop) and _must_on_exit(cfg, append_stop):
            must_groups.add(group)

    for epoch_index, epoch in enumerate(epoch_specs):
        # Protocol effects exist only inside the spec's declared module
        # scope.  Without this, the over-approximate attribute-call
        # resolution lets an out-of-scope function that legitimately
        # shares a token name (e.g. the driver-side inline replay of
        # ``apply_packed``) poison every same-named method project-wide.
        if not _spec_applies(epoch, info.module):
            continue
        tag = epoch_index

        def guard_stop(entry: Entry, e: EpochSpec = epoch, t: int = tag) -> bool:
            return _guard_entry(entry, e.guards) or resolver.callee_must(
                entry, f"guard:{t}"
            )

        def refresh_stop(entry: Entry, e: EpochSpec = epoch, t: int = tag) -> bool:
            return _token_call_in(entry, e.refresh) or resolver.callee_must(
                entry, f"refresh:{t}"
            )

        def republish_stop(
            entry: Entry, e: EpochSpec = epoch, t: int = tag
        ) -> bool:
            return _token_call_in(entry, e.republish) or resolver.callee_must(
                entry, f"republish:{t}"
            )

        def site_pred(
            tokens: Tuple[str, ...], group: str
        ) -> Callable[[Entry], bool]:
            def pred(entry: Entry) -> bool:
                return _token_call_in(entry, tokens) or resolver.callee_may(
                    entry, group
                )

            return pred

        # Stop classification wins over site classification: a call the
        # spec names as a guard/refresh/republish discharges the
        # obligation even if the helper internally reads/folds/unlinks
        # on the way (e.g. _ensure_shm_group tears a stale group down
        # *and* republishes before returning).
        read_sites = [
            site
            for site in _sites(cfg, site_pred(epoch.reads, f"read:{tag}"))
            if not guard_stop(site[2])
        ]
        inval_sites = _sites(cfg, site_pred(epoch.invalidators, f"inval:{tag}"))
        fold_sites = [
            site
            for site in _sites(cfg, site_pred(epoch.folds, f"fold:{tag}"))
            if not refresh_stop(site[2])
        ]
        unlink_sites = [
            site
            for site in _sites(cfg, site_pred(epoch.unlink, f"unlink:{tag}"))
            if not republish_stop(site[2])
        ]
        dispatch_sites = [
            site
            for site in _sites(cfg, site_pred(epoch.dispatch, f"dispatch:{tag}"))
            if not republish_stop(site[2])
        ]

        if _sites(cfg, guard_stop) and _must_on_exit(cfg, guard_stop):
            must_groups.add(f"guard:{tag}")
        if _sites(cfg, refresh_stop) and _must_on_exit(cfg, refresh_stop):
            must_groups.add(f"refresh:{tag}")
        if _sites(cfg, republish_stop) and _must_on_exit(cfg, republish_stop):
            must_groups.add(f"republish:{tag}")
        if _entry_exposed(cfg, read_sites, guard_stop):
            may_groups.add(f"read:{tag}")
        if _exit_exposed(cfg, inval_sites, guard_stop):
            may_groups.add(f"inval:{tag}")
        if _entry_exposed(cfg, fold_sites, refresh_stop):
            may_groups.add(f"fold:{tag}")
        if _exit_exposed(cfg, unlink_sites, republish_stop):
            may_groups.add(f"unlink:{tag}")
        if _entry_exposed(cfg, dispatch_sites, republish_stop):
            may_groups.add(f"dispatch:{tag}")

    return FunctionSummary(
        key=info.key,
        param_names=params,
        arg_offset=offset,
        releases_on_return=frozenset(releases),
        may_raise_before_release=frozenset(raises_first),
        sinks=frozenset(sinks),
        returns_owned=frozenset(returns_owned),
        mutated_self_attrs=frozenset(mutated),
        must_groups=frozenset(must_groups),
        may_groups=frozenset(may_groups),
    )


def _summary_returns_owned(
    call: ast.Call,
    spec: ResourceSpec,
    spec_index: int,
    resolver: _Resolver,
) -> bool:
    """Does this call hand the caller a resource it now owns?"""
    attr = _call_attr(call.func)
    if attr is not None and attr in spec.returns_ownership:
        return True
    keys = resolver.keys(call)
    return resolver.known(keys) and all(
        spec_index in resolver.summaries[key].returns_owned for key in keys
    )


# -- context -----------------------------------------------------------------


@dataclass
class InterContext:
    """Project-wide state shared by every interprocedural rule."""

    project: Project
    specs: Sequence[FlowSpec]
    resource_specs: List[ResourceSpec]
    order_specs: List[OrderSpec]
    epoch_specs: List[EpochSpec]
    summaries: Dict[str, FunctionSummary]
    _cfgs: Dict[str, CFG] = field(default_factory=dict)
    _key_cache: Dict[int, List[str]] = field(default_factory=dict)

    def cfg(self, key: str) -> CFG:
        if key not in self._cfgs:
            self._cfgs[key] = build_cfg(self.project.functions()[key].node)
        return self._cfgs[key]

    def resolver(self, info: FuncInfo) -> _Resolver:
        return _Resolver(self.project, self.summaries, info, self._key_cache)

    def module_functions(self, module: LintModule) -> List[FuncInfo]:
        return [
            info
            for info in self.project.functions().values()
            if info.module.module == module.module
        ]


def compute_summaries(
    project: Project,
    resource_specs: Sequence[ResourceSpec],
    order_specs: Sequence[OrderSpec],
    epoch_specs: Sequence[EpochSpec],
    cfgs: Optional[Dict[str, CFG]] = None,
    key_cache: Optional[Dict[int, List[str]]] = None,
) -> Dict[str, FunctionSummary]:
    """Bottom-up summaries over the call graph, SCCs to a fixpoint.

    Callees are summarized before callers; mutual recursion iterates
    from the empty summary until stable (effects only accumulate, so
    the iteration cap is a backstop, not a correctness device).
    """
    functions = project.functions()
    graph = project.call_graph()
    summaries: Dict[str, FunctionSummary] = {}
    if cfgs is None:
        cfgs = {}
    for scc in _tarjan_sccs(graph):
        for _round in range(2 * len(scc) + 1):
            changed = False
            for key in scc:
                info = functions[key]
                if key not in cfgs:
                    cfgs[key] = build_cfg(info.node)
                resolver = _Resolver(project, summaries, info, key_cache)
                summary = _summarize(
                    info,
                    cfgs[key],
                    resolver,
                    resource_specs,
                    order_specs,
                    epoch_specs,
                )
                if summaries.get(key) != summary:
                    summaries[key] = summary
                    changed = True
            if not changed:
                break
    return summaries


def build_inter_context(
    modules: Sequence[LintModule], specs: Sequence[FlowSpec]
) -> InterContext:
    """Assemble the project, call graph, and summaries for ``--inter``."""
    project = Project({module.module: module for module in modules})
    resource_specs = [s for s in specs if isinstance(s, ResourceSpec)]
    order_specs = [s for s in specs if isinstance(s, OrderSpec)]
    epoch_specs = [s for s in specs if isinstance(s, EpochSpec)]
    cfgs: Dict[str, CFG] = {}
    key_cache: Dict[int, List[str]] = {}
    summaries = compute_summaries(
        project, resource_specs, order_specs, epoch_specs, cfgs, key_cache
    )
    return InterContext(
        project=project,
        specs=list(specs),
        resource_specs=resource_specs,
        order_specs=order_specs,
        epoch_specs=epoch_specs,
        summaries=summaries,
        _cfgs=cfgs,
        _key_cache=key_cache,
    )


# -- rules -------------------------------------------------------------------


class InterRule:
    """Base class for one interprocedural check over a module."""

    rule_id: str = ""
    summary: str = ""
    rationale: str = ""

    def check(
        self, module: LintModule, context: InterContext
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: LintModule, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=module.path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
        )


#: The interprocedural registry: rule id -> singleton rule instance.
INTER_RULES: Dict[str, InterRule] = {}


def register_inter(cls: Type[InterRule]) -> Type[InterRule]:
    if not cls.rule_id:
        raise ValueError(f"inter rule {cls.__name__} has no rule_id")
    if cls.rule_id in INTER_RULES:
        raise ValueError(f"duplicate inter rule id: {cls.rule_id}")
    INTER_RULES[cls.rule_id] = cls()
    return cls


def active_inter_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[InterRule]:
    """Resolve ``--select`` / ``--ignore`` into an inter-rule list."""
    wanted = set(select) if select is not None else set(INTER_RULES)
    wanted -= set(ignore or ())
    unknown = wanted - set(INTER_RULES)
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [
        rule
        for rule_id, rule in sorted(INTER_RULES.items())
        if rule_id in wanted
    ]


@register_inter
class InterResourceLeakRule(InterRule):
    rule_id = "inter-resource-leak"
    summary = (
        "resources acquired through or released by helpers reach a "
        "release on every path"
    )
    rationale = (
        "the intraprocedural pass treats every hand-off as an escape and "
        "every helper constructor as opaque, so a leak split across a "
        "helper boundary — the exact shape of the shm/WAL teardown "
        "paths — is invisible to it"
    )

    def check(
        self, module: LintModule, context: InterContext
    ) -> Iterator[Finding]:
        applicable = [
            (index, spec)
            for index, spec in enumerate(context.resource_specs)
            if _spec_applies(spec, module)
        ]
        if not applicable:
            return
        intra_context = FlowContext(
            specs=[s for s in context.specs if _spec_applies(s, module)]
        )
        already = {
            (leak.function, leak.var, leak.line)
            for leak in find_resource_leaks(module, intra_context)
        }
        for info in context.module_functions(module):
            cfg = context.cfg(info.key)
            resolver = context.resolver(info)
            params = _param_names(info.node)
            in_init = (
                info.node.name == "__init__"
                and bool(params)
                and params[0] == "self"
            )
            for spec_index, spec in applicable:
                sites = [
                    site
                    for site in _acquire_sites(cfg, spec, in_init)
                    if site[3] == "local"
                ]
                sites.extend(
                    _owned_call_sites(cfg, spec, spec_index, resolver)
                )
                for var, block_index, position, _scope, node in sites:
                    if var in params:
                        continue  # caller-owned, the caller's problem
                    if _escapes_inter(
                        info.node, var, spec, spec_index, resolver
                    ):
                        continue

                    def release_stop(
                        entry: Entry,
                        v: str = var,
                        s: ResourceSpec = spec,
                        i: int = spec_index,
                    ) -> object:
                        if _releases(entry, v, s, in_init):
                            return True
                        return resolver.release_verdict(entry, v, s, i)

                    witness = reach_without(
                        cfg,
                        [(block_index, position + 1)],
                        release_stop,
                        goal_blocks=frozenset({cfg.exit, cfg.raise_exit}),
                    )
                    if witness is None:
                        continue
                    line = getattr(node, "lineno", 0)
                    if (info.node.name, var, line) in already:
                        continue  # the intraprocedural pass reports it
                    where = (
                        "the exception exit"
                        if witness.end_kind == "raise-exit"
                        else "a function exit"
                    )
                    path = _format_path(cfg, witness)
                    yield self.finding(
                        module,
                        line,
                        getattr(node, "col_offset", 0),
                        f"{spec.resource} {var!r} acquired in "
                        f"{info.node.name}() can reach {where} without a "
                        f"release, counting helper releases and transfers "
                        f"({path}); release it on every path or hand "
                        "ownership off explicitly",
                    )


def _owned_call_sites(
    cfg: CFG,
    spec: ResourceSpec,
    spec_index: int,
    resolver: _Resolver,
) -> List[Tuple[str, int, int, str, ast.AST]]:
    """Acquire sites where a helper hands the caller a fresh resource."""
    sites: List[Tuple[str, int, int, str, ast.AST]] = []
    for block in cfg.blocks:
        for position, entry in enumerate(block.entries):
            node = entry_node(entry)
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = getattr(node, "value", None)
            if not isinstance(value, ast.Call):
                continue
            if not _summary_returns_owned(value, spec, spec_index, resolver):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if len(targets) != 1:
                continue
            target = targets[0]
            if spec.tuple_result and isinstance(target, ast.Tuple):
                if not target.elts:
                    continue
                target = target.elts[0]
            ref = _ref_string(target)
            if ref is None or "." in ref:
                continue
            sites.append((ref, block.index, position, "local", node))
    return sites


@register_inter
class InterWalOrderRule(InterRule):
    rule_id = "inter-wal-order"
    summary = (
        "helper-hidden state mutations are sequenced after the WAL "
        "append too"
    )
    rationale = (
        "the intraprocedural wal-order rule only sees direct writes to "
        "self; a flush helper that mutates the pending queues is a "
        "mutation the WAL must still precede, or recovery replays a "
        "stream that never held the event"
    )

    def check(
        self, module: LintModule, context: InterContext
    ) -> Iterator[Finding]:
        applicable = [
            (index, spec)
            for index, spec in enumerate(context.order_specs)
            if _spec_applies(spec, module)
        ]
        if not applicable:
            return
        for info in context.module_functions(module):
            if info.class_name is None:
                continue
            for order_index, spec in applicable:
                if info.node.name not in spec.functions:
                    continue
                cfg = context.cfg(info.key)
                resolver = context.resolver(info)
                group = f"append:{order_index}"

                def append_stop(
                    entry: Entry, s: OrderSpec = spec, g: str = group
                ) -> bool:
                    return _token_call_in(
                        entry, s.append
                    ) or resolver.callee_must(entry, g)

                targets: Dict[Tuple[int, int], Tuple[str, str, int, int]] = {}
                for block in cfg.blocks:
                    for position, entry in enumerate(block.entries):
                        if append_stop(entry):
                            continue
                        node = entry_node(entry)
                        for call in resolver.calls_in(entry):
                            key = resolver.self_call_key(call)
                            if key is None:
                                continue
                            mutated = sorted(
                                resolver.summaries[key].mutated_self_attrs
                                - set(spec.allow)
                            )
                            if not mutated:
                                continue
                            targets[(block.index, position)] = (
                                call.func.attr,  # type: ignore[attr-defined]
                                ", ".join(f"self.{a}" for a in mutated),
                                getattr(node, "lineno", 0),
                                getattr(node, "col_offset", 0),
                            )
                            break
                for position, (callee, attrs, line, col) in sorted(
                    targets.items(), key=lambda kv: kv[1][2:]
                ):
                    witness = reach_without(
                        cfg,
                        [(cfg.entry, 0)],
                        append_stop,
                        goal_positions=frozenset({position}),
                        stop_on_except_origin=False,
                    )
                    if witness is None:
                        continue
                    path = _format_path(cfg, witness)
                    yield self.finding(
                        module,
                        line,
                        col,
                        f"self.{callee}() called from {info.node.name}() "
                        f"mutates {attrs} and is reachable before the WAL "
                        f"append ({'/'.join(spec.append)}) on some path "
                        f"({path}); append before mutating so recovery "
                        "replays the event",
                    )


@register_inter
class EpochProtocolRule(InterRule):
    rule_id = "epoch-protocol"
    summary = (
        "the shm exactly-once protocol holds: guarded reads, no "
        "double-fold, no dispatch after unlink"
    )
    rationale = (
        "a read against a superseded epoch, a re-folded accumulator "
        "delta, or a dispatch against unlinked segments each corrupt "
        "results silently — and every obligation in the real flow is "
        "discharged inside a helper the intraprocedural rules cannot see"
    )

    def check(
        self, module: LintModule, context: InterContext
    ) -> Iterator[Finding]:
        applicable = [
            (index, spec)
            for index, spec in enumerate(context.epoch_specs)
            if _spec_applies(spec, module)
        ]
        if not applicable:
            return
        for info in context.module_functions(module):
            cfg = context.cfg(info.key)
            resolver = context.resolver(info)
            for tag, spec in applicable:
                yield from self._check_one(module, info, cfg, resolver, tag, spec)

    def _check_one(
        self,
        module: LintModule,
        info: FuncInfo,
        cfg: CFG,
        resolver: _Resolver,
        tag: int,
        spec: EpochSpec,
    ) -> Iterator[Finding]:
        def guard_stop(entry: Entry) -> bool:
            return _guard_entry(entry, spec.guards) or resolver.callee_must(
                entry, f"guard:{tag}"
            )

        def refresh_stop(entry: Entry) -> bool:
            return _token_call_in(entry, spec.refresh) or resolver.callee_must(
                entry, f"refresh:{tag}"
            )

        def republish_stop(entry: Entry) -> bool:
            return _token_call_in(
                entry, spec.republish
            ) or resolver.callee_must(entry, f"republish:{tag}")

        def sites_of(
            tokens: Tuple[str, ...],
            group: str,
            unless: Optional[Callable[[Entry], bool]] = None,
        ) -> List[Tuple[int, int, Entry]]:
            # ``unless`` applies the same stop-over-site precedence the
            # summaries use: a call the spec names as a stop discharges
            # the obligation even if the helper may read/fold/unlink
            # internally on the way.
            sites = _sites(
                cfg,
                lambda entry: _token_call_in(entry, tokens)
                or resolver.callee_may(entry, group),
            )
            if unless is None:
                return sites
            return [site for site in sites if not unless(site[2])]

        name = info.node.name

        # 1. reads dominated by a generation guard after any invalidation
        read_sites = sites_of(spec.reads, f"read:{tag}", unless=guard_stop)
        if read_sites and spec.guards:
            starts: List[Tuple[int, int]] = [(cfg.entry, 0)]
            for block_index, position, _entry in sites_of(
                spec.invalidators, f"inval:{tag}"
            ):
                starts.append((block_index, position + 1))
            for block_index, position, entry in read_sites:
                witness = reach_without(
                    cfg,
                    starts,
                    guard_stop,
                    goal_positions=frozenset({(block_index, position)}),
                    stop_on_except_origin=False,
                )
                if witness is None:
                    continue
                node = entry_node(entry)
                path = _format_path(cfg, witness)
                yield self.finding(
                    module,
                    getattr(node, "lineno", 0),
                    getattr(node, "col_offset", 0),
                    f"epoch read ({'/'.join(spec.reads)}) in {name}() is "
                    f"reachable without a dominating generation guard "
                    f"({'/'.join(spec.guards)}) ({path}); re-establish the "
                    "guard after every republish point, counting guards "
                    "inside helpers",
                )

        # 2. ack-fold paths must not double-fold without a refresh
        fold_sites = sites_of(spec.folds, f"fold:{tag}", unless=refresh_stop)
        if len(fold_sites) >= 1 and spec.refresh:
            fold_starts = [
                (block_index, position + 1)
                for block_index, position, _entry in fold_sites
            ]
            for block_index, position, entry in fold_sites:
                witness = reach_without(
                    cfg,
                    fold_starts,
                    refresh_stop,
                    goal_positions=frozenset({(block_index, position)}),
                    stop_on_except_origin=False,
                )
                if witness is None:
                    continue
                node = entry_node(entry)
                path = _format_path(cfg, witness)
                yield self.finding(
                    module,
                    getattr(node, "lineno", 0),
                    getattr(node, "col_offset", 0),
                    f"accumulator fold ({'/'.join(spec.folds)}) in "
                    f"{name}() is reachable from a previous fold without "
                    f"a refresh ({'/'.join(spec.refresh)}) in between "
                    f"({path}); double-folding re-applies counter deltas",
                )

        # 3. no dispatch after unlink without a republish in between
        dispatch_sites = sites_of(
            spec.dispatch, f"dispatch:{tag}", unless=republish_stop
        )
        unlink_sites = sites_of(
            spec.unlink, f"unlink:{tag}", unless=republish_stop
        )
        if dispatch_sites and unlink_sites:
            unlink_starts = [
                (block_index, position + 1)
                for block_index, position, _entry in unlink_sites
            ]
            for block_index, position, entry in dispatch_sites:
                witness = reach_without(
                    cfg,
                    unlink_starts,
                    republish_stop,
                    goal_positions=frozenset({(block_index, position)}),
                    stop_on_except_origin=False,
                )
                if witness is None:
                    continue
                node = entry_node(entry)
                path = _format_path(cfg, witness)
                yield self.finding(
                    module,
                    getattr(node, "lineno", 0),
                    getattr(node, "col_offset", 0),
                    f"dispatch ({'/'.join(spec.dispatch)}) in {name}() is "
                    f"reachable after an unlink ({'/'.join(spec.unlink)}) "
                    f"without a republish ({'/'.join(spec.republish)}) in "
                    f"between ({path}); a live handle must never dispatch "
                    "against unlinked segments",
                )


# -- entry points ------------------------------------------------------------


def inter_findings_for_module(
    module: LintModule,
    context: InterContext,
    rules: Optional[Sequence[InterRule]] = None,
) -> List[Finding]:
    """Run the interprocedural rules over one module; suppressions applied.

    The per-module unit the CLI caches: results depend on this module's
    source, the collected spec set, and the summaries of its
    out-of-module transitive callees (:func:`dep_fingerprint`).
    """
    if rules is None:
        rules = active_inter_rules()
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(module, context))
    return apply_suppressions(findings, [module])


def analyze_inter(
    modules: Sequence[LintModule],
    rules: Optional[Sequence[InterRule]] = None,
    specs: Optional[Sequence[FlowSpec]] = None,
) -> List[Finding]:
    """The ``--inter`` pass: summaries everywhere, then check each module."""
    if rules is None:
        rules = active_inter_rules()
    if specs is None:
        specs, _spec_findings = collect_specs(modules)
    context = build_inter_context(modules, specs)
    findings: List[Finding] = []
    for module in modules:
        findings.extend(inter_findings_for_module(module, context, rules))
    return apply_suppressions(findings, modules)


def dep_fingerprint(module: LintModule, context: InterContext) -> str:
    """Hash of the summaries this module's functions transitively call.

    Only *out-of-module* callees count — the module's own source is
    already part of the cache key.  A behavioural edit to a helper in
    another module changes its summary, changes this fingerprint, and
    busts the caller's cached entry; a comment-only edit leaves the
    summary (and so the fingerprint) alone.
    """
    import hashlib

    graph = context.project.call_graph()
    functions = context.project.functions()
    seen: Set[str] = set()
    frontier = [
        key
        for key, info in functions.items()
        if info.module.module == module.module
    ]
    while frontier:
        key = frontier.pop()
        if key in seen:
            continue
        seen.add(key)
        frontier.extend(graph.get(key, ()))
    digest = hashlib.sha256()
    for key in sorted(seen):
        if functions[key].module.module == module.module:
            continue
        summary = context.summaries.get(key)
        rendered = summary.stable_repr() if summary is not None else "?"
        digest.update(f"{key}={rendered}\n".encode("utf-8"))
    return digest.hexdigest()
