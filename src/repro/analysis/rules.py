"""The rule catalogue: repo-specific invariants as AST checks.

Each rule here encodes an invariant the engine's guarantees rest on.
They fall into four families (see DESIGN.md "Static analysis" for the
full rationale):

* **Determinism** — ``unseeded-random``, ``wall-clock``: the clustering
  hot paths (:mod:`repro.engine`, :mod:`repro.core`, :mod:`repro.cache`)
  must be bit-identical run-to-run, so randomness must flow through
  :mod:`repro.util.rng` and wall-clock reads must stay out of anything
  that feeds cluster output.
* **Pickle boundary** — ``pickle-boundary``: everything dispatched to
  the worker pool crosses a pickle boundary; lambdas and closures do
  not survive it, and asymmetric ``__getstate__``/``__setstate__``
  pairs corrupt state silently.
* **Error taxonomy** — ``broad-except``, ``bare-raise-exception``:
  failures must flow through :mod:`repro.errors` so the supervisor can
  key recovery off the exception *class*.
* **Discipline** — ``silent-skip`` (parsers count-and-skip, never
  silently drop), ``mutable-default``, ``assert-validation`` (asserts
  vanish under ``-O``), ``checkpoint-version`` (payload layout changes
  must bump the version constant, never hard-code one).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, LintModule, Rule, register

__all__ = [
    "HOT_PACKAGES",
    "PARSER_PACKAGES",
    "PICKLE_SAFE_NAMES",
    "UnseededRandomRule",
    "WallClockRule",
    "PickleBoundaryRule",
    "BroadExceptRule",
    "BareRaiseExceptionRule",
    "SilentSkipRule",
    "MutableDefaultRule",
    "AssertValidationRule",
    "CheckpointVersionRule",
    "ShmLifecycleRule",
]

#: Packages whose output must be bit-identical run-to-run; RNG and
#: wall-clock reads are policed here.
HOT_PACKAGES = ("repro.engine", "repro.core", "repro.cache")

#: Packages that parse external input; their error handling must
#: count-and-skip, never silently drop.
PARSER_PACKAGES = ("repro.weblog", "repro.bgp")

#: The blessed RNG plumbing — exempt from the determinism rules.
RNG_MODULE = "repro.util.rng"

#: Names allowed inside the worker wire-type aliases (see
#: ``_WORKER_ALIAS_MODULES``): plain data and the engine types that
#: define explicit ``__getstate__``/``__setstate__`` pairs or are
#: frozen dataclasses of plain fields (``SharedLpmHandle``).  Anything
#: else crossing the pool boundary needs review (and a suppression).
PICKLE_SAFE_NAMES = frozenset(
    {
        "Tuple",
        "Optional",
        "List",
        "Dict",
        "Sequence",
        "int",
        "float",
        "str",
        "bytes",
        "bool",
        "None",
        "PackedBatch",
        "ClusterStore",
        "SharedLpmHandle",
    }
)

#: Modules that dispatch work to other processes must declare their
#: wire formats as module-level type aliases built only from
#: ``PICKLE_SAFE_NAMES``, keeping each boundary auditable in one place.
_WORKER_ALIAS_MODULES: Dict[str, Tuple[str, ...]] = {
    "repro.engine.shard": ("_WorkerJob", "_WorkerResult"),
    "repro.engine.shm": ("_ShmJob", "_ShmAck"),
}

#: Pool/executor methods whose callable+args cross the pickle boundary.
_DISPATCH_METHODS = frozenset(
    {
        "map",
        "map_async",
        "apply",
        "apply_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "submit",
    }
)

#: Exact dotted spellings of wall-clock reads (``time.perf_counter``,
#: ``time.monotonic`` and ``time.sleep`` are fine: they never feed
#: output identity).
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "date.today",
    }
)

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _dotted_name(node: ast.AST) -> Optional[str]:
    """Render a pure ``Name``/``Attribute`` chain as ``a.b.c``, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _last_segment(node: ast.AST) -> Optional[str]:
    """The final attribute/name of a ``Name``/``Attribute`` chain."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@register
class UnseededRandomRule(Rule):
    """RNG must flow through :mod:`repro.util.rng`."""

    rule_id = "unseeded-random"
    summary = (
        "no module-level random.* calls anywhere, and no random.* calls at "
        "all in the engine/core/cache hot paths — use repro.util.rng"
    )
    rationale = (
        "The engine guarantees bit-identical clusters across sharding, "
        "fault injection and fast-path substitution; any draw from the "
        "shared global random stream (or an import-time draw anywhere) "
        "breaks that silently.  repro.util.rng derives independent seeded "
        "streams instead."
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        if module.module == RNG_MODULE:
            return
        hot = module.in_package(*HOT_PACKAGES)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                if hot:
                    yield self.finding(
                        module,
                        node,
                        "import of random internals in a hot-path module; "
                        "build generators with repro.util.rng.make_rng/spawn",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None or not dotted.startswith("random."):
                continue
            if hot:
                yield self.finding(
                    module,
                    node,
                    f"{dotted}() in a hot-path module; route RNG through "
                    "repro.util.rng (make_rng/spawn) so the global seed "
                    "discipline holds",
                )
            elif module.at_module_level(node):
                yield self.finding(
                    module,
                    node,
                    f"module-level {dotted}() runs at import time and "
                    "perturbs every later draw; construct RNGs inside "
                    "functions via repro.util.rng",
                )


@register
class WallClockRule(Rule):
    """No wall-clock reads in the hot paths."""

    rule_id = "wall-clock"
    summary = (
        "no time.time()/datetime.now() in engine/core/cache "
        "(time.perf_counter for durations is fine)"
    )
    rationale = (
        "Cluster output must not depend on when a run happened.  Elapsed "
        "timing uses time.perf_counter; simulated clocks take explicit "
        "timestamps.  A wall-clock read in a hot path is either dead code "
        "or a nondeterminism bug."
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        if not module.in_package(*HOT_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"{dotted}() reads the wall clock in a hot-path module; "
                    "pass timestamps in explicitly (or use "
                    "time.perf_counter for durations)",
                )


@register
class PickleBoundaryRule(Rule):
    """Everything shipped to the worker pool must survive pickling."""

    rule_id = "pickle-boundary"
    summary = (
        "no lambdas/closures handed to worker pools; __getstate__ and "
        "__setstate__ come in pairs; shard worker-job aliases stay on the "
        "picklable allowlist"
    )
    rationale = (
        "Worker dispatch pickles the callable and every argument.  Lambdas "
        "and nested functions fail to pickle at dispatch time (or worse, "
        "at a fault-recovery redispatch hours in); a __getstate__ without "
        "its __setstate__ twin round-trips state wrongly without any "
        "error.  repro.engine.shard declares its wire types as aliases so "
        "the boundary is auditable."
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        nested_defs = self._nested_function_names(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_dispatch(module, node, nested_defs)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_state_pair(module, node)
        alias_names = _WORKER_ALIAS_MODULES.get(module.module)
        if alias_names:
            yield from self._check_worker_aliases(module, alias_names)

    @staticmethod
    def _nested_function_names(module: LintModule) -> Set[str]:
        nested: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if module.enclosing_function(node) is not None:
                    nested.add(node.name)
        return nested

    def _check_dispatch(
        self, module: LintModule, call: ast.Call, nested_defs: Set[str]
    ) -> Iterator[Finding]:
        attr = call.func.attr if isinstance(call.func, ast.Attribute) else None
        is_dispatch = attr in _DISPATCH_METHODS
        is_pool_ctor = _last_segment(call.func) in ("Pool", "ProcessPoolExecutor")
        if not (is_dispatch or is_pool_ctor):
            return
        candidates: List[Tuple[ast.AST, str]] = []
        if is_dispatch:
            for arg in call.args:
                candidates.append((arg, f"argument of .{attr}()"))
            for keyword in call.keywords:
                candidates.append((keyword.value, f"argument of .{attr}()"))
        else:
            for keyword in call.keywords:
                if keyword.arg in ("initializer", "initargs"):
                    candidates.append((keyword.value, f"{keyword.arg}= of the pool"))
        for value, where in candidates:
            if isinstance(value, ast.Lambda):
                yield self.finding(
                    module,
                    value,
                    f"lambda as {where} crosses the worker pickle boundary "
                    "and cannot be pickled; use a module-level function",
                )
            elif isinstance(value, ast.Name) and value.id in nested_defs:
                yield self.finding(
                    module,
                    value,
                    f"nested function {value.id!r} as {where} is a closure "
                    "and cannot be pickled; hoist it to module level",
                )

    def _check_state_pair(
        self, module: LintModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = {
            item.name
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        has_get = "__getstate__" in methods
        has_set = "__setstate__" in methods
        if has_get != has_set:
            present, missing = (
                ("__getstate__", "__setstate__") if has_get else ("__setstate__", "__getstate__")
            )
            yield self.finding(
                module,
                cls,
                f"class {cls.name} defines {present} without {missing}; "
                "an asymmetric pickle protocol round-trips worker state "
                "incorrectly without raising",
            )

    def _check_worker_aliases(
        self, module: LintModule, alias_names: Tuple[str, ...]
    ) -> Iterator[Finding]:
        """A dispatching module's wire-type aliases must stay auditable."""
        aliases: Dict[str, ast.Assign] = {}
        for node in module.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id in alias_names:
                aliases[target.id] = node
        for name in alias_names:
            node = aliases.get(name)
            if node is None:
                yield Finding(
                    path=module.path,
                    line=1,
                    col=0,
                    rule_id=self.rule_id,
                    message=(
                        f"{module.module} must declare the {name} type "
                        "alias so the worker wire format stays auditable"
                    ),
                )
                continue
            for inner in ast.walk(node.value):
                if isinstance(inner, ast.Name) and inner.id not in PICKLE_SAFE_NAMES:
                    yield self.finding(
                        module,
                        inner,
                        f"{inner.id!r} in the {name} alias is not on the "
                        "pickle-safe allowlist; types crossing the worker "
                        "boundary must be plain data or define an explicit "
                        "pickle protocol (then extend PICKLE_SAFE_NAMES)",
                    )


@register
class BroadExceptRule(Rule):
    """``except Exception`` must re-raise or wrap into :mod:`repro.errors`."""

    rule_id = "broad-except"
    summary = (
        "every `except Exception` re-raises or raises a repro error type; "
        "bare `except:` is never allowed"
    )
    rationale = (
        "The supervisor keys retry/quarantine/degrade decisions off the "
        "exception class.  A broad handler that swallows or mislabels an "
        "arbitrary bug (say, checkpoint corruption surfacing inside a "
        "worker path) corrupts that recovery logic invisibly.  Handlers "
        "that genuinely must stay broad carry a reasoned suppression."
    )
    require_reason = True

    #: Raisable names that count as routing through the taxonomy: the
    #: :mod:`repro.errors` exports plus anything imported from a repro
    #: module that looks like an error/warning type.
    _TAXONOMY_HINTS = ("Error", "Warning", "Fault")

    def check(self, module: LintModule) -> Iterator[Finding]:
        taxonomy = self._taxonomy_names(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt "
                    "too; name the exceptions (narrowest set that applies)",
                )
                continue
            if not self._is_broad(node.type):
                continue
            if self._handler_routes_taxonomy(node, taxonomy):
                continue
            yield self.finding(
                module,
                node,
                "`except Exception` neither re-raises nor wraps into a "
                "repro.errors type; catch the concrete exceptions, wrap "
                "into the taxonomy, or suppress with a reason",
            )

    @staticmethod
    def _is_broad(type_node: ast.AST) -> bool:
        names: List[Optional[str]] = []
        if isinstance(type_node, ast.Tuple):
            names = [_last_segment(element) for element in type_node.elts]
        else:
            names = [_last_segment(type_node)]
        return any(name in ("Exception", "BaseException") for name in names)

    @classmethod
    def _taxonomy_names(cls, module: LintModule) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            if not (node.module or "").startswith("repro"):
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                if bound.endswith(cls._TAXONOMY_HINTS):
                    names.add(bound)
        return names

    @staticmethod
    def _handler_routes_taxonomy(
        handler: ast.ExceptHandler, taxonomy: Set[str]
    ) -> bool:
        for inner in ast.walk(handler):
            if not isinstance(inner, ast.Raise):
                continue
            if inner.exc is None:
                return True  # bare re-raise
            target = inner.exc
            if isinstance(target, ast.Call):
                target = target.func
            name = _last_segment(target)
            if name is not None and name in taxonomy:
                return True
        return False


@register
class BareRaiseExceptionRule(Rule):
    """Never ``raise Exception`` — the taxonomy exists for a reason."""

    rule_id = "bare-raise-exception"
    summary = "no `raise Exception(...)` / `raise BaseException(...)`"
    rationale = (
        "A raised bare Exception is uncatchable without a broad handler, "
        "which the broad-except rule forbids — so it can only be handled "
        "by exactly the pattern this pass exists to eliminate.  Raise a "
        "repro.errors type (or a specific builtin)."
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            name = _last_segment(target)
            if name in ("Exception", "BaseException"):
                yield self.finding(
                    module,
                    node,
                    f"raise {name} defeats typed error handling; raise a "
                    "repro.errors type (or the narrowest builtin)",
                )


@register
class SilentSkipRule(Rule):
    """Parsers count-and-skip; they never silently drop input."""

    rule_id = "silent-skip"
    summary = (
        "in repro.weblog/repro.bgp, an except handler may not just "
        "pass/continue — it must count (report.x += 1) or raise"
    )
    rationale = (
        "The paper's inputs (CLF logs, routing dumps) are dirty; the "
        "established discipline is count-and-skip with a max_errors "
        "guard (ParseReport/DumpReport).  A handler that drops lines "
        "without accounting makes 'parsed N entries' a lie and masks "
        "format drift."
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        if not module.in_package(*PARSER_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            has_raise = any(isinstance(n, ast.Raise) for n in ast.walk(node))
            has_count = any(isinstance(n, ast.AugAssign) for n in ast.walk(node))
            if has_raise or has_count:
                continue
            only_pass = len(node.body) == 1 and isinstance(node.body[0], ast.Pass)
            has_continue = any(
                isinstance(n, ast.Continue) for n in ast.walk(node)
            )
            if only_pass or has_continue:
                yield self.finding(
                    module,
                    node,
                    "parser error handler skips input without accounting; "
                    "increment a report counter (count-and-skip) or raise",
                )


@register
class MutableDefaultRule(Rule):
    """No mutable default argument values."""

    rule_id = "mutable-default"
    summary = "no [] / {} / set() / list() etc. as parameter defaults"
    rationale = (
        "A mutable default is shared across calls; in a long-lived engine "
        "process that means state leaking between runs (and between "
        "shards resumed in one driver).  Use None plus an in-body default."
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(default, _MUTABLE_LITERALS) or (
                    isinstance(default, ast.Call)
                    and _last_segment(default.func) in _MUTABLE_CONSTRUCTORS
                ):
                    yield self.finding(
                        module,
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None and construct inside the function",
                    )


@register
class AssertValidationRule(Rule):
    """``assert`` must not validate inputs — it vanishes under ``-O``."""

    rule_id = "assert-validation"
    summary = "no `assert` over function parameters; raise explicitly"
    rationale = (
        "python -O strips asserts, so an assert guarding a parameter is "
        "validation that silently disappears in optimised deployments.  "
        "Internal invariants over module state are fine; input checks "
        "must raise (ValueError/AddressError/repro.errors)."
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assert):
                continue
            function = module.enclosing_function(node)
            if function is None or isinstance(function, ast.Lambda):
                continue
            params = self._parameter_names(function)
            used = {
                name.id
                for name in ast.walk(node.test)
                if isinstance(name, ast.Name)
            }
            touched = sorted(params & used)
            if touched:
                yield self.finding(
                    module,
                    node,
                    f"assert validates parameter(s) {', '.join(touched)} "
                    "and disappears under python -O; raise an explicit "
                    "error instead",
                )

    @staticmethod
    def _parameter_names(function: ast.AST) -> Set[str]:
        args = function.args  # type: ignore[attr-defined]
        names = {arg.arg for arg in args.args + args.kwonlyargs}
        names.update(arg.arg for arg in getattr(args, "posonlyargs", []))
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
        names.discard("self")
        names.discard("cls")
        return names


@register
class CheckpointVersionRule(Rule):
    """Checkpoint envelopes version through the constant, never a literal."""

    rule_id = "checkpoint-version"
    summary = (
        "checkpoint envelopes take their version from the "
        "CHECKPOINT_VERSION constant — no hard-coded version numbers"
    )
    rationale = (
        "The payload layout is pickled; the only thing standing between "
        "a stale checkpoint and silent garbage state is the version gate. "
        "A hard-coded literal in the envelope (or in the comparison) "
        "means a future payload change can ship without failing old "
        "files loudly."
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Dict):
                yield from self._check_envelope(module, node)
            elif isinstance(node, ast.Compare):
                yield from self._check_comparison(module, node)

    def _check_envelope(self, module: LintModule, node: ast.Dict) -> Iterator[Finding]:
        keys = {
            key.value: value
            for key, value in zip(node.keys, node.values)
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
        if "magic" not in keys or "version" not in keys:
            return
        version_value = keys["version"]
        if isinstance(version_value, ast.Constant):
            yield self.finding(
                module,
                version_value,
                "checkpoint envelope hard-codes its version; reference the "
                "module's CHECKPOINT_VERSION constant so payload changes "
                "are forced through a version bump",
            )

    def _check_comparison(
        self, module: LintModule, node: ast.Compare
    ) -> Iterator[Finding]:
        sides = [node.left] + list(node.comparators)
        names = [side for side in sides if _mentions_version(side)]
        literals = [
            side
            for side in sides
            if isinstance(side, ast.Constant) and isinstance(side.value, int)
        ]
        if names and literals:
            yield self.finding(
                module,
                node,
                "version compared against a hard-coded integer; compare "
                "against the CHECKPOINT_VERSION constant",
            )


#: Methods that move their arguments into another process: the pool
#: dispatchers plus queue/pipe sends.
_SHM_SINK_METHODS = _DISPATCH_METHODS | frozenset({"put", "put_nowait", "send"})

#: Constructors whose result is (or wraps) a raw buffer mapping.
_BUFFER_FACTORIES = frozenset({"SharedMemory", "memoryview", "mmap"})


@register
class ShmLifecycleRule(Rule):
    """Shared-memory segments get unlinked; raw buffers stay in-process."""

    rule_id = "shm-lifecycle"
    summary = (
        "buffer-backed views (.buf, memoryview, mmap, .cast()) never "
        "cross a queue/pipe/pool boundary"
    )
    rationale = (
        "A memoryview or mmap handed to .put()/.send()/pool dispatch "
        "either fails to pickle at the boundary or materialises a "
        "private copy on the far side that silently stops sharing.  "
        "Segments travel by name (SharedLpmHandle); buffers stay in the "
        "process that mapped them.  (The unlink-pairing half of this "
        "rule moved to the path-sensitive `resource-leak` rule under "
        "--flow, which sees the exception edges a per-module "
        "create/unlink census cannot.)"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for scope in self._scopes(module):
            yield from self._check_boundary(module, scope)

    @staticmethod
    def _scopes(module: LintModule) -> List[ast.AST]:
        scopes: List[ast.AST] = [module.tree]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        return scopes

    @staticmethod
    def _scope_nodes(root: ast.AST) -> Iterator[ast.AST]:
        """Every node in ``root``'s own scope (nested defs excluded)."""
        stack = list(ast.iter_child_nodes(root))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                stack.extend(ast.iter_child_nodes(node))

    @classmethod
    def _buffer_names(cls, scope: ast.AST) -> Set[str]:
        """Names bound to raw-buffer views within one scope."""
        names: Set[str] = set()
        for node in cls._scope_nodes(scope):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if cls._is_buffer_expr(node.value):
                names.add(target.id)
        return names

    @staticmethod
    def _is_buffer_expr(value: ast.AST) -> bool:
        if isinstance(value, ast.Attribute) and value.attr == "buf":
            return True
        if isinstance(value, ast.Call):
            segment = _last_segment(value.func)
            if segment in _BUFFER_FACTORIES:
                return True
            if isinstance(value.func, ast.Attribute) and value.func.attr == "cast":
                return True
        return False

    def _check_boundary(
        self, module: LintModule, scope: ast.AST
    ) -> Iterator[Finding]:
        buffers = self._buffer_names(scope)
        if not buffers:
            return
        for node in self._scope_nodes(scope):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SHM_SINK_METHODS
            ):
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            shipped: List[ast.AST] = []
            for value in values:
                shipped.append(value)
                if isinstance(value, (ast.Tuple, ast.List)):
                    shipped.extend(value.elts)
            for value in shipped:
                if isinstance(value, ast.Name) and value.id in buffers:
                    yield self.finding(
                        module,
                        value,
                        f"{value.id!r} is a raw buffer view and "
                        f".{node.func.attr}() ships it across a process "
                        "boundary; buffers do not survive pickling — send "
                        "the segment *name* and re-attach on the far side",
                    )


def _mentions_version(node: ast.AST) -> bool:
    """True when a comparison side is a version lookup: a name containing
    'version', or a ``.get("version")``-style access."""
    segment = _last_segment(node)
    if segment is not None and "version" in segment.lower():
        return True
    if isinstance(node, ast.Call):
        if _last_segment(node.func) == "get" and any(
            isinstance(arg, ast.Constant) and arg.value == "version"
            for arg in node.args
        ):
            return True
    return False
