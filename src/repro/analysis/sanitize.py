"""Runtime sanitizers for the engine hot paths (``REPRO_SANITIZE=1``).

The static rules in :mod:`repro.analysis.xmodule` prove what they can
about cross-module contracts *without running the code*; this module is
the runtime half of the same bargain.  With ``REPRO_SANITIZE=1`` in the
environment the engine arms invariant checks inside its hot paths:

* **batch guards** — every :class:`~repro.engine.fastpath.PackedBatch`
  applied to a store is checked for parallel-array consistency and
  URL-id bounds before its entries are folded in;
* **LPM cross-checks** — a sampled fraction of
  :meth:`StrideLpm.lookup_many` calls is recomputed through the packed
  binary-search path and the index vectors compared, catching any
  drift between the stride index and the intervals it accelerates;
* **checkpoint read-backs** — every checkpoint write is immediately
  re-read and re-verified through the same CRC/version envelope the
  resume path uses;
* **RNG draw accounting** — RNGs built by :func:`repro.util.rng.make_rng`
  count their draws, so two runs that should be identical can be
  audited for hidden extra randomness.

A failed invariant raises :class:`repro.errors.SanitizeError` — the run
stops instead of producing silently wrong clusters.  Passing checks are
*counted*, drained with :func:`take_stats` at the same seams that drain
memo statistics (inline after each chunk, inside each pooled worker's
result tuple), and surfaced through ``EngineMetrics`` so ``--metrics``
shows the sanitizers actually ran.

The mode is off by default and the disabled cost is one ``is_enabled()``
call per *batch* (never per address): the fast path stays fast.  The
environment variable is read at import time so pooled workers — which
inherit the driver's environment and import this module fresh — arm
themselves without any explicit hand-off; tests flip the already-
imported module with :func:`set_enabled`.
"""

from __future__ import annotations

import os
import random
from typing import Any, Tuple

from repro.errors import SanitizeError

__all__ = [
    "ENV_VAR",
    "CROSSCHECK_INTERVAL",
    "SanitizerStats",
    "is_enabled",
    "set_enabled",
    "take_stats",
    "guard_batch",
    "crosscheck_due",
    "record_crosscheck",
    "record_checkpoint_readback",
    "counting_rng",
]

#: Environment variable that arms the sanitizers ("1"/"true"/"on").
ENV_VAR = "REPRO_SANITIZE"

#: One in this many ``StrideLpm.lookup_many`` calls is cross-checked
#: against the packed binary-search path (the first call always is, so
#: even tiny runs exercise the comparison at least once).
CROSSCHECK_INTERVAL = 16

_FALSEY = ("", "0", "false", "off", "no")


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSEY


_ENABLED = _env_enabled()


class SanitizerStats:
    """Process-local counters for the armed invariant checks.

    Workers drain theirs into the ``_WorkerResult`` tuple they ship
    back; the driver drains its own after inline chunks and checkpoint
    writes.  ``crosscheck_clock`` is the sampling clock, monotonic for
    the life of the process — it is deliberately *not* reset by
    :meth:`take` so the sampling cadence is independent of drain timing.
    """

    __slots__ = (
        "batch_checks",
        "lpm_crosschecks",
        "checkpoint_readbacks",
        "rng_draws",
        "crosscheck_clock",
    )

    def __init__(self) -> None:
        self.batch_checks = 0
        self.lpm_crosschecks = 0
        self.checkpoint_readbacks = 0
        self.rng_draws = 0
        self.crosscheck_clock = 0

    def take(self) -> Tuple[int, int, int, int]:
        """Return and reset the four drain counters."""
        drained = (
            self.batch_checks,
            self.lpm_crosschecks,
            self.checkpoint_readbacks,
            self.rng_draws,
        )
        self.batch_checks = 0
        self.lpm_crosschecks = 0
        self.checkpoint_readbacks = 0
        self.rng_draws = 0
        return drained


_STATS = SanitizerStats()


def is_enabled() -> bool:
    """Is the sanitize mode armed in this process?"""
    return _ENABLED


def set_enabled(enabled: bool) -> bool:
    """Arm or disarm the sanitizers; returns the previous setting.

    For tests: the environment variable only matters at import time, so
    an already-imported module is flipped through here.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def take_stats() -> Tuple[int, int, int, int]:
    """Drain this process's sanitize counters.

    Returns ``(batch_checks, lpm_crosschecks, checkpoint_readbacks,
    rng_draws)`` — the argument order of
    ``EngineMetrics.record_sanitize``.  All zeros when disabled.
    """
    return _STATS.take()


# -- invariant checks -------------------------------------------------------


def guard_batch(batch: Any) -> None:
    """Check a ``PackedBatch`` for internal consistency before apply.

    The packed transport carries three parallel arrays plus an interned
    URL list; a frozen batch that has been mutated (or a transport bug)
    shows up as a length mismatch or an out-of-range URL id — exactly
    the drift ``zip`` would otherwise truncate silently.
    """
    length = len(batch.addresses)
    if len(batch.sizes) != length or len(batch.url_ids) != length:
        raise SanitizeError(
            "PackedBatch parallel arrays disagree: "
            f"{length} addresses, {len(batch.sizes)} sizes, "
            f"{len(batch.url_ids)} url_ids"
        )
    if length:
        highest = max(batch.url_ids)
        if highest >= len(batch.urls):
            raise SanitizeError(
                f"PackedBatch url_id {highest} out of range for "
                f"{len(batch.urls)} interned urls"
            )
    _STATS.batch_checks += 1


def crosscheck_due() -> bool:
    """Advance the sampling clock; ``True`` on sampled calls.

    The first call in a process is always due, then every
    :data:`CROSSCHECK_INTERVAL`-th call after it.
    """
    _STATS.crosscheck_clock += 1
    return _STATS.crosscheck_clock % CROSSCHECK_INTERVAL == 1


def record_crosscheck() -> None:
    """Count one passed stride/packed LPM cross-check."""
    _STATS.lpm_crosschecks += 1


def record_checkpoint_readback() -> None:
    """Count one passed checkpoint read-back-after-write."""
    _STATS.checkpoint_readbacks += 1


# -- RNG accounting ---------------------------------------------------------


class _CountingRandom(random.Random):
    """A ``random.Random`` that counts its draws.

    Every stdlib distribution method bottoms out in ``random()`` or
    ``getrandbits()``, so counting those two covers the whole API
    without changing a single drawn value — the underlying Mersenne
    Twister state advances exactly as it would un-instrumented.
    """

    def random(self) -> float:
        _STATS.rng_draws += 1
        return super().random()

    def getrandbits(self, k: int) -> int:
        _STATS.rng_draws += 1
        return super().getrandbits(k)


def counting_rng(seed: int) -> random.Random:
    """A draw-counting RNG, sequence-identical to ``random.Random(seed)``."""
    return _CountingRandom(seed)
