"""SARIF 2.1.0 output for ``repro-lint --format=sarif``.

The Static Analysis Results Interchange Format is what GitHub code
scanning ingests: uploading the artifact from the CI lint job turns
every finding into a PR annotation at its file/line.  The rendering is
deliberately minimal — one ``run``, one ``tool.driver`` named
``repro-lint``, a rule catalogue assembled from every registry (plain,
``--project``, ``--flow``, ``--inter``), and one ``result`` per
finding.  SARIF columns and lines are 1-based; ``Finding.col`` is a
0-based AST offset, so columns are shifted on the way out.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from repro.analysis.core import RULES, Finding, active_rules

__all__ = ["render_sarif", "sarif_json", "collect_rule_metadata"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def collect_rule_metadata() -> Dict[str, Tuple[str, str]]:
    """rule id -> (summary, rationale) across every rule registry."""
    active_rules()  # force the plain-rule catalogue import
    from repro.analysis.flow import FLOW_RULES
    from repro.analysis.inter import INTER_RULES
    from repro.analysis.xmodule import PROJECT_RULES

    metadata: Dict[str, Tuple[str, str]] = {}
    for registry in (RULES, PROJECT_RULES, FLOW_RULES, INTER_RULES):
        for rule_id, rule in registry.items():
            metadata.setdefault(
                rule_id, (rule.summary or rule_id, rule.rationale or "")
            )
    # findings the passes emit without a registered rule object
    metadata.setdefault(
        "syntax-error", ("the file parses", "a broken file cannot be analyzed")
    )
    return metadata


def render_sarif(findings: Sequence[Finding]) -> Dict[str, object]:
    """The findings as a SARIF 2.1.0 ``log`` object (JSON-ready dict)."""
    metadata = collect_rule_metadata()
    used_ids = sorted({finding.rule_id for finding in findings})
    rules: List[Dict[str, object]] = []
    rule_index: Dict[str, int] = {}
    for rule_id in used_ids:
        summary, rationale = metadata.get(rule_id, (rule_id, ""))
        rule_index[rule_id] = len(rules)
        descriptor: Dict[str, object] = {
            "id": rule_id,
            "shortDescription": {"text": summary},
        }
        if rationale:
            descriptor["fullDescription"] = {"text": rationale}
        rules.append(descriptor)
    results: List[Dict[str, object]] = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": rule_index[finding.rule_id],
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path.replace("\\", "/"),
                            },
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def sarif_json(findings: Sequence[Finding]) -> str:
    return json.dumps(render_sarif(findings), indent=2, sort_keys=True)
