"""Whole-program analysis: cross-module rules over the parsed tree.

The per-module rules in :mod:`repro.analysis.rules` see one file at a
time; the contracts this module checks only exist *between* files.  A
:class:`Project` parses every module once (reusing
:class:`~repro.analysis.core.LintModule`), builds import / class /
method indexes lazily, and the registered :class:`ProjectRule`\\ s walk
those maps:

* **metrics-drift** — every ``EngineMetrics`` counter has an increment
  site and appears in ``snapshot()``/``render()`` output, and vice
  versa: no counter silently stops being reported, no reported key
  silently stops being fed.
* **cli-doc-drift** — every ``add_argument`` flag across the CLIs is
  documented in the project docs (README/DESIGN), and no documented
  flag is stale.
* **fork-safety** — a static race detector for the multiprocessing
  engine: functions reachable from the pool-dispatch boundary must not
  read or mutate module-level mutable state, and objects already
  shipped to the pool must not be mutated afterwards.
* **error-taxonomy-reachability** — every class in ``repro.errors`` is
  exported in ``__all__`` and actually raised (or warned, or serves as
  a family root) somewhere in the tree.
* **checkpoint-schema-drift** — pickle payload field sets stay
  consistent between their writers and readers: ``__getstate__`` /
  ``__setstate__`` arity, ``_payload`` / ``_from_payload`` key sets,
  and the ``CHECKPOINT_VERSION`` envelope's ``pickle.dumps`` /
  ``pickle.loads`` key sets.

Findings reuse the PR 4 :class:`~repro.analysis.core.Finding` type and
per-line suppression comments; ``repro-lint --project`` is the CLI
front end.  The analysis is deliberately over-approximate where it
must be (attribute calls resolve by method name across every project
class) — for a tree this size, a few extra edges in the call graph are
far cheaper than a missed race.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
    Union,
)

from repro.analysis.core import (
    Finding,
    LintModule,
    _iter_python_files,
    apply_suppressions,
)
from repro.analysis.rules import _DISPATCH_METHODS, _dotted_name, _last_segment

__all__ = [
    "Project",
    "FuncInfo",
    "ProjectRule",
    "PROJECT_RULES",
    "register_project",
    "active_project_rules",
    "analyze_project",
]

_FUNCTION_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)

#: One resolved callable: its home module and its def.
_FuncRef = Tuple[LintModule, ast.FunctionDef]


class Project:
    """Every parsed module of one source tree, plus its prose docs.

    ``modules`` maps dotted module name → :class:`LintModule`; ``docs``
    maps a documentation file's path → its text (for the doc-drift
    rule).  Index properties (top-level functions, classes, a global
    method-name index, import bindings) are built lazily and cached —
    the tree is parsed exactly once, by construction.
    """

    def __init__(
        self,
        modules: Dict[str, LintModule],
        docs: Optional[Dict[str, str]] = None,
    ) -> None:
        self.modules = dict(modules)
        self.docs = dict(docs or {})
        self._top_functions: Optional[Dict[str, Dict[str, ast.FunctionDef]]] = None
        self._classes: Optional[Dict[str, Dict[str, ast.ClassDef]]] = None
        self._methods: Optional[
            Dict[str, List[Tuple[LintModule, ast.ClassDef, ast.FunctionDef]]]
        ] = None
        self._imports: Optional[
            Dict[str, Dict[str, Tuple[str, Optional[str]]]]
        ] = None
        self._functions: Optional[Dict[str, "FuncInfo"]] = None
        self._func_keys: Optional[Dict[int, str]] = None
        self._call_graph: Optional[Dict[str, Tuple[str, ...]]] = None

    @classmethod
    def load(
        cls,
        paths: Sequence[Union[str, Path]],
        docs: Sequence[Union[str, Path]] = (),
    ) -> "Project":
        """Parse every ``.py`` file under ``paths`` into a project.

        Files that fail to read or parse are skipped — ``lint_paths``
        already reports them as ``syntax-error`` findings, and a broken
        file cannot contribute cross-module facts anyway.
        """
        modules: Dict[str, LintModule] = {}
        for file_path in _iter_python_files(paths):
            try:
                source = file_path.read_text(encoding="utf-8")
                module = LintModule(source, path=str(file_path))
            except (OSError, SyntaxError, ValueError):
                continue
            modules[module.module] = module
        doc_texts: Dict[str, str] = {}
        for doc_path in docs:
            try:
                doc_texts[str(doc_path)] = Path(doc_path).read_text(
                    encoding="utf-8"
                )
            except OSError:
                continue
        return cls(modules, doc_texts)

    def iter_modules(self) -> Iterator[LintModule]:
        for name in sorted(self.modules):
            yield self.modules[name]

    # -- indexes ---------------------------------------------------------

    def top_functions(self, module_name: str) -> Dict[str, ast.FunctionDef]:
        """Top-level ``def``\\ s of one module, by name."""
        if self._top_functions is None:
            self._top_functions = {}
            for name, module in self.modules.items():
                self._top_functions[name] = {
                    node.name: node
                    for node in module.tree.body
                    if isinstance(node, _FUNCTION_DEFS)
                }
        return self._top_functions.get(module_name, {})

    def classes(self, module_name: str) -> Dict[str, ast.ClassDef]:
        """Top-level classes of one module, by name."""
        if self._classes is None:
            self._classes = {}
            for name, module in self.modules.items():
                self._classes[name] = {
                    node.name: node
                    for node in module.tree.body
                    if isinstance(node, ast.ClassDef)
                }
        return self._classes.get(module_name, {})

    def methods_named(
        self, method_name: str
    ) -> List[Tuple[LintModule, ast.ClassDef, ast.FunctionDef]]:
        """Every method with this name, across every project class."""
        if self._methods is None:
            self._methods = {}
            for name, module in self.modules.items():
                for class_def in self.classes(name).values():
                    for node in class_def.body:
                        if isinstance(node, _FUNCTION_DEFS):
                            self._methods.setdefault(node.name, []).append(
                                (module, class_def, node)
                            )
        return self._methods.get(method_name, [])

    def imports(self, module_name: str) -> Dict[str, Tuple[str, Optional[str]]]:
        """Import bindings of one module: bound name → (source, original).

        ``from a.b import c as d`` binds ``d`` → ``("a.b", "c")``;
        ``import a.b`` binds ``a`` → ``("a", None)``.  Relative imports
        are resolved against the importing module's package.
        """
        if self._imports is None:
            self._imports = {}
            for name, module in self.modules.items():
                bindings: Dict[str, Tuple[str, Optional[str]]] = {}
                for node in ast.walk(module.tree):
                    if isinstance(node, ast.Import):
                        for alias in node.names:
                            bound = alias.asname or alias.name.split(".")[0]
                            bindings[bound] = (alias.name, None)
                    elif isinstance(node, ast.ImportFrom):
                        source = node.module or ""
                        if node.level:
                            parts = name.split(".")
                            base = parts[: max(0, len(parts) - node.level)]
                            source = ".".join(
                                base + ([node.module] if node.module else [])
                            )
                        for alias in node.names:
                            bound = alias.asname or alias.name
                            bindings[bound] = (source, alias.name)
                self._imports[name] = bindings
        return self._imports.get(module_name, {})

    # -- call resolution -------------------------------------------------

    def _class_init(
        self, module: LintModule, class_def: ast.ClassDef
    ) -> List[_FuncRef]:
        for node in class_def.body:
            if isinstance(node, _FUNCTION_DEFS) and node.name == "__init__":
                return [(module, node)]
        return []

    def _resolve_in_module(
        self, module_name: str, name: str
    ) -> List[_FuncRef]:
        module = self.modules.get(module_name)
        if module is None:
            return []
        function = self.top_functions(module_name).get(name)
        if function is not None:
            return [(module, function)]
        class_def = self.classes(module_name).get(name)
        if class_def is not None:
            return self._class_init(module, class_def)
        return []

    def resolve_name(self, module: LintModule, name: str) -> List[_FuncRef]:
        """Resolve a bare-name callable reference inside ``module``."""
        local = self._resolve_in_module(module.module, name)
        if local:
            return local
        binding = self.imports(module.module).get(name)
        if binding is not None:
            source, original = binding
            if original is not None:
                return self._resolve_in_module(source, original)
        return []

    def resolve_callable(
        self, module: LintModule, node: ast.AST
    ) -> List[_FuncRef]:
        """Resolve a callable *reference* (not a call) to its defs.

        Bare names resolve precisely through the module's bindings;
        attribute references (``self._work``, ``pool.submit``,
        ``sanitize.take_stats``) resolve by module attribute when the
        base is an imported module, and otherwise over-approximate to
        every project method of that name.
        """
        if isinstance(node, ast.Name):
            return self.resolve_name(module, node.id)
        if not isinstance(node, ast.Attribute):
            return []
        attr = node.attr
        targets: List[_FuncRef] = []
        if isinstance(node.value, ast.Name):
            binding = self.imports(module.module).get(node.value.id)
            if binding is not None:
                source, original = binding
                candidates = [source]
                if original is not None:
                    candidates.insert(0, f"{source}.{original}")
                for candidate in candidates:
                    if candidate in self.modules:
                        targets.extend(
                            self._resolve_in_module(candidate, attr)
                        )
                        break
        for method_module, _class_def, method in self.methods_named(attr):
            targets.append((method_module, method))
        return targets

    # -- call graph ------------------------------------------------------

    def functions(self) -> Dict[str, "FuncInfo"]:
        """Every analyzable function, keyed ``"module:qualname"``.

        Covers top-level functions (``pkg.mod:helper``) and methods of
        top-level classes (``pkg.mod:Cls.method``) — the same universe
        :meth:`resolve_callable` can land on.  Nested defs are callee
        opaque (havoc'd) by construction.
        """
        if self._functions is None:
            self._functions = {}
            self._func_keys = {}
            for name, module in self.modules.items():
                for node in module.tree.body:
                    if isinstance(node, _FUNCTION_DEFS):
                        self._add_function(f"{name}:{node.name}", module, node, None)
                    elif isinstance(node, ast.ClassDef):
                        for member in node.body:
                            if isinstance(member, _FUNCTION_DEFS):
                                self._add_function(
                                    f"{name}:{node.name}.{member.name}",
                                    module,
                                    member,
                                    node.name,
                                )
        return self._functions

    def _add_function(
        self,
        key: str,
        module: LintModule,
        node: ast.FunctionDef,
        class_name: Optional[str],
    ) -> None:
        assert self._functions is not None and self._func_keys is not None
        self._functions[key] = FuncInfo(key, module, node, class_name)
        self._func_keys[id(node)] = key

    def func_key(self, node: ast.FunctionDef) -> Optional[str]:
        """The ``"module:qualname"`` key of a def, if it is indexed."""
        self.functions()
        assert self._func_keys is not None
        return self._func_keys.get(id(node))

    def resolve_call_keys(
        self,
        module: LintModule,
        func_expr: ast.AST,
        class_name: Optional[str] = None,
    ) -> List[str]:
        """Resolve a call's callee expression to function keys.

        ``self.m(...)`` inside a method of ``class_name`` resolves to
        that class's own ``m`` when it has one — the single precise
        edge — and only falls back to the every-method-of-that-name
        over-approximation otherwise.
        """
        if (
            class_name is not None
            and isinstance(func_expr, ast.Attribute)
            and isinstance(func_expr.value, ast.Name)
            and func_expr.value.id == "self"
        ):
            own = f"{module.module}:{class_name}.{func_expr.attr}"
            if own in self.functions():
                return [own]
        keys: List[str] = []
        for _ref_module, func in self.resolve_callable(module, func_expr):
            key = self.func_key(func)
            if key is not None and key not in keys:
                keys.append(key)
        return keys

    def call_graph(self) -> Dict[str, Tuple[str, ...]]:
        """Resolved project-internal call edges, per function key.

        Only edges landing on indexed project functions appear —
        stdlib / third-party / nested callees are havoc'd at the call
        site by the interprocedural pass, not modelled here.
        """
        if self._call_graph is None:
            graph: Dict[str, Tuple[str, ...]] = {}
            for key, info in self.functions().items():
                callees: List[str] = []
                for call in iter_local_calls(info.node):
                    for callee in self.resolve_call_keys(
                        info.module, call.func, info.class_name
                    ):
                        if callee not in callees:
                            callees.append(callee)
                graph[key] = tuple(callees)
            self._call_graph = graph
        return self._call_graph


@dataclass(frozen=True)
class FuncInfo:
    """One indexed function: its key, home module, def, and class."""

    key: str
    module: LintModule
    node: ast.FunctionDef
    class_name: Optional[str]


def iter_local_calls(func: ast.FunctionDef) -> Iterator[ast.Call]:
    """Every ``Call`` in ``func``'s own body, skipping nested def bodies."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNCTION_DEFS) or isinstance(
            node, (ast.ClassDef, ast.Lambda)
        ):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class ProjectRule:
    """Base class for one registered cross-module check.

    The same surface as :class:`~repro.analysis.core.Rule` — ``rule_id``
    / ``summary`` / ``rationale`` and a ``finding`` helper — but
    :meth:`check` receives the whole :class:`Project`.
    """

    rule_id: str = ""
    summary: str = ""
    rationale: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, path: str, node: Optional[ast.AST], message: str, line: int = 0
    ) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", line) if node is not None else line,
            col=getattr(node, "col_offset", 0) if node is not None else 0,
            rule_id=self.rule_id,
            message=message,
        )


#: The cross-module registry: rule id → singleton rule instance.
PROJECT_RULES: Dict[str, ProjectRule] = {}


def register_project(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator: instantiate and register a project rule."""
    if not cls.rule_id:
        raise ValueError(f"project rule {cls.__name__} has no rule_id")
    if cls.rule_id in PROJECT_RULES:
        raise ValueError(f"duplicate project rule id: {cls.rule_id}")
    PROJECT_RULES[cls.rule_id] = cls()
    return cls


def active_project_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[ProjectRule]:
    """Resolve ``--select`` / ``--ignore`` into a project-rule list."""
    wanted = set(select) if select is not None else set(PROJECT_RULES)
    wanted -= set(ignore or ())
    unknown = wanted - set(PROJECT_RULES)
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [
        rule
        for rule_id, rule in sorted(PROJECT_RULES.items())
        if rule_id in wanted
    ]


def analyze_project(
    project: Project, rules: Optional[Sequence[ProjectRule]] = None
) -> List[Finding]:
    """Run project rules over ``project``; apply per-line suppressions.

    Findings anchored inside an analyzed module honour the same
    ``# lint: ignore[rule-id]`` comments the per-module pass uses;
    findings anchored in prose docs have no suppression channel (fix
    the doc instead).
    """
    if rules is None:
        rules = active_project_rules()
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(project))
    return apply_suppressions(findings, project.modules.values())


# -- shared AST helpers -----------------------------------------------------


def _str_constants(node: ast.AST) -> Set[str]:
    """Every string constant anywhere under ``node``."""
    return {
        child.value
        for child in ast.walk(node)
        if isinstance(child, ast.Constant) and isinstance(child.value, str)
    }


def _dict_literal_keys(node: ast.Dict) -> Set[str]:
    return {
        key.value
        for key in node.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    }


def _self_attr_target(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is the target ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _accessed_keys(func: ast.FunctionDef, var_names: Set[str]) -> Set[str]:
    """String keys read off ``var_names`` via ``var["k"]`` / ``var.get("k")``."""
    keys: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in var_names
        ):
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(index.value, str):
                keys.add(index.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in var_names
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.add(node.args[0].value)
    return keys


# -- rule: metrics-drift ----------------------------------------------------


@register_project
class MetricsDriftRule(ProjectRule):
    """``EngineMetrics`` counters, their feeders, and their reporting
    must stay in sync."""

    rule_id = "metrics-drift"
    summary = (
        "every EngineMetrics counter is incremented somewhere and appears "
        "in snapshot()/render(), and every snapshot key is a real attribute"
    )
    rationale = (
        "--metrics is how operators audit a run (and how the sanitize "
        "mode proves it ran); a counter that drifts out of snapshot() or "
        "loses its last increment site reports silence as health."
    )

    #: Class whose counters the rule audits.
    metrics_class = "EngineMetrics"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            class_def = project.classes(module.module).get(self.metrics_class)
            if class_def is not None:
                yield from self._check_class(project, module, class_def)

    def _check_class(
        self, project: Project, module: LintModule, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = {
            node.name: node
            for node in class_def.body
            if isinstance(node, _FUNCTION_DEFS)
        }
        init = methods.get("__init__")
        if init is None:
            return
        properties = {
            node.name
            for node in class_def.body
            if isinstance(node, _FUNCTION_DEFS)
            and any(
                _last_segment(dec) == "property" for dec in node.decorator_list
            )
        }
        all_attrs: Set[str] = set()
        counters: Dict[str, ast.AST] = {}
        for node in ast.walk(init):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    attr = _self_attr_target(target)
                    if attr is None:
                        continue
                    all_attrs.add(attr)
                    value = node.value
                    if isinstance(value, ast.Constant) and isinstance(
                        value.value, (int, float, bool)
                    ):
                        counters[attr] = node
        written_outside_init: Set[str] = set()
        for name, method in methods.items():
            if name == "__init__":
                continue
            for node in ast.walk(method):
                if isinstance(node, ast.AugAssign):
                    attr = _self_attr_target(node.target)
                    if attr is not None:
                        written_outside_init.add(attr)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        attr = _self_attr_target(target)
                        if attr is not None:
                            written_outside_init.add(attr)
        snapshot = methods.get("snapshot")
        snapshot_keys: Set[str] = set()
        if snapshot is not None:
            for node in ast.walk(snapshot):
                if isinstance(node, ast.Dict):
                    snapshot_keys |= _dict_literal_keys(node)
        render = methods.get("render")
        render_strings = _str_constants(render) if render is not None else set()

        for counter, node in sorted(counters.items()):
            if counter not in written_outside_init:
                yield self.finding(
                    module.path,
                    node,
                    f"counter '{counter}' is initialised but never "
                    "incremented or set by any method",
                )
            if snapshot is not None and counter not in snapshot_keys:
                yield self.finding(
                    module.path,
                    node,
                    f"counter '{counter}' does not appear in snapshot() — "
                    "it is fed but never reported",
                )
            if render is not None and counter not in render_strings:
                yield self.finding(
                    module.path,
                    node,
                    f"counter '{counter}' does not appear in render() — "
                    "--metrics output would omit it",
                )
        if snapshot is not None:
            known = all_attrs | properties
            for key in sorted(snapshot_keys - known):
                yield self.finding(
                    module.path,
                    snapshot,
                    f"snapshot() reports '{key}' which is neither an "
                    "__init__ attribute nor a property — stale key",
                )
        yield from self._check_record_callers(project, module, class_def, methods)

    def _check_record_callers(
        self,
        project: Project,
        module: LintModule,
        class_def: ast.ClassDef,
        methods: Dict[str, ast.FunctionDef],
    ) -> Iterator[Finding]:
        record_methods = {
            name for name in methods if name.startswith("record_")
        }
        called: Set[str] = set()
        for other in project.iter_modules():
            if other.module == module.module:
                continue
            for node in ast.walk(other.tree):
                if isinstance(node, ast.Call):
                    name = _last_segment(node.func)
                    if name in record_methods:
                        called.add(name)
        for name in sorted(record_methods - called):
            yield self.finding(
                module.path,
                methods[name],
                f"record method '{name}' is never called outside "
                f"{module.module} — dead telemetry feeder",
            )


# -- rule: cli-doc-drift ----------------------------------------------------


#: Long-form flags that legitimately appear in the docs without being
#: defined by any repo CLI (flags of tools the docs tell you to run).
EXTERNAL_DOC_FLAGS = frozenset(
    {
        "--benchmark-only",  # pytest-benchmark's flag, quoted in README
    }
)

_DOC_FLAG_RE = re.compile(r"--[A-Za-z][A-Za-z0-9-]*")


@register_project
class CliDocDriftRule(ProjectRule):
    """CLI flags and prose docs must agree, both directions."""

    rule_id = "cli-doc-drift"
    summary = (
        "every add_argument --flag appears in the project docs, and every "
        "--flag the docs mention is actually defined by some CLI"
    )
    rationale = (
        "four CLIs share one README; an undocumented flag is invisible "
        "to users and a documented-but-removed flag actively misleads "
        "them.  Known external flags (pytest's, etc.) are allowlisted in "
        "EXTERNAL_DOC_FLAGS."
    )

    def check(self, project: Project) -> Iterator[Finding]:
        defined: Dict[str, Tuple[LintModule, ast.AST]] = {}
        for module in project.iter_modules():
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.Call)
                    and _last_segment(node.func) == "add_argument"
                ):
                    continue
                for arg in node.args:
                    if (
                        isinstance(arg, ast.Constant)
                        and isinstance(arg.value, str)
                        and arg.value.startswith("--")
                    ):
                        defined.setdefault(arg.value, (module, node))
        if not project.docs or not defined:
            return
        doc_blob = "\n".join(project.docs.values())
        for flag in sorted(defined):
            pattern = re.escape(flag) + r"(?![A-Za-z0-9-])"
            if re.search(pattern, doc_blob) is None:
                module, node = defined[flag]
                yield self.finding(
                    module.path,
                    node,
                    f"CLI flag '{flag}' is not documented in any project "
                    f"doc ({', '.join(sorted(project.docs))})",
                )
        known = set(defined) | set(EXTERNAL_DOC_FLAGS)
        for doc_path in sorted(project.docs):
            text = project.docs[doc_path]
            reported: Set[str] = set()
            for line_number, line in enumerate(text.splitlines(), start=1):
                for match in _DOC_FLAG_RE.finditer(line):
                    flag = match.group(0)
                    if flag in known or flag in reported:
                        continue
                    reported.add(flag)
                    yield self.finding(
                        doc_path,
                        None,
                        f"documented flag '{flag}' is not defined by any "
                        "CLI in the analyzed tree — stale documentation",
                        line=line_number,
                    )


# -- rule: fork-safety ------------------------------------------------------


#: Module globals that worker-reachable code may legitimately touch.
#: ``shard._WORKER_TABLE`` is *per-process* state: the pool initializer
#: binds it once, before any batch runs, and nothing rebinds it after —
#: the canonical fork-safe pattern this rule exists to protect.
#: ``shm._LIVE_SEGMENTS`` is likewise per-process: it registers the
#: segments *this* process created or attached so the atexit guard can
#: reclaim them; a forked child starts from a copy and only ever
#: removes its own attachments — nothing merges back, by design.
FORK_SAFE_GLOBALS: Dict[str, "frozenset[str]"] = {
    "repro.engine.shard": frozenset({"_WORKER_TABLE"}),
    "repro.engine.shm": frozenset(
        {"_LIVE_SEGMENTS", "_PUBLISH_CACHE", "_ENTRIES_CACHE"}
    ),
}

#: Modules whose state is process-local *by design* and explicitly
#: drained across the process boundary (the sanitize counters travel in
#: the worker result tuple), so their internals are exempt.
FORK_SAFE_MODULES = frozenset({"repro.analysis.sanitize"})

#: Method calls that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "sort",
        "reverse",
        "write",
    }
)

#: Constructors whose module-level result is mutable shared state.
_MUTABLE_CTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict", "array"}
)


def _local_names(func: ast.FunctionDef) -> Set[str]:
    """Names bound locally in ``func`` (params and stores), which shadow
    module globals — minus names the function declares ``global``."""
    names: Set[str] = set()
    args = func.args
    for arg in (
        list(getattr(args, "posonlyargs", []))
        + args.args
        + args.kwonlyargs
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        names.add(arg.arg)
    declared_global: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
    return names - declared_global


@register_project
class ForkSafetyRule(ProjectRule):
    """Static race detection across the pool-dispatch boundary."""

    rule_id = "fork-safety"
    summary = (
        "worker-reachable code must not touch module-level mutable state, "
        "and objects already dispatched to the pool must not be mutated"
    )
    rationale = (
        "a module global mutated in a worker diverges silently between "
        "processes (fork copies it; nothing merges it back), and on "
        "fork-start platforms an object mutated after pickling into a "
        "dispatch call races the transport — both break the engine's "
        "bit-identical guarantee in ways no unit test reliably catches."
    )

    #: In-progress/final map of shipping functions, consulted by
    #: :meth:`_arg_ships` (set during one check() invocation only).
    _ships_cache: Optional[
        Dict[int, Tuple[ast.FunctionDef, bool, Set[int]]]
    ] = None

    def check(self, project: Project) -> Iterator[Finding]:
        reachable = self._reachable_from_boundary(project)
        yield from self._check_global_state(project, reachable)
        yield from self._check_shipped_mutation(project)

    # -- reachability ----------------------------------------------------

    def _boundary_seeds(self, project: Project) -> List[_FuncRef]:
        seeds: List[_FuncRef] = []
        for module in project.iter_modules():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if _last_segment(node.func) == "Pool":
                    for keyword in node.keywords:
                        if keyword.arg == "initializer":
                            seeds.extend(
                                project.resolve_callable(module, keyword.value)
                            )
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _DISPATCH_METHODS
                    and node.args
                ):
                    seeds.extend(
                        project.resolve_callable(module, node.args[0])
                    )
        return seeds

    def _reachable_from_boundary(self, project: Project) -> List[_FuncRef]:
        queue = self._boundary_seeds(project)
        visited: Set[int] = set()
        reachable: List[_FuncRef] = []
        while queue:
            module, func = queue.pop()
            if id(func) in visited:
                continue
            visited.add(id(func))
            reachable.append((module, func))
            for node in ast.walk(func):
                if isinstance(node, ast.Call):
                    queue.extend(project.resolve_callable(module, node.func))
        return reachable

    # -- module-level state checks ---------------------------------------

    def _module_bindings(
        self, module: LintModule
    ) -> Tuple[Set[str], Set[str]]:
        """(all module-level assigned names, the *hazardous* subset).

        A module-level dict/list/set is only a fork hazard if some
        function actually mutates it — a literal table nobody writes is
        a frozen constant in all but type, and flagging it would push
        people toward noise suppressions instead of real fixes.
        """
        all_names: Set[str] = set()
        mutable: Set[str] = set()
        for node in module.tree.body:
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                all_names.add(target.id)
                if isinstance(
                    value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                            ast.DictComp, ast.SetComp)
                ):
                    mutable.add(target.id)
                elif (
                    isinstance(value, ast.Call)
                    and _last_segment(value.func) in _MUTABLE_CTORS
                ):
                    mutable.add(target.id)
        return all_names, mutable & self._mutated_in_functions(module)

    @staticmethod
    def _mutated_in_functions(module: LintModule) -> Set[str]:
        """Names some function body of ``module`` mutates or rebinds."""
        mutated: Set[str] = set()
        for outer in ast.walk(module.tree):
            if not isinstance(outer, _FUNCTION_DEFS):
                continue
            locals_ = _local_names(outer)
            for node in ast.walk(outer):
                if isinstance(node, ast.Global):
                    mutated.update(node.names)
                    continue
                name = ForkSafetyRule._mutated_name(node)
                if name is not None and name not in locals_:
                    mutated.add(name)
        return mutated

    def _allowed(self, module: LintModule, name: str) -> bool:
        return name in FORK_SAFE_GLOBALS.get(module.module, frozenset())

    def _check_global_state(
        self, project: Project, reachable: List[_FuncRef]
    ) -> Iterator[Finding]:
        bindings_cache: Dict[str, Tuple[Set[str], Set[str]]] = {}
        for module, func in reachable:
            if module.module in FORK_SAFE_MODULES:
                continue
            if module.module not in bindings_cache:
                bindings_cache[module.module] = self._module_bindings(module)
            all_names, mutable = bindings_cache[module.module]
            locals_ = _local_names(func)
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    for name in node.names:
                        if not self._allowed(module, name):
                            yield self.finding(
                                module.path,
                                node,
                                f"worker-reachable '{func.name}' rebinds "
                                f"module global '{name}' — divergent "
                                "per-process state",
                            )
                elif (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in mutable
                    and node.id not in locals_
                    and not self._allowed(module, node.id)
                ):
                    yield self.finding(
                        module.path,
                        node,
                        f"worker-reachable '{func.name}' reads module-level "
                        f"mutable '{node.id}' — shared mutable state across "
                        "the fork boundary",
                    )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATOR_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in all_names
                    and node.func.value.id not in locals_
                    and not self._allowed(module, node.func.value.id)
                ):
                    yield self.finding(
                        module.path,
                        node,
                        f"worker-reachable '{func.name}' mutates module-level "
                        f"'{node.func.value.id}' in place",
                    )
                elif (
                    isinstance(node, (ast.Assign, ast.AugAssign))
                    and self._subscript_base(node) is not None
                ):
                    base = self._subscript_base(node)
                    if (
                        base in all_names
                        and base not in locals_
                        and not self._allowed(module, base)
                    ):
                        yield self.finding(
                            module.path,
                            node,
                            f"worker-reachable '{func.name}' assigns into "
                            f"module-level '{base}'",
                        )

    @staticmethod
    def _subscript_base(node: ast.AST) -> Optional[str]:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                return target.value.id
        return None

    # -- shipped-object mutation -----------------------------------------

    def _all_functions(
        self, project: Project
    ) -> List[Tuple[LintModule, ast.FunctionDef, bool]]:
        """(module, func, is_method) for every def in the project."""
        out: List[Tuple[LintModule, ast.FunctionDef, bool]] = []
        for module in project.iter_modules():
            for func in project.top_functions(module.module).values():
                out.append((module, func, False))
            for class_def in project.classes(module.module).values():
                for node in class_def.body:
                    if isinstance(node, _FUNCTION_DEFS):
                        out.append((module, node, True))
        return out

    @staticmethod
    def _param_index(func: ast.FunctionDef, name: str) -> Optional[int]:
        args = func.args
        params = list(getattr(args, "posonlyargs", [])) + args.args
        for index, arg in enumerate(params):
            if arg.arg == name:
                return index
        return None

    def _shipping_functions(
        self, project: Project
    ) -> Dict[int, Tuple[ast.FunctionDef, bool, Set[int]]]:
        """Fixpoint of "param index N of function F ships to the pool"."""
        functions = self._all_functions(project)
        ships: Dict[int, Tuple[ast.FunctionDef, bool, Set[int]]] = {
            id(func): (func, is_method, set())
            for _module, func, is_method in functions
        }
        # Visible to _arg_ships while the fixpoint runs, so a call to an
        # already-marked shipping function propagates on later rounds.
        self._ships_cache = ships
        for _round in range(10):
            changed = False
            for module, func, is_method in functions:
                shipped = ships[id(func)][2]
                before = len(shipped)
                for node in ast.walk(func):
                    if not isinstance(node, ast.Call):
                        continue
                    for position, arg in enumerate(node.args):
                        if not isinstance(arg, ast.Name):
                            continue
                        if not self._arg_ships(project, module, node, position):
                            continue
                        index = self._param_index(func, arg.id)
                        if index is not None:
                            shipped.add(index)
                if len(shipped) != before:
                    changed = True
            if not changed:
                break
        return ships

    def _arg_ships(
        self,
        project: Project,
        module: LintModule,
        call: ast.Call,
        position: int,
    ) -> bool:
        """Does positional ``position`` of ``call`` reach the pool?"""
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _DISPATCH_METHODS
        ):
            return True
        ships = getattr(self, "_ships_cache", None)
        if ships is None:
            return False
        via_attribute = isinstance(call.func, ast.Attribute)
        for _target_module, target in project.resolve_callable(
            module, call.func
        ):
            entry = ships.get(id(target))
            if entry is None:
                continue
            _func, is_method, shipped = entry
            offset = 1 if (is_method and via_attribute) else 0
            if position + offset in shipped:
                return True
        return False

    def _check_shipped_mutation(self, project: Project) -> Iterator[Finding]:
        self._ships_cache = self._shipping_functions(project)
        try:
            for module, func, _is_method in self._all_functions(project):
                if module.module in FORK_SAFE_MODULES:
                    continue
                ship_lines: Dict[str, int] = {}
                for node in ast.walk(func):
                    if not isinstance(node, ast.Call):
                        continue
                    for position, arg in enumerate(node.args):
                        if isinstance(arg, ast.Name) and self._arg_ships(
                            project, module, node, position
                        ):
                            line = ship_lines.get(arg.id)
                            if line is None or node.lineno < line:
                                ship_lines[arg.id] = node.lineno
                if not ship_lines:
                    continue
                for node in ast.walk(func):
                    name = self._mutated_name(node)
                    if name is None:
                        continue
                    shipped_at = ship_lines.get(name)
                    if shipped_at is not None and node.lineno > shipped_at:
                        yield self.finding(
                            module.path,
                            node,
                            f"'{name}' was dispatched to the worker pool at "
                            f"line {shipped_at} and is mutated afterwards — "
                            "on fork-start platforms this races the "
                            "transport pickling",
                        )
        finally:
            self._ships_cache = None

    @staticmethod
    def _mutated_name(node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
            and isinstance(node.func.value, ast.Name)
        ):
            return node.func.value.id
        base = ForkSafetyRule._subscript_base(node)
        if base is not None:
            return base
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    return target.value.id
        return None


# -- rule: error-taxonomy-reachability --------------------------------------


@register_project
class ErrorTaxonomyRule(ProjectRule):
    """Every error class is exported and actually reachable."""

    rule_id = "error-taxonomy-reachability"
    summary = (
        "each class in the errors module is listed in __all__ and raised "
        "(or warned, or subclassed) somewhere in the tree"
    )
    rationale = (
        "recovery code keys off the error *class*; a taxonomy member "
        "nothing raises is a promise the runtime never keeps, and one "
        "missing from __all__ hides from the API surface the supervisor "
        "tests import against."
    )

    def check(self, project: Project) -> Iterator[Finding]:
        raised, warned = self._usage_names(project)
        for module in project.iter_modules():
            if module.module.split(".")[-1] != "errors":
                continue
            classes = project.classes(module.module)
            exported = self._declared_all(module)
            subclassed = {
                _last_segment(base)
                for class_def in classes.values()
                for base in class_def.bases
            }
            for name in sorted(classes):
                class_def = classes[name]
                if exported is not None and name not in exported:
                    yield self.finding(
                        module.path,
                        class_def,
                        f"error class '{name}' is not exported in __all__",
                    )
                if (
                    name not in raised
                    and name not in warned
                    and name not in subclassed
                ):
                    yield self.finding(
                        module.path,
                        class_def,
                        f"error class '{name}' is never raised, never passed "
                        "to warnings.warn, and roots no subclass — "
                        "unreachable taxonomy member",
                    )
            if exported is not None:
                defined = set(classes) | set(
                    project.top_functions(module.module)
                )
                for node in module.tree.body:
                    if isinstance(node, ast.Assign):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                defined.add(target.id)
                for name in sorted(exported - defined):
                    yield self.finding(
                        module.path,
                        None,
                        f"__all__ exports '{name}' which the module does "
                        "not define — stale export",
                        line=1,
                    )

    @staticmethod
    def _declared_all(module: LintModule) -> Optional[Set[str]]:
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        if isinstance(node.value, (ast.List, ast.Tuple)):
                            return {
                                element.value
                                for element in node.value.elts
                                if isinstance(element, ast.Constant)
                                and isinstance(element.value, str)
                            }
        return None

    @staticmethod
    def _usage_names(project: Project) -> Tuple[Set[str], Set[str]]:
        raised: Set[str] = set()
        warned: Set[str] = set()
        for module in project.iter_modules():
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Raise) and node.exc is not None:
                    exc = node.exc
                    if isinstance(exc, ast.Call):
                        exc = exc.func
                    name = _last_segment(exc)
                    if name is not None:
                        raised.add(name)
                elif (
                    isinstance(node, ast.Call)
                    and _last_segment(node.func) == "warn"
                ):
                    candidates = list(node.args[1:]) + [
                        keyword.value
                        for keyword in node.keywords
                        if keyword.arg == "category"
                    ]
                    for candidate in candidates:
                        name = _last_segment(candidate)
                        if name is not None:
                            warned.add(name)
        return raised, warned


# -- rule: checkpoint-schema-drift ------------------------------------------


@register_project
class CheckpointSchemaRule(ProjectRule):
    """Pickle payload schemas must agree between writer and reader."""

    rule_id = "checkpoint-schema-drift"
    summary = (
        "__getstate__/__setstate__ arity, _payload/_from_payload keys, and "
        "the CHECKPOINT_VERSION envelope's dumps/loads key sets all match"
    )
    rationale = (
        "a checkpoint schema drift is invisible until a resume fails "
        "hours into a rerun — or worse, resumes wrong.  The field sets a "
        "writer produces and its reader consumes are one contract "
        "spread over two functions; this rule pins them together."
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            for class_def in project.classes(module.module).values():
                yield from self._check_state_pair(module, class_def)
                yield from self._check_payload_pair(module, class_def)
            if self._defines_checkpoint_version(module):
                yield from self._check_envelope(project, module)

    # -- __getstate__ / __setstate__ -------------------------------------

    def _check_state_pair(
        self, module: LintModule, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = {
            node.name: node
            for node in class_def.body
            if isinstance(node, _FUNCTION_DEFS)
        }
        getstate = methods.get("__getstate__")
        setstate = methods.get("__setstate__")
        if getstate is None or setstate is None:
            return
        produced: Set[int] = set()
        for node in ast.walk(getstate):
            if isinstance(node, ast.Return) and isinstance(
                node.value, ast.Tuple
            ):
                produced.add(len(node.value.elts))
        state_params = {
            arg.arg for arg in setstate.args.args[1:]
        }  # skip self
        consumed: Set[int] = set()
        for node in ast.walk(setstate):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Tuple)
                and isinstance(node.value, ast.Name)
                and node.value.id in state_params
            ):
                consumed.add(len(node.targets[0].elts))
        if produced and consumed and not (produced & consumed):
            yield self.finding(
                module.path,
                setstate,
                f"{class_def.name}.__getstate__ produces a "
                f"{sorted(produced)}-tuple but __setstate__ unpacks "
                f"{sorted(consumed)} elements — pickle round-trip breaks",
            )

    # -- _payload / _from_payload ----------------------------------------

    def _check_payload_pair(
        self, module: LintModule, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = {
            node.name: node
            for node in class_def.body
            if isinstance(node, _FUNCTION_DEFS)
        }
        producer = methods.get("_payload")
        consumer = methods.get("_from_payload")
        if producer is None or consumer is None:
            return
        produced: Set[str] = set()
        for node in ast.walk(producer):
            if isinstance(node, ast.Return) and isinstance(
                node.value, ast.Dict
            ):
                produced |= _dict_literal_keys(node.value)
        params = {arg.arg for arg in consumer.args.args[1:]}  # skip cls/self
        consumed = _accessed_keys(consumer, params)
        if not produced or not consumed:
            return
        for key in sorted(consumed - produced):
            yield self.finding(
                module.path,
                consumer,
                f"{class_def.name}._from_payload reads key '{key}' that "
                "_payload never writes",
            )
        for key in sorted(produced - consumed):
            yield self.finding(
                module.path,
                producer,
                f"{class_def.name}._payload writes key '{key}' that "
                "_from_payload never reads",
            )

    # -- CHECKPOINT_VERSION envelope -------------------------------------

    @staticmethod
    def _defines_checkpoint_version(module: LintModule) -> bool:
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "CHECKPOINT_VERSION"
                    ):
                        return True
        return False

    def _check_envelope(
        self, project: Project, module: LintModule
    ) -> Iterator[Finding]:
        writers: List[Tuple[ast.AST, Set[str]]] = []
        readers: List[Tuple[ast.AST, Set[str]]] = []
        functions = list(project.top_functions(module.module).values())
        for class_def in project.classes(module.module).values():
            functions.extend(
                node for node in class_def.body
                if isinstance(node, _FUNCTION_DEFS)
            )
        for func in functions:
            dict_bindings: Dict[str, ast.Dict] = {}
            loads_vars: Set[str] = set()
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    name = node.targets[0].id
                    if isinstance(node.value, ast.Dict):
                        dict_bindings[name] = node.value
                    elif (
                        isinstance(node.value, ast.Call)
                        and _last_segment(node.value.func) == "loads"
                    ):
                        loads_vars.add(name)
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Call)
                    and _last_segment(node.func) == "dumps"
                    and node.args
                ):
                    continue
                payload = node.args[0]
                if isinstance(payload, ast.Name):
                    bound = dict_bindings.get(payload.id)
                    if bound is not None:
                        writers.append((node, _dict_literal_keys(bound)))
                elif isinstance(payload, ast.Dict):
                    writers.append((node, _dict_literal_keys(payload)))
            for name in loads_vars:
                keys = _accessed_keys(func, {name})
                if keys:
                    readers.append((func, keys))
        if not writers or not readers:
            return
        for reader_node, read_keys in readers:
            best = max(writers, key=lambda entry: len(entry[1] & read_keys))
            missing = read_keys - best[1]
            if len(best[1] & read_keys) and missing:
                yield self.finding(
                    module.path,
                    reader_node,
                    "checkpoint reader consumes key(s) "
                    f"{sorted(missing)} that no writer dict produces",
                )
        for writer_node, written_keys in writers:
            best_read = max(
                readers, key=lambda entry: len(entry[1] & written_keys)
            )
            unread = written_keys - best_read[1]
            if len(best_read[1] & written_keys) and unread:
                yield self.finding(
                    module.path,
                    writer_node,
                    "checkpoint writer produces key(s) "
                    f"{sorted(unread)} that its best-matching reader "
                    "never consumes",
                )
