"""BGP routing-table substrate.

Textual dump formats and their unification (§3.1.2), routing-table
snapshots and the merged prefix table (§3.1), the fourteen-source
collection of Table 1, synthetic snapshot generation from the
ground-truth topology, and the BGP-dynamics study machinery of §3.4.
"""

from repro.bgp.aspath import AsGraph, build_as_graph, path_length_histogram
from repro.bgp.archive import (
    ArchiveEntry,
    SnapshotArchive,
    load_snapshot,
    save_snapshot,
)
from repro.bgp.coverage import CoverageReport, coverage_of, marginal_coverage
from repro.bgp.diff import TableDiff, churn_series, diff_tables
from repro.bgp.dynamics import (
    DynamicsReport,
    PeriodEffect,
    snapshot_times,
    study_dynamics,
)
from repro.bgp.formats import (
    FORMAT_CLASSFUL,
    FORMAT_DOTTED_NETMASK,
    FORMAT_MASK_LENGTH,
    detect_format,
    pad_dropped_zeroes,
    parse_entry,
    render_entry,
    unify,
)
from repro.bgp.sources import DEFAULT_SOURCES, SourceSpec, source_by_name
from repro.bgp.synth import SnapshotFactory, SnapshotTime, build_merged_table
from repro.bgp.table import (
    KIND_BGP,
    KIND_FORWARDING,
    KIND_REGISTRY,
    LookupResult,
    MergedPrefixTable,
    RouteEntry,
    RoutingTable,
)

__all__ = [
    "AsGraph",
    "build_as_graph",
    "path_length_histogram",
    "ArchiveEntry",
    "SnapshotArchive",
    "load_snapshot",
    "save_snapshot",
    "CoverageReport",
    "coverage_of",
    "marginal_coverage",
    "TableDiff",
    "diff_tables",
    "churn_series",
    "FORMAT_CLASSFUL",
    "FORMAT_DOTTED_NETMASK",
    "FORMAT_MASK_LENGTH",
    "detect_format",
    "pad_dropped_zeroes",
    "parse_entry",
    "render_entry",
    "unify",
    "SourceSpec",
    "DEFAULT_SOURCES",
    "source_by_name",
    "SnapshotFactory",
    "SnapshotTime",
    "build_merged_table",
    "RouteEntry",
    "RoutingTable",
    "MergedPrefixTable",
    "LookupResult",
    "KIND_BGP",
    "KIND_FORWARDING",
    "KIND_REGISTRY",
    "DynamicsReport",
    "PeriodEffect",
    "snapshot_times",
    "study_dynamics",
]
