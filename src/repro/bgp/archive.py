"""On-disk snapshot archives (the paper's collection process).

§3.1.1: "The BGP routing tables are collected automatically via a
simple script ... by downloading them from well-known Web sites (e.g.,
AADS) or telneting to a particular host to run a script to dump routing
tables (e.g., OREGON)."  The authors kept dated dump files per source;
this module models that archive:

* :func:`save_snapshot` / :func:`load_snapshot` round-trip a
  :class:`RoutingTable` through its native textual dump format;
* :class:`SnapshotArchive` manages a directory tree of dated dumps
  (``<root>/<source>/<date>.dump``), supports collecting a whole day's
  snapshots from a :class:`SnapshotFactory`, listing what is on disk,
  and rebuilding the merged prefix table purely from files — so the
  clustering pipeline can run offline from an archive, exactly like
  the paper's.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.bgp.formats import DumpReport
from repro.bgp.sources import SourceSpec
from repro.bgp.synth import SnapshotFactory, SnapshotTime
from repro.bgp.table import MergedPrefixTable, RoutingTable

__all__ = ["save_snapshot", "load_snapshot", "SnapshotArchive", "ArchiveEntry"]

_SAFE_NAME = re.compile(r"[^A-Za-z0-9._-]+")


def _safe(name: str) -> str:
    """Filesystem-safe rendering of a source name (AT&T-BGP -> AT_T-BGP)."""
    return _SAFE_NAME.sub("_", name)


def save_snapshot(table: RoutingTable, path: Path) -> int:
    """Write ``table`` to ``path`` in its native dump format.

    Returns the number of entries written.  A short header comment
    records provenance; parsers skip it.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with open(path, "w") as handle:
        handle.write(f"# source: {table.name}\n")
        handle.write(f"# kind: {table.kind}\n")
        handle.write(f"# date: {table.date}\n")
        for line in table.to_lines():
            handle.write(line + "\n")
            count += 1
    return count


def load_snapshot(
    path: Path,
    name: Optional[str] = None,
    kind: Optional[str] = None,
    report: Optional[DumpReport] = None,
    max_errors: Optional[int] = None,
) -> RoutingTable:
    """Read a dump written by :func:`save_snapshot` (or any raw dump).

    Provenance comments are honoured when present; explicit ``name`` /
    ``kind`` arguments override them (for dumps fetched from elsewhere).
    Malformed lines are counted-and-skipped into ``report`` with an
    optional ``max_errors`` budget — see
    :func:`repro.bgp.formats.iter_dump_routes`.
    """
    header: Dict[str, str] = {}
    with open(path) as handle:
        lines = handle.readlines()
    for line in lines[:5]:
        match = re.match(r"#\s*(\w+):\s*(.+)", line.strip())
        if match:
            header[match.group(1)] = match.group(2)
    table = RoutingTable.from_lines(
        name or header.get("source", path.stem),
        lines,
        kind=kind or header.get("kind", "bgp"),
        date=header.get("date", ""),
        report=report,
        max_errors=max_errors,
    )
    return table


@dataclass(frozen=True)
class ArchiveEntry:
    """One dump file known to the archive."""

    source_name: str
    date_label: str
    path: Path
    size_bytes: int


class SnapshotArchive:
    """A directory tree of dated routing-table dumps."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- collection ---------------------------------------------------------

    def collect(
        self,
        factory: SnapshotFactory,
        when: SnapshotTime = SnapshotTime(),
        sources: Optional[Sequence[SourceSpec]] = None,
    ) -> List[ArchiveEntry]:
        """Snapshot every source at ``when`` and store the dumps —
        the paper's nightly collection script."""
        entries: List[ArchiveEntry] = []
        for source in sources or factory.sources:
            table = factory.snapshot(source, when)
            path = self._path_for(source.name, when.label())
            save_snapshot(table, path)
            entries.append(
                ArchiveEntry(
                    source_name=source.name,
                    date_label=when.label(),
                    path=path,
                    size_bytes=path.stat().st_size,
                )
            )
        return entries

    def _path_for(self, source_name: str, date_label: str) -> Path:
        return self.root / _safe(source_name) / f"{date_label}.dump"

    # -- inspection ----------------------------------------------------------

    def entries(self) -> List[ArchiveEntry]:
        """Everything on disk, sorted by (source, date)."""
        found: List[ArchiveEntry] = []
        for source_dir in sorted(self.root.iterdir()):
            if not source_dir.is_dir():
                continue
            for dump in sorted(source_dir.glob("*.dump")):
                found.append(
                    ArchiveEntry(
                        source_name=source_dir.name,
                        date_label=dump.stem,
                        path=dump,
                        size_bytes=dump.stat().st_size,
                    )
                )
        return found

    def dates(self) -> List[str]:
        """Distinct date labels present in the archive."""
        return sorted({entry.date_label for entry in self.entries()})

    # -- reconstruction ---------------------------------------------------------

    def load(self, source_name: str, date_label: str) -> RoutingTable:
        """Load one dump (FileNotFoundError when absent)."""
        return load_snapshot(self._path_for(source_name, date_label))

    def merged_table(self, date_label: str) -> MergedPrefixTable:
        """Rebuild the merged prefix table for one date purely from
        the on-disk dumps (the offline §3.1 pipeline)."""
        tables = [
            load_snapshot(entry.path)
            for entry in self.entries()
            if entry.date_label == date_label
        ]
        if not tables:
            raise FileNotFoundError(
                f"no dumps for date {date_label!r} under {self.root}"
            )
        return MergedPrefixTable.from_tables(tables)
