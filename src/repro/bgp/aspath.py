"""AS-path analysis over routing snapshots.

§3.1.1: "The AS number and path information can also provide hints on
the geographical location of clients."  This module mines the AS paths
the snapshots already carry:

* :class:`AsGraph` — the AS-level adjacency graph induced by the paths
  (each consecutive ASN pair on a path is an edge), with BFS distances;
* :func:`path_length_histogram` — how long the observed paths are;
* :func:`as_distance_matrix` — hop distances from one AS to all others,
  an observable "closeness" signal that needs no probing and no
  geographic database — an alternative grouping key to
  :mod:`repro.core.placement`'s geography.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bgp.table import RoutingTable

__all__ = ["AsGraph", "build_as_graph", "path_length_histogram"]


@dataclass
class AsGraph:
    """Undirected AS adjacency graph mined from AS paths."""

    adjacency: Dict[int, Set[int]] = field(default_factory=dict)
    edge_observations: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.adjacency)

    def __contains__(self, asn: int) -> bool:
        return asn in self.adjacency

    def add_path(self, as_path: Tuple[int, ...]) -> None:
        """Record one observed AS path."""
        for asn in as_path:
            self.adjacency.setdefault(asn, set())
        for left, right in zip(as_path, as_path[1:]):
            if left == right:
                continue  # prepending produces repeats; not an edge
            self.adjacency[left].add(right)
            self.adjacency[right].add(left)
            key = (min(left, right), max(left, right))
            self.edge_observations[key] = self.edge_observations.get(key, 0) + 1

    def neighbors(self, asn: int) -> Set[int]:
        return self.adjacency.get(asn, set())

    def degree(self, asn: int) -> int:
        return len(self.neighbors(asn))

    def distances_from(self, origin: int) -> Dict[int, int]:
        """BFS hop distances from ``origin`` to every reachable AS."""
        if origin not in self.adjacency:
            return {}
        distances = {origin: 0}
        queue = deque([origin])
        while queue:
            current = queue.popleft()
            for neighbor in self.adjacency[current]:
                if neighbor not in distances:
                    distances[neighbor] = distances[current] + 1
                    queue.append(neighbor)
        return distances

    def distance(self, a: int, b: int) -> Optional[int]:
        """Hop distance between two ASes (None when disconnected)."""
        if a == b:
            return 0 if a in self.adjacency else None
        distances = self.distances_from(a)
        return distances.get(b)

    def hubs(self, count: int = 5) -> List[Tuple[int, int]]:
        """Highest-degree ASes — the transit backbone the paths share."""
        ordered = sorted(
            ((asn, self.degree(asn)) for asn in self.adjacency),
            key=lambda item: -item[1],
        )
        return ordered[:count]


def build_as_graph(tables: Iterable[RoutingTable]) -> AsGraph:
    """Mine the AS graph from every path in ``tables``."""
    graph = AsGraph()
    for table in tables:
        for entry in table:
            if entry.as_path:
                graph.add_path(entry.as_path)
    return graph


def path_length_histogram(tables: Iterable[RoutingTable]) -> Dict[int, int]:
    """Histogram of observed AS-path lengths (unique-ASN count)."""
    histogram: Dict[int, int] = {}
    for table in tables:
        for entry in table:
            if not entry.as_path:
                continue
            length = len(dict.fromkeys(entry.as_path))  # dedupe prepends
            histogram[length] = histogram.get(length, 0) + 1
    return histogram
