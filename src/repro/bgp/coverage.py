"""Address-space coverage analysis.

§3.1.2: "some routing tables have a better view of network routes than
others ... and none of them contain complete information of all the
prefixes and netmasks (not all routes are visible to each router)."
This module quantifies that, in *addresses* rather than entry counts,
using :class:`~repro.net.prefixset.PrefixSet` algebra:

* how much of the ground-truth allocated space one snapshot covers;
* how much each additional source adds to the union (the marginal
  value of collecting one more table — why the paper merged fourteen);
* which allocated space remains invisible (the clients that need the
  registry dumps or self-correction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.bgp.table import RoutingTable
from repro.net.prefix import Prefix
from repro.net.prefixset import PrefixSet

__all__ = ["CoverageReport", "coverage_of", "marginal_coverage"]


@dataclass(frozen=True)
class CoverageReport:
    """Coverage of one prefix collection against a reference space."""

    covered: PrefixSet
    reference: PrefixSet

    @property
    def covered_addresses(self) -> int:
        return self.covered.intersection(self.reference).num_addresses

    @property
    def fraction(self) -> float:
        total = self.reference.num_addresses
        if total == 0:
            return 1.0
        return self.covered_addresses / total

    @property
    def uncovered(self) -> PrefixSet:
        """Reference space no prefix covers (unclusterable territory)."""
        return self.reference - self.covered

    def describe(self) -> str:
        return (
            f"{self.fraction:.1%} of {self.reference.num_addresses:,} "
            f"reference addresses covered; "
            f"{self.uncovered.num_addresses:,} uncovered"
        )


def coverage_of(
    prefixes: Iterable[Prefix],
    reference: PrefixSet,
) -> CoverageReport:
    """How much of ``reference`` the given prefixes cover."""
    return CoverageReport(covered=PrefixSet(prefixes), reference=reference)


def marginal_coverage(
    tables: Sequence[RoutingTable],
    reference: PrefixSet,
) -> List[Tuple[str, float, float]]:
    """Greedy merge order: per table, (name, own fraction, cumulative).

    Tables are merged in the given order; the cumulative column shows
    the union's coverage growing — the paper's rationale for merging
    many partial views into one prefix table.
    """
    rows: List[Tuple[str, float, float]] = []
    union = PrefixSet.empty()
    for table in tables:
        own = coverage_of(table.prefixes(), reference)
        union = union | own.covered
        cumulative = CoverageReport(covered=union, reference=reference)
        rows.append((table.name, own.fraction, cumulative.fraction))
    return rows
