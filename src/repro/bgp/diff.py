"""Routing-table diffing.

§3.4 measures churn in aggregate (the dynamic prefix set); operators —
and the self-correction pass — also want to know *which* routes changed
between two snapshots.  :func:`diff_tables` computes the added,
withdrawn, and attribute-changed route sets; :func:`churn_series`
applies it pairwise along a snapshot sequence, giving the per-interval
view that Table 4's maximum-effect numbers summarise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.bgp.table import RouteEntry, RoutingTable
from repro.net.prefix import Prefix

__all__ = ["TableDiff", "diff_tables", "churn_series"]


@dataclass(frozen=True)
class TableDiff:
    """Differences between two snapshots of one source."""

    announced: Tuple[Prefix, ...]        # present only in the newer table
    withdrawn: Tuple[Prefix, ...]        # present only in the older table
    changed: Tuple[Prefix, ...]          # same prefix, different attributes
    unchanged_count: int

    @property
    def churned(self) -> int:
        """Prefixes whose presence flipped (the dynamic-set building
        block of §3.4)."""
        return len(self.announced) + len(self.withdrawn)

    @property
    def total_touched(self) -> int:
        return self.churned + len(self.changed)

    def describe(self) -> str:
        return (
            f"+{len(self.announced)} announced, "
            f"-{len(self.withdrawn)} withdrawn, "
            f"~{len(self.changed)} re-attributed, "
            f"{self.unchanged_count} stable"
        )


def _attributes(entry: RouteEntry) -> Tuple[str, Tuple[int, ...]]:
    return (entry.next_hop, entry.as_path)


def diff_tables(old: RoutingTable, new: RoutingTable) -> TableDiff:
    """Diff two snapshots (typically of the same source, ordered in
    time, though nothing requires it)."""
    old_prefixes = old.prefix_set()
    new_prefixes = new.prefix_set()
    announced = sorted(new_prefixes - old_prefixes, key=Prefix.sort_key)
    withdrawn = sorted(old_prefixes - new_prefixes, key=Prefix.sort_key)
    changed: List[Prefix] = []
    unchanged = 0
    for prefix in old_prefixes & new_prefixes:
        if _attributes(old.get(prefix)) != _attributes(new.get(prefix)):
            changed.append(prefix)
        else:
            unchanged += 1
    changed.sort(key=Prefix.sort_key)
    return TableDiff(
        announced=tuple(announced),
        withdrawn=tuple(withdrawn),
        changed=tuple(changed),
        unchanged_count=unchanged,
    )


def churn_series(snapshots: Sequence[RoutingTable]) -> List[TableDiff]:
    """Pairwise diffs along a chronological snapshot sequence.

    ``len(snapshots) - 1`` diffs; their union of flipped prefixes is
    exactly §3.4's dynamic prefix set for the period.
    """
    return [
        diff_tables(earlier, later)
        for earlier, later in zip(snapshots, snapshots[1:])
    ]
