"""BGP dynamics and their effect on clustering (§3.4, Table 4).

The paper measures, per source and per observation period (0, 1, 4, 7,
14 days):

* the snapshot size (number of prefixes);
* the *dynamic prefix set* — prefixes not present in every snapshot of
  the period — whose size is the *maximum effect*;
* how many of the prefixes actually used by a given log's clusters are
  dynamic (the effect that matters for clustering), overall and for
  busy clusters only.

Period 0 is not empty: frequently-updated sources take several
snapshots per day, so intra-day churn already produces a non-trivial
dynamic set (Table 4's first column).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.bgp.sources import SourceSpec
from repro.bgp.synth import SnapshotFactory, SnapshotTime
from repro.net.prefix import Prefix

__all__ = ["DynamicsReport", "PeriodEffect", "study_dynamics", "snapshot_times"]

#: Intra-day snapshot slots modelled for sources updated more often
#: than daily (2-hourly updates -> a handful of useful distinct dumps).
INTRADAY_SLOTS = 4


def snapshot_times(period_days: int, update_hours: float) -> List[SnapshotTime]:
    """The snapshot times an operator collecting for ``period_days``
    would hold: all of day 0's slots for sub-daily sources, then one
    snapshot per following day."""
    slots = INTRADAY_SLOTS if update_hours < 24.0 else 1
    times = [SnapshotTime(0, slot) for slot in range(slots)]
    times.extend(SnapshotTime(day, 0) for day in range(1, period_days + 1))
    return times


@dataclass(frozen=True)
class PeriodEffect:
    """Dynamics of one source over one observation period."""

    period_days: int
    table_size: int              # prefixes in the period's last snapshot
    union_prefixes: FrozenSet[Prefix]   # prefixes seen at least once
    dynamic_prefixes: FrozenSet[Prefix]

    @property
    def union_size(self) -> int:
        return len(self.union_prefixes)

    @property
    def maximum_effect(self) -> int:
        """|union - intersection|: the paper's worst-case churn bound."""
        return len(self.dynamic_prefixes)

    @property
    def dynamic_fraction(self) -> float:
        return self.maximum_effect / self.union_size if self.union_size else 0.0


@dataclass
class DynamicsReport:
    """Per-period dynamics for one source (one block of Table 4)."""

    source: SourceSpec
    periods: List[PeriodEffect]

    def effect_on_prefixes(
        self, used_prefixes: Iterable[Prefix]
    ) -> List[Tuple[int, int, int]]:
        """Project dynamics onto a set of cluster prefixes.

        For each period returns ``(period_days, used_in_table,
        max_effect)`` where ``used_in_table`` counts cluster prefixes
        present in the period's union and ``max_effect`` counts those
        that are dynamic — the Table 4 per-log rows.
        """
        used = set(used_prefixes)
        rows: List[Tuple[int, int, int]] = []
        for effect in self.periods:
            in_union = sum(1 for p in used if p in effect.union_prefixes)
            dynamic = len(used & effect.dynamic_prefixes)
            rows.append((effect.period_days, in_union, dynamic))
        return rows


def study_dynamics(
    factory: SnapshotFactory,
    source: SourceSpec,
    periods: Sequence[int] = (0, 1, 4, 7, 14),
) -> DynamicsReport:
    """Measure ``source``'s dynamics over each observation period."""
    report_periods: List[PeriodEffect] = []
    for period in periods:
        times = snapshot_times(period, source.update_hours)
        prefix_sets: List[FrozenSet[Prefix]] = []
        last_size = 0
        for when in times:
            snapshot = factory.snapshot(source, when)
            prefix_sets.append(snapshot.prefix_set())
            last_size = len(snapshot)
        union: Set[Prefix] = set()
        for prefixes in prefix_sets:
            union |= prefixes
        intersection: Set[Prefix] = set(prefix_sets[0])
        for prefixes in prefix_sets[1:]:
            intersection &= prefixes
        effect = PeriodEffect(
            period_days=period,
            table_size=last_size,
            union_prefixes=frozenset(union),
            dynamic_prefixes=frozenset(union - intersection),
        )
        report_periods.append(effect)
    return DynamicsReport(source=source, periods=report_periods)
