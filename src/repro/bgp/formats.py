"""Prefix/netmask textual formats and unification (§3.1.2).

Routing-table dumps circa 1999 spelled network entries in three ways:

(i)   ``x1.x2.x3.x4/k1.k2.k3.k4`` — prefix and dotted netmask, with
      trailing zero octets dropped from both (``151.198/255.255``);
(ii)  ``x1.x2.x3.x4/l`` — prefix and mask length (``12.65.128.0/19``);
(iii) ``x1.x2.x3.0`` — bare classful network; the mask is implied by
      the address class (8, 16, or 24 bits).

The paper unifies everything into format (i).  This module parses all
three, renders format (i), and guesses the format of a line so mixed
dumps can be ingested.

Real snapshots are dirty — headers, truncated lines, router chatter —
and the paper's collection scripts tolerated them (§3.1.1).
:func:`iter_dump_routes` is the streaming reader with the same
count-and-skip contract as ``weblog.parser.iter_clf_entries``: bad
lines are tallied in a :class:`DumpReport` instead of aborting the
load, ``max_errors`` guards against files that are not dumps at all,
and ``strict=True`` restores raise-on-first-error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.net.ipv4 import (
    AddressError,
    classful_prefix_length,
    netmask_to_length,
    parse_ipv4,
)
from repro.net.prefix import Prefix

__all__ = [
    "FORMAT_DOTTED_NETMASK",
    "FORMAT_MASK_LENGTH",
    "FORMAT_CLASSFUL",
    "parse_entry",
    "render_entry",
    "detect_format",
    "pad_dropped_zeroes",
    "DumpReport",
    "DumpLimitError",
    "iter_dump_routes",
]

FORMAT_DOTTED_NETMASK = "dotted_netmask"  # format (i)
FORMAT_MASK_LENGTH = "mask_length"        # format (ii)
FORMAT_CLASSFUL = "classful"              # format (iii)

_ALL_FORMATS = (FORMAT_DOTTED_NETMASK, FORMAT_MASK_LENGTH, FORMAT_CLASSFUL)


def pad_dropped_zeroes(text: str) -> str:
    """Restore trailing zero octets dropped from a dotted quad.

    >>> pad_dropped_zeroes("151.198")
    '151.198.0.0'
    """
    stripped = text.strip()
    if not stripped:
        raise AddressError("empty address field")
    count = stripped.count(".") + 1
    if count > 4:
        raise AddressError(f"too many octets: {text!r}")
    return stripped + ".0" * (4 - count)


def detect_format(entry: str) -> str:
    """Guess which of the three formats ``entry`` uses.

    A slash whose right side contains a dot is format (i); a slash with
    a bare integer is format (ii); no slash is format (iii).
    """
    entry = entry.strip()
    left, sep, right = entry.partition("/")
    if not sep:
        return FORMAT_CLASSFUL
    if "." in right:
        return FORMAT_DOTTED_NETMASK
    return FORMAT_MASK_LENGTH


def parse_entry(entry: str, fmt: Optional[str] = None) -> Prefix:
    """Parse one prefix entry in any of the three formats.

    ``fmt`` forces a specific format; by default it is detected.  The
    result is a canonical :class:`Prefix` (format unification).
    """
    entry = entry.strip()
    fmt = fmt or detect_format(entry)
    if fmt not in _ALL_FORMATS:
        raise AddressError(f"unknown prefix format: {fmt!r}")

    if fmt == FORMAT_CLASSFUL:
        address = parse_ipv4(pad_dropped_zeroes(entry))
        return Prefix(address, classful_prefix_length(address))

    left, sep, right = entry.partition("/")
    if not sep:
        raise AddressError(f"expected '/' in {fmt} entry: {entry!r}")
    address = parse_ipv4(pad_dropped_zeroes(left))

    if fmt == FORMAT_MASK_LENGTH:
        if not right.isdigit():
            raise AddressError(f"non-numeric mask length: {entry!r}")
        return Prefix(address, int(right))

    netmask = pad_dropped_zeroes(right)
    return Prefix(address, netmask_to_length(netmask))


def render_entry(prefix: Prefix, fmt: str = FORMAT_DOTTED_NETMASK) -> str:
    """Render ``prefix`` in the requested textual format.

    Format (i) is the paper's chosen standard; format (iii) refuses
    prefixes whose length does not match their address class (they have
    no classful spelling).
    """
    if fmt == FORMAT_DOTTED_NETMASK:
        return prefix.with_netmask
    if fmt == FORMAT_MASK_LENGTH:
        return prefix.cidr
    if fmt == FORMAT_CLASSFUL:
        if prefix.length != classful_prefix_length(prefix.network):
            raise AddressError(
                f"{prefix} is not a classful network; cannot render bare"
            )
        from repro.net.ipv4 import format_ipv4

        return format_ipv4(prefix.network)
    raise AddressError(f"unknown prefix format: {fmt!r}")


def unify(entry: str) -> str:
    """Parse ``entry`` in any format and re-render it in the standard
    format (i) — the paper's unification step in one call."""
    return render_entry(parse_entry(entry), FORMAT_DOTTED_NETMASK)


# -- streaming dump reading -----------------------------------------------


class DumpLimitError(ValueError):
    """Raised when malformed dump lines exceed a reader's ``max_errors``."""


@dataclass
class DumpReport:
    """Counts from one dump-reading pass (routing-data hygiene).

    ``skipped`` covers blank lines and ``#`` comments — expected
    structure, not damage; only ``malformed`` lines count against a
    ``max_errors`` budget.
    """

    total_lines: int = 0
    parsed: int = 0
    malformed: int = 0
    skipped: int = 0


def iter_dump_routes(
    lines: Iterable[str],
    report: Optional[DumpReport] = None,
    max_errors: Optional[int] = None,
    strict: bool = False,
) -> Iterator[Tuple[Prefix, List[str]]]:
    """Stream ``(prefix, fields)`` pairs out of routing-dump ``lines``.

    ``fields`` is the whitespace/tab-split line with the prefix text in
    ``fields[0]`` — callers pull next hop and AS path from the rest.
    Malformed lines (unparseable prefix in any of the three formats)
    are counted-and-skipped in ``report``; when more than ``max_errors``
    of them accumulate the stream raises :class:`DumpLimitError`
    (``max_errors=0`` means one bad line is fatal, ``None`` — the
    default — never trips).  ``strict=True`` re-raises the first
    parse error verbatim, the historical loader behaviour.
    """
    report = report if report is not None else DumpReport()
    for raw in lines:
        report.total_lines += 1
        line = raw.strip()
        if not line or line.startswith("#"):
            report.skipped += 1
            continue
        fields = line.split("\t") if "\t" in line else line.split()
        try:
            prefix = parse_entry(fields[0])
        except (AddressError, ValueError) as exc:
            if strict:
                raise
            report.malformed += 1
            if max_errors is not None and report.malformed > max_errors:
                raise DumpLimitError(
                    f"{report.malformed} malformed dump lines exceed the "
                    f"max_errors={max_errors} guard "
                    f"(line {report.total_lines}: {line[:80]!r})"
                ) from exc
            continue
        report.parsed += 1
        yield prefix, fields
