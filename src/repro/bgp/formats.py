"""Prefix/netmask textual formats and unification (§3.1.2).

Routing-table dumps circa 1999 spelled network entries in three ways:

(i)   ``x1.x2.x3.x4/k1.k2.k3.k4`` — prefix and dotted netmask, with
      trailing zero octets dropped from both (``151.198/255.255``);
(ii)  ``x1.x2.x3.x4/l`` — prefix and mask length (``12.65.128.0/19``);
(iii) ``x1.x2.x3.0`` — bare classful network; the mask is implied by
      the address class (8, 16, or 24 bits).

The paper unifies everything into format (i).  This module parses all
three, renders format (i), and guesses the format of a line so mixed
dumps can be ingested.
"""

from __future__ import annotations

from typing import Optional

from repro.net.ipv4 import (
    AddressError,
    classful_prefix_length,
    netmask_to_length,
    parse_ipv4,
)
from repro.net.prefix import Prefix

__all__ = [
    "FORMAT_DOTTED_NETMASK",
    "FORMAT_MASK_LENGTH",
    "FORMAT_CLASSFUL",
    "parse_entry",
    "render_entry",
    "detect_format",
    "pad_dropped_zeroes",
]

FORMAT_DOTTED_NETMASK = "dotted_netmask"  # format (i)
FORMAT_MASK_LENGTH = "mask_length"        # format (ii)
FORMAT_CLASSFUL = "classful"              # format (iii)

_ALL_FORMATS = (FORMAT_DOTTED_NETMASK, FORMAT_MASK_LENGTH, FORMAT_CLASSFUL)


def pad_dropped_zeroes(text: str) -> str:
    """Restore trailing zero octets dropped from a dotted quad.

    >>> pad_dropped_zeroes("151.198")
    '151.198.0.0'
    """
    stripped = text.strip()
    if not stripped:
        raise AddressError("empty address field")
    count = stripped.count(".") + 1
    if count > 4:
        raise AddressError(f"too many octets: {text!r}")
    return stripped + ".0" * (4 - count)


def detect_format(entry: str) -> str:
    """Guess which of the three formats ``entry`` uses.

    A slash whose right side contains a dot is format (i); a slash with
    a bare integer is format (ii); no slash is format (iii).
    """
    entry = entry.strip()
    left, sep, right = entry.partition("/")
    if not sep:
        return FORMAT_CLASSFUL
    if "." in right:
        return FORMAT_DOTTED_NETMASK
    return FORMAT_MASK_LENGTH


def parse_entry(entry: str, fmt: Optional[str] = None) -> Prefix:
    """Parse one prefix entry in any of the three formats.

    ``fmt`` forces a specific format; by default it is detected.  The
    result is a canonical :class:`Prefix` (format unification).
    """
    entry = entry.strip()
    fmt = fmt or detect_format(entry)
    if fmt not in _ALL_FORMATS:
        raise AddressError(f"unknown prefix format: {fmt!r}")

    if fmt == FORMAT_CLASSFUL:
        address = parse_ipv4(pad_dropped_zeroes(entry))
        return Prefix(address, classful_prefix_length(address))

    left, sep, right = entry.partition("/")
    if not sep:
        raise AddressError(f"expected '/' in {fmt} entry: {entry!r}")
    address = parse_ipv4(pad_dropped_zeroes(left))

    if fmt == FORMAT_MASK_LENGTH:
        if not right.isdigit():
            raise AddressError(f"non-numeric mask length: {entry!r}")
        return Prefix(address, int(right))

    netmask = pad_dropped_zeroes(right)
    return Prefix(address, netmask_to_length(netmask))


def render_entry(prefix: Prefix, fmt: str = FORMAT_DOTTED_NETMASK) -> str:
    """Render ``prefix`` in the requested textual format.

    Format (i) is the paper's chosen standard; format (iii) refuses
    prefixes whose length does not match their address class (they have
    no classful spelling).
    """
    if fmt == FORMAT_DOTTED_NETMASK:
        return prefix.with_netmask
    if fmt == FORMAT_MASK_LENGTH:
        return prefix.cidr
    if fmt == FORMAT_CLASSFUL:
        if prefix.length != classful_prefix_length(prefix.network):
            raise AddressError(
                f"{prefix} is not a classful network; cannot render bare"
            )
        from repro.net.ipv4 import format_ipv4

        return format_ipv4(prefix.network)
    raise AddressError(f"unknown prefix format: {fmt!r}")


def unify(entry: str) -> str:
    """Parse ``entry`` in any format and re-render it in the standard
    format (i) — the paper's unification step in one call."""
    return render_entry(parse_entry(entry), FORMAT_DOTTED_NETMASK)
