"""The collection of routing-table sources (paper Table 1).

Each :class:`SourceSpec` mirrors one row of Table 1: a vantage point
whose snapshots we synthesise from the ground-truth topology.  The spec
captures the properties that mattered to the paper:

* ``kind`` — BGP routing table, forwarding table, or registry (IP
  network) dump; registry dumps are the *secondary* prefix source;
* ``visibility`` — what fraction of the global announcement set this
  vantage sees (none of the tables is complete, §3.1.2);
* ``keeps_specifics`` — NAP route servers filtered prefixes longer
  than /24, while AT&T's forwarding table retained customer
  specifics; this is why the merged table's prefix lengths range up
  to /29 (Table 3) even though public BGP views show almost none;
* ``filler_blocks`` — registry dumps contain large numbers of
  registered-but-unrouted networks (§3.1.1: an address registered at
  ARIN "may not necessarily exist and be a routable host").

Relative table sizes mirror Table 1: the registry dumps are the largest
collections, OREGON is the biggest BGP view, CANET/VBNS are tiny.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.bgp.formats import (
    FORMAT_CLASSFUL,
    FORMAT_DOTTED_NETMASK,
    FORMAT_MASK_LENGTH,
)
from repro.bgp.table import KIND_BGP, KIND_FORWARDING, KIND_REGISTRY

__all__ = ["SourceSpec", "DEFAULT_SOURCES", "source_by_name"]


@dataclass(frozen=True)
class SourceSpec:
    """One routing-information source (a row of paper Table 1)."""

    name: str
    kind: str
    dump_format: str
    visibility: float
    keeps_specifics: bool = False
    filler_blocks: int = 0
    update_hours: float = 24.0
    comment: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.visibility <= 1.0:
            raise ValueError(f"visibility must be in [0,1]: {self.visibility!r}")


#: The paper's fourteen sources.  Visibility values are tuned so that
#: snapshot sizes keep Table 1's relative ordering at our synthetic
#: scale (OREGON is the largest BGP view; CANET and VBNS are tiny;
#: the registry dumps dwarf everything).
DEFAULT_SOURCES: Sequence[SourceSpec] = (
    SourceSpec("AADS", KIND_BGP, FORMAT_MASK_LENGTH, 0.24, False, 0, 2.0,
               "BGP routing table snapshots updated every 2 hours"),
    SourceSpec("ARIN", KIND_REGISTRY, FORMAT_CLASSFUL, 0.97, False, 12000, 720.0,
               "IP network dump"),
    SourceSpec("AT&T-BGP", KIND_BGP, FORMAT_DOTTED_NETMASK, 0.92, False, 0, 24.0,
               "BGP routing table snapshots"),
    SourceSpec("AT&T-Forw", KIND_FORWARDING, FORMAT_DOTTED_NETMASK, 0.84,
               True, 0, 24.0, "BGP forwarding table snapshots"),
    SourceSpec("CANET", KIND_BGP, FORMAT_MASK_LENGTH, 0.025, False, 0, 0.1,
               "Real-time BGP routing table snapshots"),
    SourceSpec("CERFNET", KIND_BGP, FORMAT_MASK_LENGTH, 0.66, False, 0, 0.1,
               "Real-time BGP routing table snapshots"),
    SourceSpec("MAE-EAST", KIND_BGP, FORMAT_MASK_LENGTH, 0.60, False, 0, 2.0,
               "BGP routing table snapshots taken every 2 hours"),
    SourceSpec("MAE-WEST", KIND_BGP, FORMAT_MASK_LENGTH, 0.42, False, 0, 2.0,
               "BGP routing table snapshots taken every 2 hours"),
    SourceSpec("NLANR", KIND_REGISTRY, FORMAT_CLASSFUL, 0.72, False, 8000, 8760.0,
               "IP network dump"),
    SourceSpec("OREGON", KIND_BGP, FORMAT_MASK_LENGTH, 0.94, False, 0, 0.1,
               "Real-time BGP routing table snapshots"),
    SourceSpec("PACBELL", KIND_BGP, FORMAT_MASK_LENGTH, 0.34, False, 0, 2.0,
               "BGP routing table snapshots updated every 2 hours"),
    SourceSpec("PAIX", KIND_BGP, FORMAT_MASK_LENGTH, 0.14, False, 0, 2.0,
               "BGP routing table snapshots updated every 2 hours"),
    SourceSpec("SINGAREN", KIND_BGP, FORMAT_MASK_LENGTH, 0.90, False, 0, 0.1,
               "Real-time BGP routing table snapshots"),
    SourceSpec("VBNS", KIND_BGP, FORMAT_DOTTED_NETMASK, 0.028, False, 0, 0.5,
               "BGP routing table snapshots updated every 30 minutes"),
)

_BY_NAME: Dict[str, SourceSpec] = {spec.name: spec for spec in DEFAULT_SOURCES}


def source_by_name(name: str) -> SourceSpec:
    """Return the default spec named ``name`` (KeyError if unknown)."""
    return _BY_NAME[name]
