"""Synthetic routing-table snapshots.

Derives per-vantage-point snapshots from the ground-truth topology's
announcement set.  Every decision is a deterministic function of
(seed, source, prefix, time), so:

* the same source produces an almost-identical table day after day
  (routing tables are mostly stable, §3.4);
* different sources see overlapping but different subsets (no vantage
  sees every route, §3.1.2), so merging genuinely helps coverage;
* a small flappy population plus gradual new announcements reproduce
  the BGP-dynamics behaviour of Table 4 (the dynamic prefix set grows
  with the observation period, intra-day churn included).

A ``global_hidden_fraction`` of allocations is invisible to *all* BGP
vantage points (announcement filtered before reaching any of them) but
still present in registry dumps — this is what makes the secondary
registry sources lift clusterable clients from ~99 % to ~99.9 %
(§3.1.1).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.sources import DEFAULT_SOURCES, SourceSpec
from repro.bgp.table import (
    KIND_BGP,
    KIND_REGISTRY,
    MergedPrefixTable,
    RouteEntry,
    RoutingTable,
)
from repro.net.prefix import Prefix
from repro.simnet.topology import Topology
from repro.util.rng import derive_seed, make_rng

__all__ = [
    "SnapshotFactory",
    "SnapshotTime",
    "RouteDelta",
    "DeltaGenerator",
    "build_merged_table",
]


def _hash01(seed: int, label: str) -> float:
    """Deterministic uniform variate in [0, 1) for a labelled event."""
    return (derive_seed(seed, label) & 0xFFFFFFFF) / float(1 << 32)


@dataclass(frozen=True)
class SnapshotTime:
    """When a snapshot was taken: day index plus intra-day slot.

    Frequently-updated sources (AADS every 2 hours) produce several
    slots per day; the paper's Table 4 period-0 column measures churn
    across the slots of a single day.
    """

    day: int = 0
    slot: int = 0

    def label(self) -> str:
        return f"d{self.day}s{self.slot}"


class SnapshotFactory:
    """Builds deterministic snapshots of any source at any time."""

    def __init__(
        self,
        topology: Topology,
        sources: Sequence[SourceSpec] = DEFAULT_SOURCES,
        seed: Optional[int] = None,
        flappy_fraction: float = 0.055,
        flap_absence: float = 0.35,
        late_arrival_fraction: float = 0.035,
        global_hidden_fraction: float = 0.004,
        specifics_leak: float = 0.015,
    ) -> None:
        self.topology = topology
        self.sources = tuple(sources)
        self.seed = derive_seed(
            topology.config.seed if seed is None else seed, "snapshots"
        )
        self.flappy_fraction = flappy_fraction
        self.flap_absence = flap_absence
        self.late_arrival_fraction = late_arrival_fraction
        self.global_hidden_fraction = global_hidden_fraction
        self.specifics_leak = specifics_leak
        self._announcements: List[Tuple[Prefix, int]] = list(
            topology.announced_routes()
        )
        self._registry: List[Tuple[Prefix, int]] = list(topology.registry_blocks())
        self._backbone_asns = [
            asn for asn, a_s in topology.ases.items() if a_s.kind == "backbone"
        ] or [1]

    # -- public API -----------------------------------------------------

    def snapshot(
        self, source: SourceSpec, when: SnapshotTime = SnapshotTime()
    ) -> RoutingTable:
        """Synthesise one snapshot of ``source`` at time ``when``."""
        table = RoutingTable(
            source.name,
            kind=source.kind,
            date=f"day{when.day}.slot{when.slot}",
            dump_format=source.dump_format,
        )
        if source.kind == KIND_REGISTRY:
            self._fill_registry(table, source)
            return table
        for prefix, origin_asn in self._announcements:
            if self._visible(source, prefix, when):
                table.add(self._route(source, prefix, origin_asn))
        return table

    def snapshots_all_sources(
        self, when: SnapshotTime = SnapshotTime()
    ) -> List[RoutingTable]:
        """One snapshot per configured source, all at time ``when``."""
        return [self.snapshot(source, when) for source in self.sources]

    def merged(self, when: SnapshotTime = SnapshotTime()) -> MergedPrefixTable:
        """The unified prefix table of §3.1: union of all snapshots."""
        return MergedPrefixTable.from_tables(self.snapshots_all_sources(when))

    def merged_without_registry(
        self, when: SnapshotTime = SnapshotTime()
    ) -> MergedPrefixTable:
        """Union of the primary (BGP/forwarding) sources only —
        the ablation behind the paper's 99 % → 99.9 % comparison."""
        tables = [
            self.snapshot(source, when)
            for source in self.sources
            if source.kind != KIND_REGISTRY
        ]
        return MergedPrefixTable.from_tables(tables)

    # -- visibility model --------------------------------------------------

    def _visible(
        self, source: SourceSpec, prefix: Prefix, when: SnapshotTime
    ) -> bool:
        key = f"{source.name}:{prefix.cidr}"
        # Globally filtered announcements reach no BGP vantage at all.
        if _hash01(self.seed, f"hidden:{prefix.cidr}") < self.global_hidden_fraction:
            return False
        # Base per-vantage visibility (peering/propagation).
        if _hash01(self.seed, f"vis:{key}") >= source.visibility:
            return False
        # NAP route servers filter long prefixes; forwarding tables keep
        # customer specifics (hence the /25–/29 entries of Table 3).
        if prefix.length > 24 and not source.keeps_specifics:
            if _hash01(self.seed, f"leak:{key}") >= self.specifics_leak:
                return False
        # Late arrivals: routes announced partway through the study.
        if _hash01(self.seed, f"new:{prefix.cidr}") < self.late_arrival_fraction:
            arrival_day = 1 + int(
                _hash01(self.seed, f"newday:{prefix.cidr}") * 14
            )
            if when.day < arrival_day:
                return False
        # Flapping population: present in most snapshots, absent in some.
        if _hash01(self.seed, f"flappy:{key}") < self.flappy_fraction:
            if (
                _hash01(self.seed, f"flap:{key}:{when.label()}")
                < self.flap_absence
            ):
                return False
        return True

    def _route(
        self, source: SourceSpec, prefix: Prefix, origin_asn: int
    ) -> RouteEntry:
        h = derive_seed(self.seed, f"path:{source.name}:{origin_asn}")
        hops = h % 3  # 0-2 transit hops
        transit = tuple(
            self._backbone_asns[(h >> (4 * (i + 1))) % len(self._backbone_asns)]
            for i in range(hops)
        )
        next_hop = f"peer{h % 8}.{source.name.lower().replace('&', '')}.net"
        origin = self.topology.ases.get(origin_asn)
        return RouteEntry(
            prefix=prefix,
            next_hop=next_hop,
            as_path=transit + (origin_asn,),
            description=origin.name if origin else "",
        )

    # -- registry dumps ------------------------------------------------------

    def _fill_registry(self, table: RoutingTable, source: SourceSpec) -> None:
        for prefix, origin_asn in self._registry:
            key = f"{source.name}:{prefix.cidr}"
            if _hash01(self.seed, f"vis:{key}") < source.visibility:
                table.add(RouteEntry(prefix=prefix, description=f"AS{origin_asn}"))
        for prefix in self._filler_blocks(source):
            table.add(RouteEntry(prefix=prefix, description="registered, unrouted"))

    def _filler_blocks(self, source: SourceSpec) -> Iterable[Prefix]:
        """Registered-but-unrouted networks padding the registry dumps.

        Carved downward from 223/8 so they can never collide with the
        allocator (which grows upward from 4/8) or with the bogus-client
        space (127/8).
        """
        h = derive_seed(self.seed, f"filler:{source.name}")
        cursor = (223 << 24)
        produced = 0
        while produced < source.filler_blocks:
            length = 16 + (derive_seed(h, str(produced)) % 9)  # /16../24
            size = 1 << (32 - length)
            cursor = (cursor - size) & ~(size - 1)
            yield Prefix(cursor, length)
            produced += 1


@dataclass(frozen=True)
class RouteDelta:
    """One incremental routing event: an announce or a withdraw.

    The JSON form doubles as the serve-stream wire format
    (:mod:`repro.serve.protocol`): ``type`` is the operation, ``prefix``
    is CIDR text, and ``reason`` records which churn process produced
    the event (``churn``, ``flap``, ``aggregation``, ``deaggregation``)
    so traces stay debuggable.
    """

    op: str
    prefix: Prefix
    origin_asn: int = 0
    source: str = ""
    reason: str = ""

    OP_ANNOUNCE = "announce"
    OP_WITHDRAW = "withdraw"

    def __post_init__(self) -> None:
        if self.op not in (self.OP_ANNOUNCE, self.OP_WITHDRAW):
            raise ValueError(f"unknown delta op: {self.op!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.op,
            "prefix": self.prefix.cidr,
            "origin_asn": self.origin_asn,
            "source": self.source,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RouteDelta":
        return cls(
            op=str(data["type"]),
            prefix=Prefix.from_cidr(str(data["prefix"])),
            origin_asn=int(data.get("origin_asn", 0)),
            source=str(data.get("source", "")),
            reason=str(data.get("reason", "")),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RouteDelta":
        return cls.from_dict(json.loads(text))


class DeltaGenerator:
    """Seeded stream of incremental routing events for one vantage.

    Drives the serve daemon the way a live BGP feed would: the base
    churn process replays the §3.4 visibility model slot-by-slot (the
    same intra-day dynamics ``bgp.dynamics.study_dynamics`` measures for
    period 0), and on top of it the generator mixes in route flaps,
    deaggregation (a live block splits into its two halves) and
    aggregation (a sibling pair collapses back into its live parent).
    Every event is a :class:`RouteDelta`; the live set is tracked so a
    withdraw is only ever emitted for a currently-announced prefix.
    """

    #: Mix of extra event processes layered over the base churn stream.
    FLAP_FRACTION = 0.25
    DEAGGREGATE_FRACTION = 0.08
    AGGREGATE_FRACTION = 0.06

    def __init__(
        self,
        factory: SnapshotFactory,
        source: Optional[SourceSpec] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.factory = factory
        if source is None:
            source = next(
                spec for spec in factory.sources if spec.kind == KIND_BGP
            )
        self.source = source
        self._rng = make_rng(
            derive_seed(
                factory.seed if seed is None else seed, "delta-stream"
            )
        )
        self._origins: Dict[Prefix, int] = dict(factory._announcements)
        self._when = SnapshotTime(0, 0)
        self._live: Dict[Prefix, int] = {
            prefix: origin_asn
            for prefix, origin_asn in factory._announcements
            if factory._visible(source, prefix, self._when)
        }
        # Generated-but-not-yet-emitted events: bursts are produced
        # whole, so :meth:`events` queues the overflow here and the
        # next call drains it first — successive calls concatenate into
        # one coherent stream.
        self._pending: Deque[RouteDelta] = deque()
        # The live set as seen by a consumer of the *emitted* stream
        # (``_live`` runs ahead of it by the queued events).
        self._emitted_live: Set[Prefix] = set(self._live)

    # -- observation -----------------------------------------------------

    @property
    def live_prefixes(self) -> Tuple[Prefix, ...]:
        """Prefixes announced by the emitted stream, in table order.

        Tracks the events :meth:`events` has actually handed out — a
        consumer replaying them over the day-0 snapshot lands on
        exactly this set.
        """
        return tuple(sorted(self._emitted_live, key=Prefix.sort_key))

    def _ordered_live(self) -> Tuple[Prefix, ...]:
        """Generation-state live set (includes queued events' effects)."""
        return tuple(sorted(self._live, key=Prefix.sort_key))

    # -- event processes -------------------------------------------------

    def _announce(self, prefix: Prefix, origin_asn: int, reason: str) -> RouteDelta:
        self._live[prefix] = origin_asn
        return RouteDelta(
            op=RouteDelta.OP_ANNOUNCE,
            prefix=prefix,
            origin_asn=origin_asn,
            source=self.source.name,
            reason=reason,
        )

    def _withdraw(self, prefix: Prefix, reason: str) -> RouteDelta:
        origin_asn = self._live.pop(prefix)
        return RouteDelta(
            op=RouteDelta.OP_WITHDRAW,
            prefix=prefix,
            origin_asn=origin_asn,
            source=self.source.name,
            reason=reason,
        )

    def step(self) -> List[RouteDelta]:
        """Advance one snapshot slot and emit the visibility churn.

        Diffs the §3.4 visibility model between consecutive intra-day
        slots — exactly the period-0 dynamic-prefix process of Table 4 —
        and converts the difference into withdraw/announce events.
        """
        from repro.bgp.dynamics import INTRADAY_SLOTS

        slot = self._when.slot + 1
        day = self._when.day
        if slot >= INTRADAY_SLOTS:
            slot = 0
            day += 1
        self._when = SnapshotTime(day, slot)
        events: List[RouteDelta] = []
        factory, source = self.factory, self.source
        for prefix, origin_asn in factory._announcements:
            visible = factory._visible(source, prefix, self._when)
            if visible and prefix not in self._live:
                events.append(self._announce(prefix, origin_asn, "churn"))
            elif not visible and prefix in self._live:
                events.append(self._withdraw(prefix, "churn"))
        return events

    def flap(self) -> List[RouteDelta]:
        """One route flap: a live prefix withdrawn and re-announced."""
        if not self._live:
            return []
        prefix = self._rng.choice(self._ordered_live())
        origin_asn = self._live[prefix]
        return [
            self._withdraw(prefix, "flap"),
            self._announce(prefix, origin_asn, "flap"),
        ]

    def deaggregate(self) -> List[RouteDelta]:
        """Announce the two more-specific halves of a live block."""
        candidates = [
            prefix
            for prefix in self._ordered_live()
            if prefix.length <= 24
            and all(child not in self._live for child in prefix.children())
        ]
        if not candidates:
            return []
        prefix = self._rng.choice(candidates)
        origin_asn = self._live[prefix]
        return [
            self._announce(child, origin_asn, "deaggregation")
            for child in prefix.children()
        ]

    def aggregate(self) -> List[RouteDelta]:
        """Withdraw a sibling pair whose covering parent stays live."""
        live = self._live
        candidates = []
        for prefix in self._ordered_live():
            if prefix.length == 0:
                continue
            sibling = prefix.sibling()
            if (
                sibling is not None
                and sibling in live
                and prefix < sibling
                and prefix.parent() in live
            ):
                candidates.append(prefix)
        if not candidates:
            return []
        prefix = self._rng.choice(candidates)
        sibling = prefix.sibling()
        assert sibling is not None  # length > 0 guaranteed above
        return [
            self._withdraw(prefix, "aggregation"),
            self._withdraw(sibling, "aggregation"),
        ]

    # -- stream ----------------------------------------------------------

    def events(self, count: int) -> List[RouteDelta]:
        """Emit exactly ``count`` events, resuming where the last call
        stopped.

        The mix is seeded: flaps, deaggregation and aggregation are
        drawn per roll; everything else advances the churn clock.  A
        quiet spell (several rolls producing nothing) forces a flap so
        the stream never stalls.  Bursts are generated whole; overflow
        past ``count`` waits in the pending queue for the next call, so
        successive calls concatenate into one coherent stream and
        :attr:`live_prefixes` always matches the events handed out.
        """
        emitted: List[RouteDelta] = []
        quiet = 0
        while len(emitted) < count:
            if self._pending:
                delta = self._pending.popleft()
                if delta.op == RouteDelta.OP_WITHDRAW:
                    self._emitted_live.discard(delta.prefix)
                else:
                    self._emitted_live.add(delta.prefix)
                emitted.append(delta)
                continue
            roll = self._rng.random()
            if roll < self.FLAP_FRACTION:
                burst = self.flap()
            elif roll < self.FLAP_FRACTION + self.DEAGGREGATE_FRACTION:
                burst = self.deaggregate()
            elif roll < (
                self.FLAP_FRACTION
                + self.DEAGGREGATE_FRACTION
                + self.AGGREGATE_FRACTION
            ):
                burst = self.aggregate()
            else:
                burst = self.step()
            if burst:
                quiet = 0
                self._pending.extend(burst)
            else:
                quiet += 1
                if quiet >= 3:
                    self._pending.extend(self.flap())
                    quiet = 0
        return emitted


def build_merged_table(
    topology: Topology,
    sources: Sequence[SourceSpec] = DEFAULT_SOURCES,
    when: SnapshotTime = SnapshotTime(),
    seed: Optional[int] = None,
) -> MergedPrefixTable:
    """Convenience: snapshot every source at ``when`` and merge."""
    return SnapshotFactory(topology, sources, seed=seed).merged(when)
