"""Synthetic routing-table snapshots.

Derives per-vantage-point snapshots from the ground-truth topology's
announcement set.  Every decision is a deterministic function of
(seed, source, prefix, time), so:

* the same source produces an almost-identical table day after day
  (routing tables are mostly stable, §3.4);
* different sources see overlapping but different subsets (no vantage
  sees every route, §3.1.2), so merging genuinely helps coverage;
* a small flappy population plus gradual new announcements reproduce
  the BGP-dynamics behaviour of Table 4 (the dynamic prefix set grows
  with the observation period, intra-day churn included).

A ``global_hidden_fraction`` of allocations is invisible to *all* BGP
vantage points (announcement filtered before reaching any of them) but
still present in registry dumps — this is what makes the secondary
registry sources lift clusterable clients from ~99 % to ~99.9 %
(§3.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.bgp.sources import DEFAULT_SOURCES, SourceSpec
from repro.bgp.table import (
    KIND_REGISTRY,
    MergedPrefixTable,
    RouteEntry,
    RoutingTable,
)
from repro.net.prefix import Prefix
from repro.simnet.topology import Topology
from repro.util.rng import derive_seed

__all__ = ["SnapshotFactory", "SnapshotTime", "build_merged_table"]


def _hash01(seed: int, label: str) -> float:
    """Deterministic uniform variate in [0, 1) for a labelled event."""
    return (derive_seed(seed, label) & 0xFFFFFFFF) / float(1 << 32)


@dataclass(frozen=True)
class SnapshotTime:
    """When a snapshot was taken: day index plus intra-day slot.

    Frequently-updated sources (AADS every 2 hours) produce several
    slots per day; the paper's Table 4 period-0 column measures churn
    across the slots of a single day.
    """

    day: int = 0
    slot: int = 0

    def label(self) -> str:
        return f"d{self.day}s{self.slot}"


class SnapshotFactory:
    """Builds deterministic snapshots of any source at any time."""

    def __init__(
        self,
        topology: Topology,
        sources: Sequence[SourceSpec] = DEFAULT_SOURCES,
        seed: Optional[int] = None,
        flappy_fraction: float = 0.055,
        flap_absence: float = 0.35,
        late_arrival_fraction: float = 0.035,
        global_hidden_fraction: float = 0.004,
        specifics_leak: float = 0.015,
    ) -> None:
        self.topology = topology
        self.sources = tuple(sources)
        self.seed = derive_seed(
            topology.config.seed if seed is None else seed, "snapshots"
        )
        self.flappy_fraction = flappy_fraction
        self.flap_absence = flap_absence
        self.late_arrival_fraction = late_arrival_fraction
        self.global_hidden_fraction = global_hidden_fraction
        self.specifics_leak = specifics_leak
        self._announcements: List[Tuple[Prefix, int]] = list(
            topology.announced_routes()
        )
        self._registry: List[Tuple[Prefix, int]] = list(topology.registry_blocks())
        self._backbone_asns = [
            asn for asn, a_s in topology.ases.items() if a_s.kind == "backbone"
        ] or [1]

    # -- public API -----------------------------------------------------

    def snapshot(
        self, source: SourceSpec, when: SnapshotTime = SnapshotTime()
    ) -> RoutingTable:
        """Synthesise one snapshot of ``source`` at time ``when``."""
        table = RoutingTable(
            source.name,
            kind=source.kind,
            date=f"day{when.day}.slot{when.slot}",
            dump_format=source.dump_format,
        )
        if source.kind == KIND_REGISTRY:
            self._fill_registry(table, source)
            return table
        for prefix, origin_asn in self._announcements:
            if self._visible(source, prefix, when):
                table.add(self._route(source, prefix, origin_asn))
        return table

    def snapshots_all_sources(
        self, when: SnapshotTime = SnapshotTime()
    ) -> List[RoutingTable]:
        """One snapshot per configured source, all at time ``when``."""
        return [self.snapshot(source, when) for source in self.sources]

    def merged(self, when: SnapshotTime = SnapshotTime()) -> MergedPrefixTable:
        """The unified prefix table of §3.1: union of all snapshots."""
        return MergedPrefixTable.from_tables(self.snapshots_all_sources(when))

    def merged_without_registry(
        self, when: SnapshotTime = SnapshotTime()
    ) -> MergedPrefixTable:
        """Union of the primary (BGP/forwarding) sources only —
        the ablation behind the paper's 99 % → 99.9 % comparison."""
        tables = [
            self.snapshot(source, when)
            for source in self.sources
            if source.kind != KIND_REGISTRY
        ]
        return MergedPrefixTable.from_tables(tables)

    # -- visibility model --------------------------------------------------

    def _visible(
        self, source: SourceSpec, prefix: Prefix, when: SnapshotTime
    ) -> bool:
        key = f"{source.name}:{prefix.cidr}"
        # Globally filtered announcements reach no BGP vantage at all.
        if _hash01(self.seed, f"hidden:{prefix.cidr}") < self.global_hidden_fraction:
            return False
        # Base per-vantage visibility (peering/propagation).
        if _hash01(self.seed, f"vis:{key}") >= source.visibility:
            return False
        # NAP route servers filter long prefixes; forwarding tables keep
        # customer specifics (hence the /25–/29 entries of Table 3).
        if prefix.length > 24 and not source.keeps_specifics:
            if _hash01(self.seed, f"leak:{key}") >= self.specifics_leak:
                return False
        # Late arrivals: routes announced partway through the study.
        if _hash01(self.seed, f"new:{prefix.cidr}") < self.late_arrival_fraction:
            arrival_day = 1 + int(
                _hash01(self.seed, f"newday:{prefix.cidr}") * 14
            )
            if when.day < arrival_day:
                return False
        # Flapping population: present in most snapshots, absent in some.
        if _hash01(self.seed, f"flappy:{key}") < self.flappy_fraction:
            if (
                _hash01(self.seed, f"flap:{key}:{when.label()}")
                < self.flap_absence
            ):
                return False
        return True

    def _route(
        self, source: SourceSpec, prefix: Prefix, origin_asn: int
    ) -> RouteEntry:
        h = derive_seed(self.seed, f"path:{source.name}:{origin_asn}")
        hops = h % 3  # 0-2 transit hops
        transit = tuple(
            self._backbone_asns[(h >> (4 * (i + 1))) % len(self._backbone_asns)]
            for i in range(hops)
        )
        next_hop = f"peer{h % 8}.{source.name.lower().replace('&', '')}.net"
        origin = self.topology.ases.get(origin_asn)
        return RouteEntry(
            prefix=prefix,
            next_hop=next_hop,
            as_path=transit + (origin_asn,),
            description=origin.name if origin else "",
        )

    # -- registry dumps ------------------------------------------------------

    def _fill_registry(self, table: RoutingTable, source: SourceSpec) -> None:
        for prefix, origin_asn in self._registry:
            key = f"{source.name}:{prefix.cidr}"
            if _hash01(self.seed, f"vis:{key}") < source.visibility:
                table.add(RouteEntry(prefix=prefix, description=f"AS{origin_asn}"))
        for prefix in self._filler_blocks(source):
            table.add(RouteEntry(prefix=prefix, description="registered, unrouted"))

    def _filler_blocks(self, source: SourceSpec) -> Iterable[Prefix]:
        """Registered-but-unrouted networks padding the registry dumps.

        Carved downward from 223/8 so they can never collide with the
        allocator (which grows upward from 4/8) or with the bogus-client
        space (127/8).
        """
        h = derive_seed(self.seed, f"filler:{source.name}")
        cursor = (223 << 24)
        produced = 0
        while produced < source.filler_blocks:
            length = 16 + (derive_seed(h, str(produced)) % 9)  # /16../24
            size = 1 << (32 - length)
            cursor = (cursor - size) & ~(size - 1)
            yield Prefix(cursor, length)
            produced += 1


def build_merged_table(
    topology: Topology,
    sources: Sequence[SourceSpec] = DEFAULT_SOURCES,
    when: SnapshotTime = SnapshotTime(),
    seed: Optional[int] = None,
) -> MergedPrefixTable:
    """Convenience: snapshot every source at ``when`` and merge."""
    return SnapshotFactory(topology, sources, seed=seed).merged(when)
