"""``repro-bgp-synth``: synthetic event streams for the serve daemon.

The feeder half of the live pipeline.  It builds the same deterministic
world the test-suite uses (topology → snapshots → weblog) and prints
ndjson events :mod:`repro.serve.protocol` decodes::

    # routing deltas alone (announce/withdraw/flap/aggregation churn)
    repro-bgp-synth --deltas 500 > deltas.ndjson

    # a mixed stream: weblog requests with a delta every 250 events
    repro-bgp-synth --stream 100000 --delta-every 250 \\
        --write-tables dumps/ | repro-engine serve --stdin \\
        --table dumps/AADS.dump

``--write-tables`` dumps the delta source's day-0 snapshot, so the
served table starts from exactly the routing state the generator's
live set tracks — withdraws always name announced prefixes.
Everything is seeded: the same flags produce the same bytes.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.bgp.sources import source_by_name
from repro.bgp.synth import DeltaGenerator, RouteDelta, SnapshotFactory
from repro.serve.protocol import LogEvent
from repro.simnet.topology import TopologyConfig, generate_topology
from repro.weblog.presets import make_log

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bgp-synth",
        description=(
            "Generate seeded ndjson event streams — BGP route deltas, "
            "optionally mixed with synthetic weblog requests — for "
            "repro-engine serve."
        ),
    )
    what = parser.add_mutually_exclusive_group(required=True)
    what.add_argument(
        "--deltas", type=int, default=None, metavar="N",
        help="emit N routing delta events and exit",
    )
    what.add_argument(
        "--stream", type=int, default=None, metavar="N",
        help="emit a mixed stream of N events: weblog requests with "
             "routing deltas interleaved every --delta-every events",
    )
    parser.add_argument(
        "--delta-every", type=int, default=250, metavar="K",
        help="in --stream mode, one routing delta after every K "
             "events (default 250)",
    )
    parser.add_argument(
        "--seed", type=int, default=2000, metavar="SEED",
        help="world seed: topology, snapshots, weblog and delta stream "
             "all derive from it (default 2000)",
    )
    parser.add_argument(
        "--source", default="AADS", metavar="NAME",
        help="routing source the deltas replay (a Table 1 BGP source; "
             "default AADS, the 2-hourly vantage)",
    )
    parser.add_argument(
        "--preset", default="nagano", metavar="NAME",
        help="weblog preset for --stream log events (default nagano)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.12, metavar="F",
        help="weblog preset scale factor (default 0.12)",
    )
    parser.add_argument(
        "--write-tables", metavar="DIR", default=None,
        help="also write the delta source's day-0 snapshot dump to "
             "DIR/<source>.dump — the initial table a serve run should "
             "load",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.delta_every < 1:
        parser.error("--delta-every must be >= 1")

    topology = generate_topology(TopologyConfig(seed=args.seed))
    factory = SnapshotFactory(topology)
    source = source_by_name(args.source)
    generator = DeltaGenerator(factory, source=source, seed=args.seed)

    if args.write_tables:
        os.makedirs(args.write_tables, exist_ok=True)
        snapshot = factory.snapshot(source)
        path = os.path.join(args.write_tables, f"{source.name}.dump")
        with open(path, "w") as handle:
            for line in snapshot.to_lines():
                handle.write(line + "\n")
        print(
            f"wrote {len(snapshot):,} routes to {path}", file=sys.stderr
        )

    out = sys.stdout
    if args.deltas is not None:
        for delta in generator.events(args.deltas):
            out.write(delta.to_json() + "\n")
        return 0

    total = args.stream
    num_deltas = total // args.delta_every
    deltas: List[RouteDelta] = (
        generator.events(num_deltas) if num_deltas else []
    )
    log = make_log(topology, args.preset, scale=args.scale, seed=args.seed)
    entries = log.log.entries
    if not entries:
        print("preset produced an empty log", file=sys.stderr)
        return 1
    emitted = 0
    cursor = 0
    delta_cursor = 0
    while emitted < total:
        if (
            delta_cursor < len(deltas)
            and emitted
            and emitted % args.delta_every == 0
        ):
            out.write(deltas[delta_cursor].to_json() + "\n")
            delta_cursor += 1
        else:
            entry = entries[cursor % len(entries)]
            cursor += 1
            out.write(
                LogEvent(
                    client=entry.client, url=entry.url, size=entry.size
                ).to_json()
                + "\n"
            )
        emitted += 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
