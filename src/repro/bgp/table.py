"""Routing tables and the merged prefix table.

A :class:`RoutingTable` models one snapshot from one source (one row of
the paper's Table 1): a set of route entries with prefix, next hop, and
AS path.  Snapshots serialise to / parse from the textual dump formats
of §3.1.2.

:class:`MergedPrefixTable` is the union the clustering consumes (§3.1):
all prefixes from all snapshots in one radix tree, with provenance so
we can report how many clients were clustered by secondary (registry
dump) prefixes versus primary (BGP) prefixes — the paper's 99 % → 99.9 %
improvement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.bgp.formats import (
    FORMAT_DOTTED_NETMASK,
    DumpReport,
    iter_dump_routes,
    render_entry,
)
from repro.net.prefix import Prefix
from repro.net.radix import RadixTree

__all__ = ["RouteEntry", "RoutingTable", "MergedPrefixTable", "LookupResult"]

#: Source kinds, in priority order: BGP dumps are the primary prefix
#: source, forwarding tables next, registry (IP network) dumps last.
KIND_BGP = "bgp"
KIND_FORWARDING = "forwarding"
KIND_REGISTRY = "registry"
_KIND_PRIORITY = {KIND_BGP: 0, KIND_FORWARDING: 1, KIND_REGISTRY: 2}


@dataclass(frozen=True)
class RouteEntry:
    """One route: prefix plus the interdomain attributes we retain.

    The clustering itself uses only ``prefix`` (§3.1.1: "we have only
    used the prefix/netmask information"), but next hop and AS path are
    kept because the paper notes they hint at client geography.
    """

    prefix: Prefix
    next_hop: str = ""
    as_path: Tuple[int, ...] = ()
    description: str = ""

    @property
    def origin_as(self) -> Optional[int]:
        """The last AS on the path (the route's originator)."""
        return self.as_path[-1] if self.as_path else None


class RoutingTable:
    """One snapshot of one routing/forwarding/registry table."""

    def __init__(
        self,
        name: str,
        kind: str = KIND_BGP,
        date: str = "",
        dump_format: str = FORMAT_DOTTED_NETMASK,
    ) -> None:
        if kind not in _KIND_PRIORITY:
            raise ValueError(f"unknown table kind: {kind!r}")
        self.name = name
        self.kind = kind
        self.date = date
        self.dump_format = dump_format
        self._entries: Dict[Prefix, RouteEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._entries

    def __iter__(self) -> Iterator[RouteEntry]:
        return iter(self._entries.values())

    def add(self, entry: RouteEntry) -> None:
        """Insert/replace the route for ``entry.prefix``."""
        self._entries[entry.prefix] = entry

    def add_prefix(self, prefix: Prefix, **attrs) -> None:
        """Shorthand: add a route built from ``prefix`` and attributes."""
        self.add(RouteEntry(prefix=prefix, **attrs))

    def prefixes(self) -> List[Prefix]:
        """All prefixes, in address order."""
        return sorted(self._entries, key=Prefix.sort_key)

    def prefix_set(self) -> frozenset:
        """The prefix set (for dynamics intersections, §3.4)."""
        return frozenset(self._entries)

    def get(self, prefix: Prefix) -> Optional[RouteEntry]:
        return self._entries.get(prefix)

    def prefix_length_histogram(self) -> Dict[int, int]:
        """Histogram of prefix lengths (regenerates Figure 1)."""
        histogram: Dict[int, int] = {}
        for prefix in self._entries:
            histogram[prefix.length] = histogram.get(prefix.length, 0) + 1
        return histogram

    # -- dump I/O ---------------------------------------------------------

    def to_lines(self) -> Iterator[str]:
        """Serialise in this table's dump format.

        Line layout: ``<prefix>  <next_hop>  <as_path>`` with the path
        space-separated, mirroring a route-viewer dump.  Registry dumps
        carry only the network field, like ARIN's netinfo files.
        """
        from repro.bgp.formats import FORMAT_MASK_LENGTH
        from repro.net.ipv4 import AddressError

        for prefix in self.prefixes():
            entry = self._entries[prefix]
            try:
                rendered = render_entry(prefix, self.dump_format)
            except AddressError:
                # Registry dumps mix bare classful lines with explicit
                # prefixes for CIDR blocks, as the real netinfo files did.
                rendered = render_entry(prefix, FORMAT_MASK_LENGTH)
            if self.kind == KIND_REGISTRY:
                yield rendered
            else:
                path = " ".join(str(asn) for asn in entry.as_path)
                yield f"{rendered}\t{entry.next_hop}\t{path}".rstrip()

    @classmethod
    def from_lines(
        cls,
        name: str,
        lines: Iterable[str],
        kind: str = KIND_BGP,
        date: str = "",
        dump_format: str = FORMAT_DOTTED_NETMASK,
        strict: bool = False,
        report: Optional[DumpReport] = None,
        max_errors: Optional[int] = None,
    ) -> "RoutingTable":
        """Parse a dump with count-and-skip hygiene.

        Real dumps contain headers, comments, and truncated lines; the
        collector scripts of §3.1.1 tolerate them, and so do we —
        malformed lines are tallied in ``report`` (pass one in to read
        the counts back) and ``max_errors`` bounds how much damage is
        tolerable before :class:`~repro.bgp.formats.DumpLimitError`
        aborts the load.  ``strict=True`` preserves the historical
        raise-on-first-error behaviour.
        """
        table = cls(name, kind=kind, date=date, dump_format=dump_format)
        for prefix, fields in iter_dump_routes(
            lines, report=report, max_errors=max_errors, strict=strict
        ):
            next_hop = fields[1] if len(fields) > 1 else ""
            as_path: Tuple[int, ...] = ()
            if len(fields) > 2:
                try:
                    as_path = tuple(int(tok) for tok in fields[2].split())
                except ValueError:
                    as_path = ()
            table.add(RouteEntry(prefix, next_hop, as_path))
        return table


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a longest-prefix match on the merged table."""

    prefix: Prefix
    entry: RouteEntry
    source_name: str
    source_kind: str

    @property
    def from_registry(self) -> bool:
        """True when the winning prefix came only from a registry dump."""
        return self.source_kind == KIND_REGISTRY


class MergedPrefixTable:
    """Union of many snapshots, queryable by longest-prefix match.

    When several sources carry the same prefix, the highest-priority
    kind wins the provenance label (BGP > forwarding > registry), so
    ``LookupResult.from_registry`` is True only for prefixes *no* BGP
    or forwarding table contained — exactly the paper's accounting for
    the secondary-source contribution.
    """

    def __init__(self) -> None:
        self._tree: RadixTree[LookupResult] = RadixTree()
        self.tables_merged = 0

    def __len__(self) -> int:
        return len(self._tree)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._tree

    def add_table(self, table: RoutingTable) -> None:
        """Merge all entries of ``table`` into the union."""
        self.tables_merged += 1
        for entry in table:
            existing = self._tree.get(entry.prefix)
            if existing is not None and (
                _KIND_PRIORITY[existing.source_kind] <= _KIND_PRIORITY[table.kind]
            ):
                continue
            self._tree.insert(
                entry.prefix,
                LookupResult(entry.prefix, entry, table.name, table.kind),
            )

    @classmethod
    def from_tables(cls, tables: Iterable[RoutingTable]) -> "MergedPrefixTable":
        merged = cls()
        for table in tables:
            merged.add_table(table)
        return merged

    def lookup(self, address: int) -> Optional[LookupResult]:
        """Longest-prefix match ``address`` (the router-style lookup)."""
        match = self._tree.longest_match(address)
        return match[1] if match else None

    def prefixes(self) -> Iterator[Prefix]:
        return self._tree.prefixes()

    def items(self) -> Iterator[Tuple[Prefix, LookupResult]]:
        """Iterate ``(prefix, winning LookupResult)`` in address order."""
        return self._tree.items()

    def export_entries(self) -> List[Tuple[Prefix, LookupResult]]:
        """All ``(prefix, winning LookupResult)`` pairs, sort_key order.

        Compile hook for :class:`repro.engine.packed.PackedLpm`: the
        engine packs this list into its immutable lookup arrays, so the
        merged table remains the build-side structure routing swaps
        mutate, and workers get a frozen copy.
        """
        return self._tree.export_entries()

    def prefix_length_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for prefix in self._tree.prefixes():
            histogram[prefix.length] = histogram.get(prefix.length, 0) + 1
        return histogram

    def kind_counts(self) -> Dict[str, int]:
        """Entries by winning source kind (primary vs secondary)."""
        counts: Dict[str, int] = {}
        for _, result in self._tree.items():
            counts[result.source_kind] = counts.get(result.source_kind, 0) + 1
        return counts
