"""Web-caching simulation substrate (§4.1).

Byte-capacity LRU caches, the TTL + Piggyback Cache Validation
consistency policy, an origin-server model with deterministic resource
modification, and the trace-driven simulator that places one proxy per
client cluster and replays a server log.
"""

from repro.cache.lru import CacheItem, LruCache
from repro.cache.policy import DEFAULT_TTL_SECONDS, ProxyCache, ProxyStats
from repro.cache.server import FetchResult, OriginServer
from repro.cache.cooperative import CooperativeResult, CooperativeSimulator
from repro.cache.multiserver import (
    MultiServerResult,
    MultiServerSimulator,
    OriginSpec,
    merge_logs,
)
from repro.cache.simulator import (
    CachingSimulator,
    ProxyResult,
    SimulationResult,
    filter_rare_urls,
    provision_caches,
)

__all__ = [
    "CooperativeSimulator",
    "CooperativeResult",
    "OriginSpec",
    "MultiServerSimulator",
    "MultiServerResult",
    "merge_logs",
    "CacheItem",
    "LruCache",
    "ProxyCache",
    "ProxyStats",
    "DEFAULT_TTL_SECONDS",
    "OriginServer",
    "FetchResult",
    "CachingSimulator",
    "SimulationResult",
    "ProxyResult",
    "filter_rare_urls",
    "provision_caches",
]
