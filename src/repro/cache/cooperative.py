"""Co-operative proxy clusters (§4.1.4).

"The proxies assigned to clients in the same client cluster form a
proxy cluster and would co-operate with each other."  This simulator
realises that co-operation ICP-style: proxies are grouped into *sites*
(e.g. the AS+geography groups of :mod:`repro.core.placement`), and a
miss at one proxy first asks its site siblings before going to the
origin.  A sibling hit transfers the object locally — cheap — and the
requesting proxy caches its own copy.

The comparison that matters: the same trace replayed with co-operation
on vs off, same per-proxy capacity.  Co-operation converts some origin
misses into sibling hits, raising the site-level hit ratio exactly
where clusters within a site share interests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cache.lru import CacheItem
from repro.cache.policy import DEFAULT_TTL_SECONDS, ProxyCache
from repro.cache.server import OriginServer
from repro.core.clustering import ClusterSet
from repro.net.prefix import Prefix
from repro.weblog.catalog import UrlCatalog
from repro.weblog.parser import WebLog

__all__ = ["CooperativeResult", "CooperativeSimulator"]


@dataclass
class CooperativeResult:
    """Outcome of one co-operative replay."""

    total_requests: int = 0
    local_hits: int = 0          # served by the client's own proxy
    sibling_hits: int = 0        # served by a site sibling (ICP hit)
    misses: int = 0              # went to the origin
    unproxied_requests: int = 0
    num_sites: int = 0
    num_proxies: int = 0

    @property
    def hit_ratio(self) -> float:
        """Site-level hit ratio: local + sibling hits."""
        if self.total_requests == 0:
            return 0.0
        return (self.local_hits + self.sibling_hits) / self.total_requests

    @property
    def local_hit_ratio(self) -> float:
        if self.total_requests == 0:
            return 0.0
        return self.local_hits / self.total_requests

    def describe(self) -> str:
        return (
            f"{self.num_proxies} proxies in {self.num_sites} sites: "
            f"hit {self.hit_ratio:.3f} "
            f"(local {self.local_hits:,} + sibling {self.sibling_hits:,}) "
            f"over {self.total_requests:,} requests"
        )


class CooperativeSimulator:
    """Per-cluster proxies grouped into co-operating sites."""

    def __init__(
        self,
        log: WebLog,
        catalog: UrlCatalog,
        cluster_set: ClusterSet,
        site_of_cluster: Optional[Dict[Prefix, int]] = None,
    ) -> None:
        """``site_of_cluster`` maps each cluster identifier to a site id
        (e.g. from :func:`repro.core.placement.plan_placement`); by
        default every cluster is its own site (no co-operation)."""
        self.log = log
        self.catalog = catalog
        self._cluster_of: Dict[int, Prefix] = {}
        for cluster in cluster_set.clusters:
            for client in cluster.clients:
                self._cluster_of[client] = cluster.identifier
        if site_of_cluster is None:
            site_of_cluster = {
                cluster.identifier: index
                for index, cluster in enumerate(cluster_set.clusters)
            }
        self._site_of = site_of_cluster

    @classmethod
    def from_placement(
        cls,
        log: WebLog,
        catalog: UrlCatalog,
        cluster_set: ClusterSet,
        plan,
    ) -> "CooperativeSimulator":
        """Build with sites taken from a placement plan."""
        mapping = {
            cluster.identifier: site.site_id
            for site in plan.sites
            for cluster in site.members
        }
        return cls(log, catalog, cluster_set, mapping)

    def run(
        self,
        cache_bytes: Optional[int] = None,
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
        cooperate: bool = True,
    ) -> CooperativeResult:
        """Replay the trace once.

        ``cooperate=False`` runs the identical configuration without
        sibling lookups — the ablation baseline.
        """
        server = OriginServer(self.catalog)
        proxies: Dict[Prefix, ProxyCache] = {}
        site_members: Dict[int, List[ProxyCache]] = {}
        result = CooperativeResult()

        for entry in self.log.entries:
            result.total_requests += 1
            prefix = self._cluster_of.get(entry.client)
            if prefix is None:
                server.get(entry.url, entry.timestamp)
                result.unproxied_requests += 1
                result.misses += 1
                continue
            proxy = proxies.get(prefix)
            if proxy is None:
                proxy = proxies[prefix] = ProxyCache(
                    server, capacity_bytes=cache_bytes,
                    ttl_seconds=ttl_seconds,
                )
                site = self._site_of.get(prefix, -1)
                site_members.setdefault(site, []).append(proxy)

            # Local fresh copy?
            item = proxy.cache.get(entry.url)
            if item is not None and item.fresh_at(entry.timestamp):
                proxy.request(entry.url, entry.timestamp)
                result.local_hits += 1
                continue

            # Sibling lookup (ICP): a fresh copy anywhere in the site.
            if cooperate:
                site = self._site_of.get(prefix, -1)
                donor_item = self._sibling_copy(
                    site_members.get(site, ()), proxy, entry.url,
                    entry.timestamp,
                )
                if donor_item is not None:
                    # Transfer locally; the requester caches its own copy
                    # with the donor's freshness horizon.
                    proxy.cache.put(
                        CacheItem(
                            url=entry.url,
                            size=donor_item.size,
                            fetched_at=donor_item.fetched_at,
                            expires_at=donor_item.expires_at,
                        )
                    )
                    result.sibling_hits += 1
                    continue

            # Origin path (validation or full fetch) via the normal proxy.
            if proxy.request(entry.url, entry.timestamp):
                result.local_hits += 1
            else:
                result.misses += 1

        result.num_proxies = len(proxies)
        result.num_sites = len(site_members)
        return result

    @staticmethod
    def _sibling_copy(
        members: Sequence[ProxyCache],
        requester: ProxyCache,
        url: str,
        now: float,
    ) -> Optional[CacheItem]:
        for sibling in members:
            if sibling is requester:
                continue
            item = sibling.cache.peek(url)
            if item is not None and item.fresh_at(now):
                return item
        return None
