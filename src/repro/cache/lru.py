"""Byte-capacity LRU cache (§4.1.5's replacement policy).

Stores variable-size resources and evicts least-recently-used entries
until the new resource fits.  ``capacity=None`` models the infinite
cache used for the per-proxy evaluation of Figure 12.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

__all__ = ["CacheItem", "LruCache"]


@dataclass
class CacheItem:
    """One cached resource.

    ``fetched_at`` stamps when the copy was obtained from (or validated
    with) the origin; the TTL policy compares against it.
    """

    url: str
    size: int
    fetched_at: float
    expires_at: float

    def fresh_at(self, now: float) -> bool:
        return now < self.expires_at


class LruCache:
    """LRU over byte capacity.

    Resources bigger than the whole capacity are never admitted (they
    would otherwise flush the cache for one object).
    """

    def __init__(self, capacity_bytes: Optional[int] = None) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive or None: {capacity_bytes!r}")
        self.capacity_bytes = capacity_bytes
        self._items: "OrderedDict[str, CacheItem]" = OrderedDict()
        self._used = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, url: str) -> bool:
        return url in self._items

    @property
    def used_bytes(self) -> int:
        return self._used

    def get(self, url: str) -> Optional[CacheItem]:
        """Return the cached item and mark it most recently used."""
        item = self._items.get(url)
        if item is not None:
            self._items.move_to_end(url)
        return item

    def peek(self, url: str) -> Optional[CacheItem]:
        """Return the item without touching recency (for scans)."""
        return self._items.get(url)

    def put(self, item: CacheItem) -> bool:
        """Insert/replace ``item``; returns False when it cannot fit."""
        if self.capacity_bytes is not None and item.size > self.capacity_bytes:
            self.remove(item.url)
            return False
        old = self._items.pop(item.url, None)
        if old is not None:
            self._used -= old.size
        while (
            self.capacity_bytes is not None
            and self._used + item.size > self.capacity_bytes
            and self._items
        ):
            _, evicted = self._items.popitem(last=False)
            self._used -= evicted.size
            self.evictions += 1
        self._items[item.url] = item
        self._used += item.size
        return True

    def remove(self, url: str) -> bool:
        """Drop ``url``; True when it was cached."""
        item = self._items.pop(url, None)
        if item is None:
            return False
        self._used -= item.size
        return True

    def items(self) -> Iterator[Tuple[str, CacheItem]]:
        """Iterate (url, item) from least to most recently used."""
        return iter(self._items.items())

    def expired_items(self, now: float) -> Iterator[CacheItem]:
        """Iterate cached items that are stale at ``now`` (PCV's
        piggyback candidates)."""
        for item in self._items.values():
            if not item.fresh_at(now):
                yield item
