"""Multi-server caching simulation (§4.1.5, closing remark).

"While we only address simulation of Web caching system with one server
and multiple proxies, we can also simulate multiple servers and
multiple proxies by merging more server logs collected at the same
time."

:func:`merge_logs` interleaves several server logs chronologically,
namespacing URLs per origin; :class:`MultiServerSimulator` replays the
merged trace with one proxy per client cluster, where each proxy caches
resources from *all* origins in one LRU (as a real shared proxy does)
and per-origin counters report which server benefits how much.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.cache.policy import DEFAULT_TTL_SECONDS, ProxyCache
from repro.cache.server import OriginServer
from repro.core.clustering import ClusterSet
from repro.net.prefix import Prefix
from repro.weblog.catalog import UrlCatalog
from repro.weblog.entry import LogEntry
from repro.weblog.parser import WebLog

__all__ = ["OriginSpec", "MultiServerResult", "MultiServerSimulator", "merge_logs"]


@dataclass(frozen=True)
class OriginSpec:
    """One origin server: its name, log, and resource catalog."""

    name: str
    log: WebLog
    catalog: UrlCatalog


def merge_logs(origins: Sequence[OriginSpec]) -> WebLog:
    """Chronologically interleave several origin logs into one trace.

    URLs are namespaced ``//<origin>/<url>`` so identically-named
    resources on different servers stay distinct, exactly as a shared
    proxy keys its cache by full URL.
    """
    streams = []
    for origin in origins:
        stream = [
            LogEntry(
                client=e.client,
                timestamp=e.timestamp,
                url=f"//{origin.name}{e.url}",
                size=e.size,
                status=e.status,
                method=e.method,
                user_agent=e.user_agent,
                referer=e.referer,
            )
            for e in origin.log.entries
        ]
        streams.append(stream)
    merged = list(heapq.merge(*streams, key=lambda e: e.timestamp))
    return WebLog("+".join(o.name for o in origins), merged)


@dataclass
class PerOriginCounters:
    """What one origin observed during the replay."""

    requests: int = 0
    proxy_hits: int = 0
    bytes_requested: int = 0
    bytes_hit: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.proxy_hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_ratio(self) -> float:
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_hit / self.bytes_requested


@dataclass
class MultiServerResult:
    """Outcome of one multi-origin replay."""

    total_requests: int = 0
    proxy_hits: int = 0
    per_origin: Dict[str, PerOriginCounters] = field(default_factory=dict)
    num_proxies: int = 0
    unproxied_requests: int = 0

    @property
    def overall_hit_ratio(self) -> float:
        if self.total_requests == 0:
            return 0.0
        return self.proxy_hits / self.total_requests


class _FederatedCatalog:
    """Catalog view over several origins, keyed by namespaced URL.

    Quacks like :class:`UrlCatalog` for the parts :class:`ProxyCache`
    touches (``size_of`` / ``modified_between`` / ``last_modified``).
    """

    def __init__(self, origins: Sequence[OriginSpec]) -> None:
        self._catalogs = {origin.name: origin.catalog for origin in origins}
        self.start_time = min(o.catalog.start_time for o in origins)

    def _split(self, url: str) -> Tuple[Optional[UrlCatalog], str]:
        if url.startswith("//"):
            origin, _, path = url[2:].partition("/")
            return self._catalogs.get(origin), "/" + path
        return None, url

    def size_of(self, url: str) -> int:
        catalog, path = self._split(url)
        return catalog.size_of(path) if catalog else 2048

    def modified_between(self, url: str, t0: float, t1: float) -> bool:
        catalog, path = self._split(url)
        return catalog.modified_between(path, t0, t1) if catalog else False

    def last_modified(self, url: str, at: float) -> float:
        catalog, path = self._split(url)
        return catalog.last_modified(path, at) if catalog else self.start_time


class MultiServerSimulator:
    """One proxy per cluster, many origins behind them."""

    def __init__(
        self,
        origins: Sequence[OriginSpec],
        cluster_set: ClusterSet,
    ) -> None:
        if not origins:
            raise ValueError("need at least one origin")
        self.origins = tuple(origins)
        self.merged_log = merge_logs(origins)
        self._federated = _FederatedCatalog(origins)
        self._cluster_of: Dict[int, Prefix] = {}
        for cluster in cluster_set.clusters:
            for client in cluster.clients:
                self._cluster_of[client] = cluster.identifier

    def run(
        self,
        cache_bytes: Optional[int] = None,
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
    ) -> MultiServerResult:
        """Replay the merged trace once."""
        server = OriginServer(self._federated)  # type: ignore[arg-type]
        proxies: Dict[Prefix, ProxyCache] = {}
        result = MultiServerResult(
            per_origin={origin.name: PerOriginCounters()
                        for origin in self.origins}
        )
        for entry in self.merged_log.entries:
            origin_name = entry.url[2:].partition("/")[0]
            counters = result.per_origin.get(origin_name)
            size = self._federated.size_of(entry.url)
            result.total_requests += 1
            if counters is not None:
                counters.requests += 1
                counters.bytes_requested += size
            prefix = self._cluster_of.get(entry.client)
            if prefix is None:
                server.get(entry.url, entry.timestamp)
                result.unproxied_requests += 1
                continue
            proxy = proxies.get(prefix)
            if proxy is None:
                proxy = proxies[prefix] = ProxyCache(
                    server, capacity_bytes=cache_bytes,
                    ttl_seconds=ttl_seconds,
                )
            if proxy.request(entry.url, entry.timestamp):
                result.proxy_hits += 1
                if counters is not None:
                    counters.proxy_hits += 1
                    counters.bytes_hit += size
        result.num_proxies = len(proxies)
        return result
