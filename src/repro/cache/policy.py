"""Proxy cache with TTL expiry and Piggyback Cache Validation (§4.1.5).

The paper's proxies implement the PCV scheme of Krishnamurthy & Wills
(USITS '97) with a fixed TTL:

* a cached resource is considered fresh for ``ttl`` seconds after it
  was fetched or last validated;
* when the proxy contacts the server anyway (a miss), it *piggybacks*
  validation checks for up to ``piggyback_limit`` expired-but-cached
  resources on that request; unmodified ones get their TTL renewed for
  free, modified ones are invalidated;
* a request for a resource that expired and was never re-validated
  triggers a ``GET If-Modified-Since``: a 304 renews the copy (counted
  as a *validation hit* — the body never crossed the network), a 200
  refetches it.

:class:`ProxyCache` exposes one entry point per client request and
accumulates the hit/byte counters Figures 11–12 are drawn from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.lru import CacheItem, LruCache
from repro.cache.server import OriginServer

__all__ = ["ProxyStats", "ProxyCache", "DEFAULT_TTL_SECONDS"]

#: The paper's default staleness period: one hour.
DEFAULT_TTL_SECONDS = 3600.0


@dataclass
class ProxyStats:
    """Per-proxy counters."""

    requests: int = 0
    hits: int = 0                # served from cache without body transfer
    validation_hits: int = 0     # of which: via a 304 revalidation
    misses: int = 0
    bytes_requested: int = 0
    bytes_hit: int = 0
    piggyback_validations: int = 0
    piggyback_renewals: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_ratio(self) -> float:
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_hit / self.bytes_requested


class ProxyCache:
    """One proxy: LRU store + TTL/PCV consistency against one origin."""

    def __init__(
        self,
        server: OriginServer,
        capacity_bytes: Optional[int] = None,
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
        piggyback_limit: int = 10,
    ) -> None:
        if ttl_seconds <= 0:
            raise ValueError(f"ttl must be positive: {ttl_seconds!r}")
        self.server = server
        self.cache = LruCache(capacity_bytes)
        self.ttl_seconds = ttl_seconds
        self.piggyback_limit = piggyback_limit
        self.stats = ProxyStats()

    # -- request path -----------------------------------------------------

    def request(self, url: str, now: float) -> bool:
        """Serve one client request; returns True on a cache hit
        (no response body fetched from the origin)."""
        size = self.server.catalog.size_of(url)
        self.stats.requests += 1
        self.stats.bytes_requested += size

        item = self.cache.get(url)
        if item is not None and item.fresh_at(now):
            self.stats.hits += 1
            self.stats.bytes_hit += item.size
            return True

        if item is not None:
            # Expired and not piggyback-renewed: conditional GET.
            result = self.server.get_if_modified_since(url, item.fetched_at, now)
            if result.status == 304:
                item.fetched_at = now
                item.expires_at = now + self.ttl_seconds
                self.stats.hits += 1
                self.stats.validation_hits += 1
                self.stats.bytes_hit += item.size
                self._piggyback(now)
                return True
            self._store(url, result.size, now)
            self.stats.misses += 1
            self._piggyback(now)
            return False

        # Cold miss: full fetch, with piggybacked validations.
        result = self.server.get(url, now)
        self._store(url, result.size, now)
        self.stats.misses += 1
        self._piggyback(now)
        return False

    # -- internals ------------------------------------------------------------

    def _store(self, url: str, size: int, now: float) -> None:
        self.cache.put(
            CacheItem(
                url=url,
                size=size,
                fetched_at=now,
                expires_at=now + self.ttl_seconds,
            )
        )

    def _piggyback(self, now: float) -> None:
        """Ride validation checks for expired cached resources on the
        server contact that just happened (the heart of PCV)."""
        expired: List[CacheItem] = []
        # Scan from the LRU end, where stale entries concentrate, with a
        # fixed budget so per-request piggybacking stays O(1) even for
        # very large caches (the real PCV proxy batches similarly).
        scan_budget = max(self.piggyback_limit * 5, 25)
        for scanned, (_, item) in enumerate(self.cache.items()):
            if scanned >= scan_budget or len(expired) >= self.piggyback_limit:
                break
            if not item.fresh_at(now):
                expired.append(item)
        for item in expired:
            self.stats.piggyback_validations += 1
            if self.server.catalog.modified_between(item.url, item.fetched_at, now):
                self.cache.remove(item.url)
            else:
                item.fetched_at = now
                item.expires_at = now + self.ttl_seconds
                self.stats.piggyback_renewals += 1
