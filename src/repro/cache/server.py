"""Origin-server model for the caching simulation.

Wraps the :class:`~repro.weblog.catalog.UrlCatalog`'s deterministic
modification history behind the two questions a proxy can ask:

* a full ``GET`` — returns the resource size and its last-modified
  time, and counts one server request (plus bytes);
* an ``If-Modified-Since`` validation — answers 304/200 depending on
  whether the resource changed since the proxy's copy, counting the
  (small) validation exchange and the body bytes only on 200.

The server-side counters are what Figure 11 reports (requests/bytes the
proxies could *not* absorb).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.weblog.catalog import UrlCatalog

__all__ = ["OriginServer", "FetchResult"]


@dataclass(frozen=True)
class FetchResult:
    """Outcome of one proxy-to-server exchange."""

    url: str
    status: int          # 200 or 304
    size: int            # body bytes transferred (0 on 304)
    last_modified: float


class OriginServer:
    """The origin: resource store plus load counters."""

    def __init__(self, catalog: UrlCatalog) -> None:
        self.catalog = catalog
        self.requests_served = 0
        self.bytes_served = 0
        self.validations_served = 0

    def get(self, url: str, now: float) -> FetchResult:
        """Serve a full GET for ``url``."""
        size = self.catalog.size_of(url)
        self.requests_served += 1
        self.bytes_served += size
        return FetchResult(
            url=url,
            status=200,
            size=size,
            last_modified=self.catalog.last_modified(url, now),
        )

    def get_if_modified_since(
        self, url: str, cached_at: float, now: float
    ) -> FetchResult:
        """Serve a conditional GET: 304 when unchanged since
        ``cached_at``, else a fresh 200 with the body."""
        self.validations_served += 1
        if self.catalog.modified_between(url, cached_at, now):
            return self.get(url, now)
        return FetchResult(
            url=url,
            status=304,
            size=0,
            last_modified=self.catalog.last_modified(url, now),
        )

    def reset_counters(self) -> None:
        self.requests_served = 0
        self.bytes_served = 0
        self.validations_served = 0
