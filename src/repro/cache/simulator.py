"""Trace-driven web-caching simulation (§4.1.5, Figures 11–12).

Places one proxy cache in front of every client cluster and replays a
server log chronologically: each request goes to its cluster's proxy
(clients not in any cluster go straight to the origin).  Two
evaluations mirror the paper's:

* **server performance** (Figure 11): sweep the per-proxy cache size
  and report the *total* hit ratio and byte hit ratio observed at the
  server — the fraction of requests/bytes the proxy layer absorbed;
* **proxy performance** (Figure 12): fix capacity to infinite and
  report per-cluster hit/byte-hit ratios for the busiest clusters.

Requests to resources accessed fewer than ``min_url_accesses`` times
can be filtered first (the paper's footnote 9 ignores resources with
fewer than 10 accesses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cache.policy import DEFAULT_TTL_SECONDS, ProxyCache, ProxyStats
from repro.cache.server import OriginServer
from repro.core.clustering import ClusterSet
from repro.net.prefix import Prefix
from repro.weblog.catalog import UrlCatalog
from repro.weblog.parser import WebLog

__all__ = [
    "SimulationResult",
    "ProxyResult",
    "CachingSimulator",
    "filter_rare_urls",
    "provision_caches",
]


def filter_rare_urls(log: WebLog, min_accesses: int = 10) -> WebLog:
    """Drop requests to URLs accessed fewer than ``min_accesses`` times
    (footnote 9's preprocessing)."""
    counts: Dict[str, int] = {}
    for entry in log.entries:
        counts[entry.url] = counts.get(entry.url, 0) + 1
    kept = [e for e in log.entries if counts[e.url] >= min_accesses]
    return WebLog(log.name, kept)


@dataclass
class ProxyResult:
    """Per-cluster outcome of one simulation run."""

    cluster_prefix: Prefix
    num_clients: int
    stats: ProxyStats

    @property
    def hit_ratio(self) -> float:
        return self.stats.hit_ratio

    @property
    def byte_hit_ratio(self) -> float:
        return self.stats.byte_hit_ratio


@dataclass
class SimulationResult:
    """Outcome of one full trace replay."""

    log_name: str
    method: str
    cache_bytes: Optional[int]
    ttl_seconds: float
    total_requests: int = 0
    total_bytes: int = 0
    proxy_hits: int = 0
    proxy_bytes_hit: int = 0
    unproxied_requests: int = 0    # clients outside every cluster
    server_requests: int = 0
    server_bytes: int = 0
    proxies: List[ProxyResult] = field(default_factory=list)

    @property
    def server_hit_ratio(self) -> float:
        """Total hit ratio observed at the server: the fraction of all
        client requests absorbed by the proxy layer (Figure 11(a))."""
        if self.total_requests == 0:
            return 0.0
        return self.proxy_hits / self.total_requests

    @property
    def server_byte_hit_ratio(self) -> float:
        """Byte analogue (Figure 11(b))."""
        if self.total_bytes == 0:
            return 0.0
        return self.proxy_bytes_hit / self.total_bytes

    def top_proxies(self, count: int = 100) -> List[ProxyResult]:
        """Busiest proxies in reverse order of requests (Figure 12's
        'top 100 client clusters')."""
        ordered = sorted(self.proxies, key=lambda p: -p.stats.requests)
        return ordered[:count]


class CachingSimulator:
    """Replays a log against per-cluster proxies."""

    def __init__(
        self,
        log: WebLog,
        catalog: UrlCatalog,
        cluster_set: ClusterSet,
        min_url_accesses: int = 0,
    ) -> None:
        self.log = (
            filter_rare_urls(log, min_url_accesses) if min_url_accesses else log
        )
        self.catalog = catalog
        self.cluster_set = cluster_set
        # Precompute client -> cluster index once; reused across sweeps.
        self._cluster_of: Dict[int, Prefix] = {}
        self._cluster_clients: Dict[Prefix, int] = {}
        for cluster in cluster_set.clusters:
            self._cluster_clients[cluster.identifier] = cluster.num_clients
            for client in cluster.clients:
                self._cluster_of[client] = cluster.identifier

    def run(
        self,
        cache_bytes: Optional[int] = None,
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
        piggyback_limit: int = 10,
        per_cluster_bytes: Optional[Dict[Prefix, int]] = None,
    ) -> SimulationResult:
        """Replay the whole log once with the given proxy configuration.

        ``per_cluster_bytes`` overrides the uniform ``cache_bytes`` with
        a per-cluster capacity (see :func:`provision_caches` for the
        §4.1.4 demand-proportional sizing); clusters absent from the
        map fall back to ``cache_bytes``.
        """
        server = OriginServer(self.catalog)
        proxies: Dict[Prefix, ProxyCache] = {}
        result = SimulationResult(
            log_name=self.log.name,
            method=self.cluster_set.method,
            cache_bytes=cache_bytes,
            ttl_seconds=ttl_seconds,
        )
        for entry in self.log.entries:
            result.total_requests += 1
            size = self.catalog.size_of(entry.url)
            result.total_bytes += size
            prefix = self._cluster_of.get(entry.client)
            if prefix is None:
                # Unclusterable client: no proxy in front of it.
                server.get(entry.url, entry.timestamp)
                result.unproxied_requests += 1
                continue
            proxy = proxies.get(prefix)
            if proxy is None:
                capacity = cache_bytes
                if per_cluster_bytes is not None:
                    capacity = per_cluster_bytes.get(prefix, cache_bytes)
                proxy = proxies[prefix] = ProxyCache(
                    server,
                    capacity_bytes=capacity,
                    ttl_seconds=ttl_seconds,
                    piggyback_limit=piggyback_limit,
                )
            if proxy.request(entry.url, entry.timestamp):
                result.proxy_hits += 1
                result.proxy_bytes_hit += size

        result.server_requests = server.requests_served
        result.server_bytes = server.bytes_served
        result.proxies = [
            ProxyResult(
                cluster_prefix=prefix,
                num_clients=self._cluster_clients.get(prefix, 0),
                stats=proxy.stats,
            )
            for prefix, proxy in proxies.items()
        ]
        return result

    def sweep_cache_sizes(
        self,
        sizes_bytes: Sequence[int],
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
    ) -> List[SimulationResult]:
        """Run once per cache size (Figure 11's x-axis sweep)."""
        return [self.run(cache_bytes=size, ttl_seconds=ttl_seconds)
                for size in sizes_bytes]


def provision_caches(
    cluster_set: ClusterSet,
    total_bytes: int,
    metric: str = "requests",
    floor_bytes: int = 65536,
) -> Dict[Prefix, int]:
    """Split a total byte budget across per-cluster proxies (§4.1.4).

    "One way to place proxies is to assign one or more proxies for each
    client cluster based on metrics such as the number of clients,
    number of requests issued, the URLs accessed, or the number of
    bytes fetched from server."  Capacity is allocated proportionally
    to the chosen ``metric`` ("requests", "clients", "urls", "bytes"),
    with a per-proxy floor so quiet clusters still get a working cache.
    """
    if total_bytes <= 0:
        raise ValueError(f"budget must be positive: {total_bytes!r}")
    getters = {
        "requests": lambda c: c.requests,
        "clients": lambda c: c.num_clients,
        "urls": lambda c: c.unique_urls,
        "bytes": lambda c: c.total_bytes,
    }
    try:
        getter = getters[metric]
    except KeyError:
        raise ValueError(
            f"unknown provisioning metric {metric!r}; "
            f"choose from {sorted(getters)}"
        ) from None
    weights = {c.identifier: max(0, getter(c)) for c in cluster_set.clusters}
    total_weight = sum(weights.values())
    if total_weight == 0:
        share = total_bytes // max(1, len(weights))
        return {prefix: max(floor_bytes, share) for prefix in weights}
    return {
        prefix: max(floor_bytes, int(total_bytes * weight / total_weight))
        for prefix, weight in weights.items()
    }
