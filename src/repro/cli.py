"""Command-line front end: cluster a real access log with real dumps.

The paper's §3 pipeline as a shell command::

    repro-cluster access.log --table routes-a.txt --table routes-b.txt

reads an NCSA common/combined log and any number of routing-table dumps
(each in any of the three §3.1.2 formats, auto-detected per line),
merges them, clusters the log's clients by longest-prefix match, and
prints the cluster table plus the headline coverage number.  Options
expose the busy-cluster thresholding and the simple-approach baseline.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bgp.table import KIND_BGP, MergedPrefixTable, RoutingTable
from repro.core.clustering import METHOD_NETWORK_AWARE, METHOD_SIMPLE, cluster_log
from repro.core.metrics import summary
from repro.core.threshold import threshold_busy_clusters
from repro.util.tables import render_table
from repro.weblog.parser import ParseReport, parse_clf_lines

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description=(
            "Identify network-aware client clusters in a web server log "
            "using BGP routing-table dumps (Krishnamurthy & Wang, "
            "SIGCOMM 2000)."
        ),
    )
    parser.add_argument("log", help="server access log (NCSA common/combined)")
    parser.add_argument(
        "--table", "-t", action="append", default=[], metavar="DUMP",
        help="routing-table dump file; repeatable; any §3.1.2 format",
    )
    parser.add_argument(
        "--simple", action="store_true",
        help="use the fixed-/24 simple approach instead (no dumps needed)",
    )
    parser.add_argument(
        "--busy", type=float, default=None, metavar="SHARE",
        help="also threshold busy clusters covering SHARE of requests "
             "(e.g. 0.7)",
    )
    parser.add_argument(
        "--top", type=int, default=20,
        help="how many clusters to print (default 20, 0 = all)",
    )
    return parser


def _load_tables(paths: List[str]) -> MergedPrefixTable:
    merged = MergedPrefixTable()
    for path in paths:
        with open(path) as handle:
            merged.add_table(
                RoutingTable.from_lines(path, handle, kind=KIND_BGP)
            )
    return merged


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if not args.simple and not args.table:
        parser.error("network-aware clustering needs at least one --table "
                     "(or pass --simple)")

    report = ParseReport()
    with open(args.log) as handle:
        log = parse_clf_lines(args.log, handle, report)
    print(
        f"parsed {report.parsed:,} requests "
        f"({report.malformed:,} malformed, "
        f"{report.null_client:,} null-client lines dropped)"
    )
    if not log.entries:
        print("no usable entries; nothing to cluster", file=sys.stderr)
        return 1

    if args.simple:
        clusters = cluster_log(log, method=METHOD_SIMPLE)
    else:
        merged = _load_tables(args.table)
        print(f"merged prefix table: {len(merged):,} entries "
              f"from {len(args.table)} dump(s)")
        clusters = cluster_log(log, merged, method=METHOD_NETWORK_AWARE)

    print()
    print(summary(clusters).describe())
    if clusters.unclustered_clients:
        print(f"unclustered clients: {len(clusters.unclustered_clients)}")

    ordered = clusters.sorted_by_requests()
    limit = len(ordered) if args.top == 0 else args.top
    rows = [
        [c.identifier.cidr, c.num_clients, f"{c.requests:,}",
         c.unique_urls, f"{c.total_bytes:,}"]
        for c in ordered[:limit]
    ]
    print()
    print(render_table(
        ["cluster", "clients", "requests", "urls", "bytes"],
        rows,
        title=f"top {min(limit, len(ordered))} clusters by requests",
    ))

    if args.busy is not None:
        threshold = threshold_busy_clusters(clusters, request_share=args.busy)
        print()
        print(threshold.describe())
    return 0


if __name__ == "__main__":
    sys.exit(main())
