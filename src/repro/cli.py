"""Command-line front end: cluster a real access log with real dumps.

The paper's §3 pipeline as a shell command::

    repro-cluster access.log --table routes-a.txt --table routes-b.txt

reads an NCSA common/combined log and any number of routing-table dumps
(each in any of the three §3.1.2 formats, auto-detected per line),
merges them, clusters the log's clients by longest-prefix match, and
prints the cluster table plus the headline coverage number.  Options
expose the busy-cluster thresholding and the simple-approach baseline.

``--engine`` switches to the streaming engine (:mod:`repro.engine`):
the log streams through a sharded, batched pipeline against a packed
LPM table instead of being held in memory — same clusters, built for
logs that are big.  The single-pass path stays the default.  The
``repro-engine`` command exposes the full engine surface
(checkpoint/resume, metrics).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List, Optional

from repro.bgp.formats import DumpReport
from repro.bgp.table import KIND_BGP, MergedPrefixTable, RoutingTable
from repro.core.clustering import (
    METHOD_NETWORK_AWARE,
    METHOD_SIMPLE,
    ClusterSet,
    cluster_log,
)
from repro.core.metrics import summary
from repro.core.threshold import threshold_busy_clusters
from repro.util.tables import render_table
from repro.weblog.parser import ParseLimitError, ParseReport, parse_clf_lines

__all__ = ["main", "build_parser", "load_tables", "print_cluster_report"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description=(
            "Identify network-aware client clusters in a web server log "
            "using BGP routing-table dumps (Krishnamurthy & Wang, "
            "SIGCOMM 2000)."
        ),
    )
    parser.add_argument("log", help="server access log (NCSA common/combined)")
    parser.add_argument(
        "--table", "-t", action="append", default=[], metavar="DUMP",
        help="routing-table dump file; repeatable; any §3.1.2 format",
    )
    parser.add_argument(
        "--simple", action="store_true",
        help="use the fixed-/24 simple approach instead (no dumps needed)",
    )
    parser.add_argument(
        "--busy", type=float, default=None, metavar="SHARE",
        help="also threshold busy clusters covering SHARE of requests "
             "(e.g. 0.7)",
    )
    parser.add_argument(
        "--top", type=int, default=20,
        help="how many clusters to print (default 20, 0 = all)",
    )
    parser.add_argument(
        "--engine", action="store_true",
        help="cluster via the streaming engine (sharded batches over a "
             "packed LPM table; same clusters, scales to huge logs)",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="engine mode: number of hash-partitioned shards / worker "
             "processes (default 1 = in-process)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=8192, metavar="N",
        help="engine mode: entries per dispatched batch (default 8192)",
    )
    parser.add_argument(
        "--max-errors", type=int, default=None, metavar="N",
        help="engine mode: abort when more than N malformed lines "
             "accumulate (default: skip-and-count forever)",
    )
    parser.add_argument(
        "--lpm", choices=("packed", "stride"), default="packed",
        help="engine mode: LPM table layout (stride = direct-index "
             "fast path; identical clusters; default packed)",
    )
    parser.add_argument(
        "--memo-size", type=int, default=0, metavar="N",
        help="engine mode: memoize up to N distinct client resolutions "
             "(FIFO eviction; 0 = off; identical clusters)",
    )
    return parser


def load_tables(
    paths: List[str],
    max_errors: Optional[int] = None,
    injector: Optional[Any] = None,
) -> MergedPrefixTable:
    """Merge routing-table dump files into one prefix table.

    Malformed dump lines are counted-and-skipped (reported on stderr),
    mirroring the log parser's hygiene: one garbage line in one of
    fourteen snapshots must not abort table loading.  ``max_errors``
    bounds the per-file tolerance
    (:class:`repro.bgp.formats.DumpLimitError` beyond it); ``injector``
    is the chaos hook that mangles lines in flight
    (:mod:`repro.faults`).
    """
    merged = MergedPrefixTable()
    for path in paths:
        report = DumpReport()
        with open(path) as handle:
            lines: Any = handle
            if injector is not None:
                from repro.faults import SITE_DUMP_MANGLE

                lines = injector.wrap_lines(handle, SITE_DUMP_MANGLE)
            merged.add_table(
                RoutingTable.from_lines(
                    path, lines, kind=KIND_BGP,
                    report=report, max_errors=max_errors,
                )
            )
        if report.malformed:
            print(
                f"warning: skipped {report.malformed:,} malformed line(s) "
                f"in {path} ({report.parsed:,} parsed)",
                file=sys.stderr,
            )
    return merged


def print_cluster_report(
    clusters: ClusterSet, top: int, busy: Optional[float]
) -> None:
    """The shared tail of both CLIs: summary, cluster table, thresholds."""
    print(summary(clusters).describe())
    if clusters.unclustered_clients:
        print(f"unclustered clients: {len(clusters.unclustered_clients)}")

    ordered = clusters.sorted_by_requests()
    limit = len(ordered) if top == 0 else top
    rows = [
        [c.identifier.cidr, c.num_clients, f"{c.requests:,}",
         c.unique_urls, f"{c.total_bytes:,}"]
        for c in ordered[:limit]
    ]
    print()
    print(render_table(
        ["cluster", "clients", "requests", "urls", "bytes"],
        rows,
        title=f"top {min(limit, len(ordered))} clusters by requests",
    ))

    if busy is not None:
        threshold = threshold_busy_clusters(clusters, request_share=busy)
        print()
        print(threshold.describe())


def _cluster_with_engine(args: argparse.Namespace) -> Optional[ClusterSet]:
    """Engine-mode pipeline: stream the log through sharded batches."""
    from repro.engine import EngineConfig, ShardedClusterEngine, build_lpm_table
    from repro.weblog.parser import iter_clf_entries

    merged = load_tables(args.table)
    print(f"merged prefix table: {len(merged):,} entries "
          f"from {len(args.table)} dump(s)")
    table = build_lpm_table(args.lpm, merged, args.memo_size)
    config = EngineConfig(
        num_shards=args.shards,
        chunk_size=args.chunk_size,
        name=args.log,
    )
    report = ParseReport()
    with ShardedClusterEngine(table, config) as engine:
        with open(args.log) as handle:
            try:
                engine.ingest(
                    iter_clf_entries(handle, report, max_errors=args.max_errors)
                )
            except ParseLimitError as exc:
                print(f"aborting: {exc}", file=sys.stderr)
                return None
        engine.metrics.record_malformed(report.malformed)
        _print_parse_report(report)
        if engine.entries_ingested == 0:
            return ClusterSet(args.log, METHOD_NETWORK_AWARE, [])
        rate = engine.metrics.entries_per_second
        print(f"engine: {args.shards} shard(s), chunk {args.chunk_size:,}, "
              f"{args.lpm} table, {rate:,.0f} entries/sec")
        return engine.snapshot()


def _print_parse_report(report: ParseReport) -> None:
    print(
        f"parsed {report.parsed:,} requests "
        f"({report.malformed:,} malformed, "
        f"{report.null_client:,} null-client lines dropped)"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if not args.simple and not args.table:
        parser.error("network-aware clustering needs at least one --table "
                     "(or pass --simple)")
    if args.engine and args.simple:
        parser.error("--engine implements the network-aware method; "
                     "drop --simple")

    if args.engine:
        clusters = _cluster_with_engine(args)
        if clusters is None:
            return 1
        if not clusters.clusters and not clusters.unclustered_clients:
            print("no usable entries; nothing to cluster", file=sys.stderr)
            return 1
        print()
        print_cluster_report(clusters, args.top, args.busy)
        return 0

    report = ParseReport()
    with open(args.log) as handle:
        log = parse_clf_lines(args.log, handle, report)
    _print_parse_report(report)
    if not log.entries:
        print("no usable entries; nothing to cluster", file=sys.stderr)
        return 1

    if args.simple:
        clusters = cluster_log(log, method=METHOD_SIMPLE)
    else:
        merged = load_tables(args.table)
        print(f"merged prefix table: {len(merged):,} entries "
              f"from {len(args.table)} dump(s)")
        clusters = cluster_log(log, merged, method=METHOD_NETWORK_AWARE)

    print()
    print_cluster_report(clusters, args.top, args.busy)
    return 0


if __name__ == "__main__":
    sys.exit(main())
