"""The paper's core contribution: network-aware client clustering.

Cluster identification by longest-prefix match on merged BGP tables
(§3.2) with the simple-/24 and classful baselines (§2), distribution
metrics (Figures 3–7), nslookup/traceroute validation (§3.3),
self-correction and adaptation (§3.5), spider/proxy detection (§4.1.2),
busy-cluster thresholding (§4.1.3), server clustering (§3.6), and
second-level network clusters (§3.6).
"""

from repro.core.asclusters import (
    AsGroup,
    AsGroupingReport,
    as_merge_candidates,
    group_clusters_by_as,
)
from repro.core.clustering import (
    METHOD_CLASSFUL,
    METHOD_NETWORK_AWARE,
    METHOD_SIMPLE,
    Cluster,
    ClusterSet,
    classful_prefix,
    cluster_addresses,
    cluster_log,
    simple_prefix,
)
from repro.core.compare import ClusteringComparison, compare_clusterings
from repro.core.hidden import (
    ClientCensus,
    HiddenClientEstimate,
    census,
    estimate_hidden_clients,
)
from repro.core.metrics import (
    ClusterDistributions,
    ClusterSummary,
    cdf,
    distributions,
    fraction_below,
    prefix_length_histogram,
    summary,
)
from repro.core.netclusters import NetworkCluster, NetworkClusterSet, cluster_networks
from repro.core.placement import (
    LatencyReport,
    PlacementPlan,
    ProxySite,
    evaluate_latency,
    plan_placement,
)
from repro.core.realtime import RealTimeClusterer, WindowStats
from repro.core.report import SiteReport, analyze_log
from repro.core.selective import (
    MODE_CLIENT,
    MODE_REQUEST,
    SelectiveReport,
    SelectiveVerdict,
    selective_validate,
)
from repro.core.selfcorrect import CorrectionReport, SelfCorrector, covering_prefix
from repro.core.servercluster import ServerClusterReport, cluster_servers
from repro.core.spiders import (
    ClientProfile,
    Detection,
    DetectionReport,
    arrival_histogram,
    classify_clients,
    detect_proxies,
    detect_spiders,
    pattern_correlation,
    profile_clients,
)
from repro.core.threshold import ThresholdReport, threshold_busy_clusters
from repro.core.validation import (
    ClusterVerdict,
    ValidationReport,
    ground_truth_validate,
    names_share_suffix,
    nslookup_validate,
    sample_clusters,
    simple_approach_pass_rate,
    traceroute_validate,
)

__all__ = [
    "AsGroup",
    "AsGroupingReport",
    "group_clusters_by_as",
    "as_merge_candidates",
    "ClusteringComparison",
    "compare_clusterings",
    "ClientCensus",
    "HiddenClientEstimate",
    "census",
    "estimate_hidden_clients",
    "ProxySite",
    "PlacementPlan",
    "LatencyReport",
    "plan_placement",
    "evaluate_latency",
    "SiteReport",
    "analyze_log",
    "RealTimeClusterer",
    "WindowStats",
    "MODE_CLIENT",
    "MODE_REQUEST",
    "SelectiveReport",
    "SelectiveVerdict",
    "selective_validate",
    "METHOD_NETWORK_AWARE",
    "METHOD_SIMPLE",
    "METHOD_CLASSFUL",
    "Cluster",
    "ClusterSet",
    "cluster_addresses",
    "cluster_log",
    "simple_prefix",
    "classful_prefix",
    "ClusterDistributions",
    "ClusterSummary",
    "distributions",
    "cdf",
    "fraction_below",
    "summary",
    "prefix_length_histogram",
    "ClusterVerdict",
    "ValidationReport",
    "sample_clusters",
    "names_share_suffix",
    "nslookup_validate",
    "traceroute_validate",
    "ground_truth_validate",
    "simple_approach_pass_rate",
    "CorrectionReport",
    "SelfCorrector",
    "covering_prefix",
    "ClientProfile",
    "Detection",
    "DetectionReport",
    "arrival_histogram",
    "pattern_correlation",
    "profile_clients",
    "detect_spiders",
    "detect_proxies",
    "classify_clients",
    "ThresholdReport",
    "threshold_busy_clusters",
    "ServerClusterReport",
    "cluster_servers",
    "NetworkCluster",
    "NetworkClusterSet",
    "cluster_networks",
]
