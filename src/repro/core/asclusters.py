"""AS-level grouping of client clusters.

Two parts of the paper point here:

* §4.1.4's second proxy-placement approach groups per-cluster proxies
  into *proxy clusters* "according to their AS numbers and geographical
  locations";
* the conclusion names "using information on ASes to reduce the error
  ratio" as ongoing work.

Routing tables already carry the needed signal: the AS path of the
route whose prefix identifies each cluster ends at the origin AS.
Grouping clusters by origin AS therefore costs *zero* probes — unlike
the traceroute-based second-level clustering of §3.6 — at the price of
coarser granularity (one group per AS instead of per network region).

:func:`group_clusters_by_as` builds the grouping;
:func:`as_merge_candidates` flags same-AS adjacent clusters that are
likely fragments of one network (the "too small" error §3.3 says the
method does not yet correct).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bgp.table import MergedPrefixTable
from repro.core.clustering import Cluster, ClusterSet

__all__ = [
    "AsGroup",
    "AsGroupingReport",
    "group_clusters_by_as",
    "as_merge_candidates",
]

#: Pseudo-ASN for clusters whose route carries no AS path (registry
#: prefixes, hand-built tables).
UNKNOWN_AS = -1


@dataclass
class AsGroup:
    """All clusters whose identifying route originates at one AS."""

    asn: int
    clusters: List[Cluster] = field(default_factory=list)

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def num_clients(self) -> int:
        return sum(c.num_clients for c in self.clusters)

    @property
    def requests(self) -> int:
        return sum(c.requests for c in self.clusters)


@dataclass
class AsGroupingReport:
    """Outcome of AS-level grouping."""

    groups: List[AsGroup]
    unattributed_clusters: int  # identified by routes without AS paths

    def __len__(self) -> int:
        return len(self.groups)

    def sorted_by_requests(self) -> List[AsGroup]:
        return sorted(self.groups, key=lambda g: -g.requests)

    def group_for(self, asn: int) -> Optional[AsGroup]:
        for group in self.groups:
            if group.asn == asn:
                return group
        return None


def _origin_as(cluster: Cluster, table: MergedPrefixTable) -> int:
    """Origin AS of the route identifying ``cluster`` (or UNKNOWN_AS)."""
    if not cluster.clients:
        return UNKNOWN_AS
    result = table.lookup(cluster.clients[0])
    if result is None or result.prefix != cluster.identifier:
        return UNKNOWN_AS
    origin = result.entry.origin_as
    return origin if origin is not None else UNKNOWN_AS


def group_clusters_by_as(
    cluster_set: ClusterSet, table: MergedPrefixTable
) -> AsGroupingReport:
    """Group clusters by the origin AS of their identifying route.

    Clusters identified by AS-path-less routes (registry dumps) go to a
    single UNKNOWN_AS bucket, counted separately so callers can decide
    whether to probe them instead.
    """
    by_asn: Dict[int, AsGroup] = {}
    unattributed = 0
    for cluster in cluster_set.clusters:
        asn = _origin_as(cluster, table)
        if asn == UNKNOWN_AS:
            unattributed += 1
        group = by_asn.get(asn)
        if group is None:
            group = by_asn[asn] = AsGroup(asn=asn)
        group.clusters.append(cluster)
    ordered = sorted(by_asn.values(), key=lambda g: -g.requests)
    return AsGroupingReport(groups=ordered, unattributed_clusters=unattributed)


def as_merge_candidates(
    cluster_set: ClusterSet,
    table: MergedPrefixTable,
    max_gap_bits: int = 8,
) -> List[Tuple[Cluster, Cluster]]:
    """Flag same-AS cluster pairs that look like one split network.

    §3.3 notes the nslookup test never catches clusters that are *too
    small* (one real network split over several clusters).  Two clusters
    are merge candidates when their identifying routes originate at the
    same AS and their prefixes fit inside one covering block at most
    ``max_gap_bits`` shorter than the longer of the two — i.e. they are
    numerically adjacent inside one allocation, not merely anywhere in
    a large AS.
    """
    attributed = [
        (cluster, _origin_as(cluster, table))
        for cluster in cluster_set.clusters
    ]
    attributed = [(c, a) for c, a in attributed if a != UNKNOWN_AS]
    attributed.sort(key=lambda pair: pair[0].identifier.sort_key())
    candidates: List[Tuple[Cluster, Cluster]] = []
    for (left, left_as), (right, right_as) in zip(attributed, attributed[1:]):
        if left_as != right_as:
            continue
        longer = max(left.identifier.length, right.identifier.length)
        cover_length = _common_cover_length(left, right)
        if longer - cover_length <= max_gap_bits:
            candidates.append((left, right))
    return candidates


def _common_cover_length(left: Cluster, right: Cluster) -> int:
    """Length of the tightest prefix covering both cluster identifiers."""
    from repro.core.selfcorrect import covering_prefix

    cover = covering_prefix(
        [left.identifier.network, right.identifier.network]
    )
    return cover.length
