"""Client-cluster identification (§3.2) and the baseline approaches (§2).

The paper's method: extract client addresses from a server log, perform
router-style longest-prefix matching against the merged BGP prefix
table, and group clients sharing the same longest matched prefix into
one cluster.  The baselines: the *simple approach* groups clients by
their first 24 bits; the *classful approach* groups by historical
class A/B/C network boundaries.

All three produce a :class:`ClusterSet`, so the downstream machinery
(validation, thresholding, caching simulation) is method-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bgp.table import KIND_REGISTRY, MergedPrefixTable
from repro.net.ipv4 import AddressError, classful_prefix_length, mask_bits
from repro.net.prefix import Prefix
from repro.weblog.parser import WebLog

__all__ = [
    "METHOD_NETWORK_AWARE",
    "METHOD_SIMPLE",
    "METHOD_CLASSFUL",
    "Cluster",
    "ClusterSet",
    "cluster_addresses",
    "cluster_log",
    "cluster_log_engine",
    "simple_prefix",
    "classful_prefix",
]

METHOD_NETWORK_AWARE = "network-aware"
METHOD_SIMPLE = "simple"
METHOD_CLASSFUL = "classful"


def simple_prefix(address: int) -> Prefix:
    """The simple approach's cluster identifier: the /24 containing
    ``address`` (assumes every network prefix is 24 bits, §2)."""
    return Prefix(address & mask_bits(24), 24)


def classful_prefix(address: int) -> Optional[Prefix]:
    """The classful baseline's identifier: the class A/B/C network.

    Class D/E addresses have no classful network and return None.
    """
    try:
        return Prefix(address, classful_prefix_length(address))
    except AddressError:
        return None


@dataclass
class Cluster:
    """One client cluster: clients sharing a longest-matched prefix.

    ``source_kind`` records which kind of table supplied the winning
    prefix for network-aware clusters (BGP / forwarding / registry) —
    the paper's accounting of how much the secondary registry sources
    contribute.  Metrics are filled in when clustering a full log.
    """

    identifier: Prefix
    clients: List[int] = field(default_factory=list)
    requests: int = 0
    unique_urls: int = 0
    total_bytes: int = 0
    source_kind: str = ""
    source_name: str = ""

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    def __repr__(self) -> str:
        return (
            f"Cluster({self.identifier.cidr}, clients={self.num_clients}, "
            f"requests={self.requests})"
        )


@dataclass
class ClusterSet:
    """The outcome of clustering one log with one method."""

    log_name: str
    method: str
    clusters: List[Cluster]
    unclustered_clients: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self):
        return iter(self.clusters)

    @property
    def num_clients(self) -> int:
        return sum(c.num_clients for c in self.clusters) + len(
            self.unclustered_clients
        )

    @property
    def clustered_fraction(self) -> float:
        """Fraction of clients that were clusterable (paper: ≥ 99.9 %)."""
        total = self.num_clients
        if total == 0:
            return 1.0
        return 1.0 - len(self.unclustered_clients) / total

    @property
    def total_requests(self) -> int:
        return sum(c.requests for c in self.clusters)

    def by_identifier(self) -> Dict[Prefix, Cluster]:
        return {c.identifier: c for c in self.clusters}

    def find(self, address: int) -> Optional[Cluster]:
        """Return the cluster containing ``address`` (linear in clusters
        covering the address; used by tests and small tools)."""
        for cluster in self.clusters:
            if cluster.identifier.contains_address(address) and (
                address in cluster.clients
            ):
                return cluster
        return None

    def registry_clustered_clients(self) -> int:
        """Clients clustered by registry-only prefixes (§3.1.1's ~1 %)."""
        return sum(
            c.num_clients for c in self.clusters if c.source_kind == KIND_REGISTRY
        )

    def sorted_by_clients(self) -> List[Cluster]:
        """Clusters in reverse order of number of clients (Figure 4)."""
        return sorted(self.clusters, key=lambda c: (-c.num_clients, -c.requests))

    def sorted_by_requests(self) -> List[Cluster]:
        """Clusters in reverse order of number of requests (Figure 5)."""
        return sorted(self.clusters, key=lambda c: (-c.requests, -c.num_clients))


def _assign(
    addresses: Iterable[int],
    method: str,
    table: Optional[MergedPrefixTable],
) -> Tuple[Dict[Prefix, Cluster], List[int]]:
    """Group ``addresses`` into clusters under ``method``."""
    clusters: Dict[Prefix, Cluster] = {}
    unclustered: List[int] = []
    for address in addresses:
        identifier: Optional[Prefix]
        source_kind = source_name = ""
        if method == METHOD_NETWORK_AWARE:
            if table is None:
                raise ValueError("network-aware clustering needs a prefix table")
            result = table.lookup(address)
            if result is None:
                unclustered.append(address)
                continue
            identifier = result.prefix
            source_kind, source_name = result.source_kind, result.source_name
        elif method == METHOD_SIMPLE:
            identifier = simple_prefix(address)
        elif method == METHOD_CLASSFUL:
            identifier = classful_prefix(address)
            if identifier is None:
                unclustered.append(address)
                continue
        else:
            raise ValueError(f"unknown clustering method: {method!r}")
        cluster = clusters.get(identifier)
        if cluster is None:
            cluster = clusters[identifier] = Cluster(
                identifier, source_kind=source_kind, source_name=source_name
            )
        cluster.clients.append(address)
    return clusters, unclustered


def cluster_addresses(
    addresses: Iterable[int],
    table: Optional[MergedPrefixTable] = None,
    method: str = METHOD_NETWORK_AWARE,
    name: str = "",
) -> ClusterSet:
    """Cluster a bare address set (no per-cluster traffic metrics).

    This is the §3.6 entry point too: feeding server addresses from a
    proxy log yields *server clusters*.

    Duplicate addresses are collapsed: a client belongs to its cluster
    once, however many times it appears in the input.
    """
    clusters, unclustered = _assign(dict.fromkeys(addresses), method, table)
    ordered = sorted(clusters.values(), key=lambda c: c.identifier.sort_key())
    for cluster in ordered:
        cluster.clients.sort()
    return ClusterSet(name, method, ordered, unclustered)


def cluster_log(
    log: WebLog,
    table: Optional[MergedPrefixTable] = None,
    method: str = METHOD_NETWORK_AWARE,
) -> ClusterSet:
    """Cluster a server log and fill in per-cluster traffic metrics.

    One pass over the log accumulates, per client, the request count,
    URL set, and byte volume; these roll up into each cluster's
    ``requests`` / ``unique_urls`` / ``total_bytes``.
    """
    per_client_requests: Dict[int, int] = {}
    per_client_bytes: Dict[int, int] = {}
    per_client_urls: Dict[int, Set[str]] = {}
    for entry in log.entries:
        per_client_requests[entry.client] = (
            per_client_requests.get(entry.client, 0) + 1
        )
        per_client_bytes[entry.client] = (
            per_client_bytes.get(entry.client, 0) + entry.size
        )
        per_client_urls.setdefault(entry.client, set()).add(entry.url)

    cluster_set = cluster_addresses(
        per_client_requests.keys(), table, method, name=log.name
    )
    for cluster in cluster_set.clusters:
        urls: Set[str] = set()
        for client in cluster.clients:
            cluster.requests += per_client_requests[client]
            cluster.total_bytes += per_client_bytes[client]
            urls |= per_client_urls[client]
        cluster.unique_urls = len(urls)
    return cluster_set


def cluster_log_engine(
    log: WebLog,
    table: MergedPrefixTable,
    num_shards: int = 2,
    chunk_size: int = 8192,
    use_processes: bool = True,
) -> ClusterSet:
    """Network-aware :func:`cluster_log` via the streaming engine.

    Compiles ``table`` into a packed LPM table and runs the sharded
    batch pipeline of :mod:`repro.engine`; the returned
    :class:`ClusterSet` matches the single-pass :func:`cluster_log`
    cluster for cluster (same prefixes, clients, and request counts —
    only ``unclustered_clients`` ordering differs: sorted here,
    first-seen order there).  Worth it from roughly 10^5 entries up, or
    whenever the log is too large to hold in memory (feed the engine
    directly in that case).
    """
    from repro.engine import EngineConfig, PackedLpm, ShardedClusterEngine

    packed = PackedLpm.from_merged(table)
    config = EngineConfig(
        num_shards=num_shards,
        chunk_size=chunk_size,
        use_processes=use_processes,
        name=log.name,
    )
    with ShardedClusterEngine(packed, config) as engine:
        engine.ingest(log.entries)
        return engine.snapshot()
