"""Comparing two clusterings of the same clients.

Figure 7 and §4.1.5 argue that the simple and network-aware clusterings
differ *materially*; this module quantifies how much any two
clusterings agree:

* **pairwise agreement** (Rand index): over all client pairs, the
  fraction on which the clusterings agree (together in both, or apart
  in both);
* **split/merge structure**: how many clusters of A map onto multiple
  clusters of B and vice versa — the "too small"/"too big" error
  directions of §3.3;
* **exact cluster matches**: clusters identical in both.

Used by tests (streamed-vs-batch clustering must agree perfectly), by
the fig7 analysis, and by anyone swapping prefix tables who wants to
know what changed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from repro.core.clustering import ClusterSet

__all__ = ["ClusteringComparison", "compare_clusterings"]


@dataclass(frozen=True)
class ClusteringComparison:
    """How two clusterings of one client population relate."""

    common_clients: int
    rand_index: float            # pairwise agreement in [0, 1]
    exact_matches: int           # clusters with identical membership
    clusters_a: int
    clusters_b: int
    splits_a_to_b: int           # clusters of A spanning >1 cluster of B
    splits_b_to_a: int           # clusters of B spanning >1 cluster of A

    @property
    def identical(self) -> bool:
        return (
            self.rand_index == 1.0
            and self.clusters_a == self.clusters_b == self.exact_matches
        )

    def describe(self) -> str:
        return (
            f"Rand index {self.rand_index:.3f} over "
            f"{self.common_clients:,} clients; "
            f"{self.exact_matches} identical clusters; "
            f"{self.splits_a_to_b} A-clusters split in B, "
            f"{self.splits_b_to_a} B-clusters split in A"
        )


def _assignments(cluster_set: ClusterSet) -> Dict[int, int]:
    """Map each client to a dense cluster id."""
    assignment: Dict[int, int] = {}
    for index, cluster in enumerate(cluster_set.clusters):
        for client in cluster.clients:
            assignment[client] = index
    return assignment


def compare_clusterings(
    a: ClusterSet, b: ClusterSet
) -> ClusteringComparison:
    """Compare two clusterings over their common clients.

    The Rand index is computed exactly via the pair-counting identity
    (sums of C(n,2) over the contingency table), so it costs O(clients
    + distinct cluster pairs), not O(clients²).
    """
    assign_a = _assignments(a)
    assign_b = _assignments(b)
    common = sorted(set(assign_a) & set(assign_b))
    n = len(common)
    if n < 2:
        return ClusteringComparison(
            common_clients=n,
            rand_index=1.0,
            exact_matches=0,
            clusters_a=len(a),
            clusters_b=len(b),
            splits_a_to_b=0,
            splits_b_to_a=0,
        )

    # Contingency table over common clients.
    joint: Dict[Tuple[int, int], int] = {}
    size_a: Dict[int, int] = {}
    size_b: Dict[int, int] = {}
    for client in common:
        key = (assign_a[client], assign_b[client])
        joint[key] = joint.get(key, 0) + 1
        size_a[key[0]] = size_a.get(key[0], 0) + 1
        size_b[key[1]] = size_b.get(key[1], 0) + 1

    def c2(count: int) -> int:
        return count * (count - 1) // 2

    sum_joint = sum(c2(count) for count in joint.values())
    sum_a = sum(c2(count) for count in size_a.values())
    sum_b = sum(c2(count) for count in size_b.values())
    total_pairs = c2(n)
    # Rand = (agreements) / pairs, where agreements =
    #   pairs together in both + pairs apart in both.
    together_both = sum_joint
    apart_both = total_pairs - sum_a - sum_b + sum_joint
    rand = (together_both + apart_both) / total_pairs

    # Split structure.
    partners_a: Dict[int, Set[int]] = {}
    partners_b: Dict[int, Set[int]] = {}
    for (cluster_a, cluster_b) in joint:
        partners_a.setdefault(cluster_a, set()).add(cluster_b)
        partners_b.setdefault(cluster_b, set()).add(cluster_a)
    splits_a = sum(1 for targets in partners_a.values() if len(targets) > 1)
    splits_b = sum(1 for targets in partners_b.values() if len(targets) > 1)

    # Exact membership matches (over common clients).
    members_a: Dict[int, Set[int]] = {}
    members_b: Dict[int, Set[int]] = {}
    for client in common:
        members_a.setdefault(assign_a[client], set()).add(client)
        members_b.setdefault(assign_b[client], set()).add(client)
    sets_b = {frozenset(members) for members in members_b.values()}
    exact = sum(
        1 for members in members_a.values() if frozenset(members) in sets_b
    )

    return ClusteringComparison(
        common_clients=n,
        rand_index=rand,
        exact_matches=exact,
        clusters_a=len(a),
        clusters_b=len(b),
        splits_a_to_b=splits_a,
        splits_b_to_a=splits_b,
    )
