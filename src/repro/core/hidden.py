"""Hidden-client estimation (§4.1.1's client classes, quantified).

The paper classifies log clients into *visible clients*, *hidden
clients* ("hidden behind proxies and thus not visible to the server"),
and *spiders*.  Detection (:mod:`repro.core.spiders`) finds the proxies
and spiders; this module estimates how many hidden clients sit behind
each detected proxy, and rolls the three classes up per log:

* the User-Agent mix a proxy relays lower-bounds its distinct users
  (§4.1.2 notes many UAs from one busy host indicate a proxy);
* the ratio between the proxy's request volume and the log's typical
  per-user volume gives a demand-based estimate;
* the reported estimate is the larger of the two (both are lower
  bounds), with the evidence retained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.spiders import Detection, DetectionReport, profile_clients
from repro.weblog.parser import WebLog

__all__ = ["HiddenClientEstimate", "ClientCensus", "estimate_hidden_clients",
           "census"]


@dataclass(frozen=True)
class HiddenClientEstimate:
    """Estimated users behind one detected proxy."""

    proxy_client: int
    estimated_users: int
    user_agent_lower_bound: int
    demand_based_estimate: int
    proxy_requests: int
    typical_user_requests: float


@dataclass
class ClientCensus:
    """§4.1.1's classification, counted for one log."""

    visible_clients: int
    spiders: int
    proxies: int
    estimated_hidden_clients: int
    estimates: List[HiddenClientEstimate] = field(default_factory=list)

    @property
    def total_effective_users(self) -> int:
        """Visible plus estimated hidden human users (spiders are
        programs and excluded)."""
        return self.visible_clients + self.estimated_hidden_clients

    def describe(self) -> str:
        return (
            f"{self.visible_clients:,} visible clients, {self.spiders} "
            f"spider(s), {self.proxies} prox(ies) hiding an estimated "
            f"{self.estimated_hidden_clients:,} clients"
        )


def _median(values: List[int]) -> float:
    if not values:
        return 1.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def estimate_hidden_clients(
    log: WebLog,
    proxy_detection: Detection,
    ua_concurrency_factor: float = 3.0,
) -> HiddenClientEstimate:
    """Estimate the users behind one detected proxy.

    ``ua_concurrency_factor`` scales the UA lower bound: one browser
    build is shared by many users, so ``k`` distinct UAs imply at least
    ``k`` and plausibly ``k * factor`` users.  The demand estimate is
    ``proxy requests / median per-visible-client requests``.
    """
    if ua_concurrency_factor < 1.0:
        raise ValueError(
            f"concurrency factor must be >= 1: {ua_concurrency_factor!r}"
        )
    profiles = profile_clients(log)
    visible_counts = [
        profile.requests
        for client, profile in profiles.items()
        if client != proxy_detection.client
    ]
    typical = max(1.0, _median(visible_counts))
    demand_estimate = max(1, round(proxy_detection.requests / typical))
    ua_bound = max(1, round(
        proxy_detection.user_agents * ua_concurrency_factor
    ))
    return HiddenClientEstimate(
        proxy_client=proxy_detection.client,
        estimated_users=max(demand_estimate, ua_bound),
        user_agent_lower_bound=proxy_detection.user_agents,
        demand_based_estimate=demand_estimate,
        proxy_requests=proxy_detection.requests,
        typical_user_requests=typical,
    )


def census(log: WebLog, detections: DetectionReport) -> ClientCensus:
    """Roll up §4.1.1's three client classes for ``log``."""
    special = set(detections.spider_clients()) | set(detections.proxy_clients())
    visible = log.num_clients() - len(special & set(log.clients()))
    estimates = [
        estimate_hidden_clients(log, detection)
        for detection in detections.proxies
    ]
    return ClientCensus(
        visible_clients=visible,
        spiders=len(detections.spiders),
        proxies=len(detections.proxies),
        estimated_hidden_clients=sum(e.estimated_users for e in estimates),
        estimates=estimates,
    )
