"""Cluster distribution metrics (Figures 3–7).

The paper characterises a clustering by three per-cluster series —
number of clients, number of requests, number of unique URLs — plotted
in reverse order of either clients (Figure 4) or requests (Figure 5),
plus cumulative distributions (Figure 3).  This module computes those
series so the experiment harness can print/compare them, and summary
statistics used throughout §3–4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.clustering import Cluster, ClusterSet

__all__ = [
    "ClusterDistributions",
    "distributions",
    "cdf",
    "fraction_below",
    "summary",
    "ClusterSummary",
    "prefix_length_histogram",
]


@dataclass(frozen=True)
class ClusterDistributions:
    """Aligned per-cluster series under one ordering.

    Position ``i`` in every series refers to the same cluster (the
    paper stresses this alignment for Figures 4/5).
    """

    ordering: str                 # "clients" or "requests"
    identifiers: Tuple[str, ...]  # cluster prefixes, for traceability
    clients: Tuple[int, ...]
    requests: Tuple[int, ...]
    unique_urls: Tuple[int, ...]
    total_bytes: Tuple[int, ...]


def distributions(
    cluster_set: ClusterSet, order_by: str = "clients"
) -> ClusterDistributions:
    """Compute the aligned series in reverse order of ``order_by``."""
    if order_by == "clients":
        ordered = cluster_set.sorted_by_clients()
    elif order_by == "requests":
        ordered = cluster_set.sorted_by_requests()
    else:
        raise ValueError(f"order_by must be 'clients' or 'requests': {order_by!r}")
    return ClusterDistributions(
        ordering=order_by,
        identifiers=tuple(c.identifier.cidr for c in ordered),
        clients=tuple(c.num_clients for c in ordered),
        requests=tuple(c.requests for c in ordered),
        unique_urls=tuple(c.unique_urls for c in ordered),
        total_bytes=tuple(c.total_bytes for c in ordered),
    )


def cdf(values: Sequence[int]) -> List[Tuple[int, float]]:
    """Empirical CDF of ``values`` as (value, fraction ≤ value) steps.

    Figure 3 plots these for clients-per-cluster and
    requests-per-cluster.
    """
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    steps: List[Tuple[int, float]] = []
    for index, value in enumerate(ordered):
        if index + 1 == n or ordered[index + 1] != value:
            steps.append((value, (index + 1) / n))
    return steps


def fraction_below(values: Sequence[int], threshold: int) -> float:
    """Fraction of ``values`` strictly below ``threshold`` (the paper's
    '95 % of clusters contain less than 100 clients' style claims)."""
    if not values:
        return 0.0
    return sum(1 for v in values if v < threshold) / len(values)


@dataclass(frozen=True)
class ClusterSummary:
    """Headline numbers for one clustering (the §3.2.2 narrative)."""

    method: str
    num_clusters: int
    num_clients: int
    clustered_fraction: float
    min_clients: int
    max_clients: int
    min_requests: int
    max_requests: int
    min_urls: int
    max_urls: int
    mean_clients: float
    variance_clients: float

    def describe(self) -> str:
        return (
            f"{self.method}: {self.num_clusters:,} clusters over "
            f"{self.num_clients:,} clients "
            f"({100 * self.clustered_fraction:.2f}% clustered); "
            f"cluster size {self.min_clients}–{self.max_clients}, "
            f"requests {self.min_requests}–{self.max_requests}, "
            f"URLs {self.min_urls}–{self.max_urls}"
        )


def summary(cluster_set: ClusterSet) -> ClusterSummary:
    """Compute :class:`ClusterSummary` for one clustering."""
    sizes = [c.num_clients for c in cluster_set.clusters] or [0]
    requests = [c.requests for c in cluster_set.clusters] or [0]
    urls = [c.unique_urls for c in cluster_set.clusters] or [0]
    mean = sum(sizes) / len(sizes)
    variance = sum((s - mean) ** 2 for s in sizes) / len(sizes)
    return ClusterSummary(
        method=cluster_set.method,
        num_clusters=len(cluster_set),
        num_clients=cluster_set.num_clients,
        clustered_fraction=cluster_set.clustered_fraction,
        min_clients=min(sizes),
        max_clients=max(sizes),
        min_requests=min(requests),
        max_requests=max(requests),
        min_urls=min(urls),
        max_urls=max(urls),
        mean_clients=mean,
        variance_clients=variance,
    )


def prefix_length_histogram(cluster_set: ClusterSet) -> Dict[int, int]:
    """Histogram of cluster-identifier prefix lengths (Table 3's
    'prefix length range' and '/24 count' rows)."""
    histogram: Dict[int, int] = {}
    for cluster in cluster_set.clusters:
        length = cluster.identifier.length
        histogram[length] = histogram.get(length, 0) + 1
    return histogram
