"""Second-level clustering: grouping client clusters into network
clusters (§3.6).

After prefix-level clustering, nearby clusters can themselves be
grouped: run traceroute on ``r ≥ 1`` randomly selected clients per
cluster and suffix-match the *paths* toward each destination network.
Clusters whose sampled paths share a suffix (by default the
distribution-router level, one hop above the edge) join one network
cluster — useful for selective content distribution, proxy placement,
and load balancing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.clustering import Cluster, ClusterSet
from repro.simnet.traceroute import SimulatedTraceroute
from repro.util.rng import make_rng

__all__ = ["NetworkCluster", "NetworkClusterSet", "cluster_networks"]


@dataclass
class NetworkCluster:
    """A group of client clusters sharing a routing-path suffix."""

    path_suffix: Tuple[str, ...]
    members: List[Cluster] = field(default_factory=list)

    @property
    def num_clusters(self) -> int:
        return len(self.members)

    @property
    def num_clients(self) -> int:
        return sum(c.num_clients for c in self.members)

    @property
    def requests(self) -> int:
        return sum(c.requests for c in self.members)


@dataclass
class NetworkClusterSet:
    """Outcome of second-level clustering."""

    groups: List[NetworkCluster]
    probes_used: int

    def __len__(self) -> int:
        return len(self.groups)

    def sorted_by_requests(self) -> List[NetworkCluster]:
        return sorted(self.groups, key=lambda g: -g.requests)


def cluster_networks(
    cluster_set: ClusterSet,
    traceroute: SimulatedTraceroute,
    samples_per_cluster: int = 2,
    level: int = 2,
    rng: Optional[random.Random] = None,
) -> NetworkClusterSet:
    """Group ``cluster_set``'s clusters by shared routing-path suffix.

    ``level`` selects the router tier whose identity defines a network
    cluster, counted up from the destination: 1 = the edge router in
    front of the clients (finest: one group per entity site), 2 = the
    distribution router (one group per allocation region), 3 = the AS
    core (one group per AS).  Clusters sharing the router at that tier
    — i.e. whose paths share the suffix from that hop onward — merge.
    """
    if samples_per_cluster < 1:
        raise ValueError("need at least one traceroute sample per cluster")
    if level < 1:
        raise ValueError("level counts hops up from the destination (>= 1)")
    rng = rng or make_rng(0)
    probes = 0
    groups: Dict[Tuple[str, ...], NetworkCluster] = {}
    for cluster in cluster_set.clusters:
        count = min(samples_per_cluster, cluster.num_clients)
        sampled = rng.sample(cluster.clients, count)
        suffixes = set()
        for address in sampled:
            probes += 1
            result = traceroute.optimized(address)
            path = result.path
            # The group key is the single router at the requested tier:
            # everything below it (closer to the clients) is within one
            # network region, everything above it is shared transit.
            if len(path) >= level:
                suffixes.add((path[-level],))
            else:
                suffixes.add(path)
        # Ambiguous clusters (multiple suffixes) stay alone under their
        # own full identity rather than polluting a shared group.
        key = (
            next(iter(suffixes))
            if len(suffixes) == 1
            else ("unshared", cluster.identifier.cidr)
        )
        group = groups.get(key)
        if group is None:
            group = groups[key] = NetworkCluster(path_suffix=key)
        group.members.append(cluster)
    ordered = sorted(groups.values(), key=lambda g: -g.requests)
    return NetworkClusterSet(groups=ordered, probes_used=probes)
