"""Proxy placement and latency evaluation (§4.1.4 + §1's motivation).

§4.1.4 describes two placement approaches:

1. **per-cluster** — one or more proxies in front of every (busy)
   client cluster, sized by demand; easy, and what the caching
   simulation of §4.1.5 evaluates;
2. **proxy clusters** — place a proxy per cluster, then group proxies
   "according to their AS numbers and geographical locations": all
   proxies in the same AS and geographically nearby form one
   co-operating proxy cluster.  More practical, per the paper.

:func:`plan_placement` implements the second approach over the
:class:`~repro.simnet.geo.GeoModel`;
:func:`evaluate_latency` scores any placement by the request-weighted
mean client latency, against the everyone-to-the-origin baseline —
quantifying §1's "lowers the latency perceived by the clients".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.clustering import Cluster, ClusterSet
from repro.simnet.geo import GeoModel, Location, haversine_km
from repro.simnet.topology import Topology

__all__ = [
    "ProxySite",
    "PlacementPlan",
    "LatencyReport",
    "plan_placement",
    "evaluate_latency",
]


@dataclass
class ProxySite:
    """One proxy cluster: co-located proxies serving nearby clusters."""

    site_id: int
    asn: int
    location: Location
    members: List[Cluster] = field(default_factory=list)

    @property
    def num_clusters(self) -> int:
        return len(self.members)

    @property
    def num_clients(self) -> int:
        return sum(c.num_clients for c in self.members)

    @property
    def requests(self) -> int:
        return sum(c.requests for c in self.members)


@dataclass
class PlacementPlan:
    """A full placement: every placed cluster belongs to one site."""

    sites: List[ProxySite]
    unplaced_clusters: int  # clusters whose clients resolve to no AS

    def __len__(self) -> int:
        return len(self.sites)

    def sorted_by_requests(self) -> List[ProxySite]:
        return sorted(self.sites, key=lambda s: -s.requests)

    def site_of(self, cluster: Cluster) -> Optional[ProxySite]:
        for site in self.sites:
            if cluster in site.members:
                return site
        return None


def plan_placement(
    cluster_set: ClusterSet,
    topology: Topology,
    geo: GeoModel,
    radius_km: float = 800.0,
) -> PlacementPlan:
    """Group per-cluster proxies into proxy clusters (§4.1.4 approach 2).

    Two clusters share a site when their origin ASes match and their AS
    locations are within ``radius_km`` (greedy, demand-first: the
    busiest cluster seeds each site, so sites grow around demand).
    """
    if radius_km <= 0:
        raise ValueError(f"radius must be positive: {radius_km!r}")
    placed: List[Tuple[Cluster, int, Location]] = []
    unplaced = 0
    for cluster in cluster_set.clusters:
        autonomous_system = (
            topology.as_for_address(cluster.clients[0])
            if cluster.clients else None
        )
        if autonomous_system is None:
            unplaced += 1
            continue
        # Allocation-level position: regional, not the AS headquarters,
        # so the radius genuinely splits continental ISPs.
        location = (
            geo.location_of_address(cluster.clients[0])
            or geo.location_of_as(autonomous_system.asn)
        )
        placed.append((cluster, autonomous_system.asn, location))
    # Demand-first greedy assignment.
    placed.sort(key=lambda item: -item[0].requests)
    sites: List[ProxySite] = []
    for cluster, asn, location in placed:
        target = None
        for site in sites:
            if site.asn != asn:
                continue
            if haversine_km(site.location, location) <= radius_km:
                target = site
                break
        if target is None:
            target = ProxySite(
                site_id=len(sites), asn=asn, location=location
            )
            sites.append(target)
        target.members.append(cluster)
    return PlacementPlan(sites=sites, unplaced_clusters=unplaced)


@dataclass
class LatencyReport:
    """Request-weighted latency with and without the placement."""

    origin_asn: int
    baseline_ms: float       # every request served by the origin
    placed_ms: float         # requests served by the assigned site
    weighted_requests: int

    @property
    def reduction(self) -> float:
        """Fractional latency reduction (0.4 = 40 % faster)."""
        if self.baseline_ms <= 0.0:
            return 0.0
        return 1.0 - self.placed_ms / self.baseline_ms


def evaluate_latency(
    plan: PlacementPlan,
    topology: Topology,
    geo: GeoModel,
    origin_asn: int,
) -> LatencyReport:
    """Score ``plan``: mean request latency to the assigned site versus
    to the origin, weighted by per-cluster request volume.

    Clusters use their first client's AS as the vantage (all clients of
    a correct cluster share it).  Cache misses still travel to the
    origin, so this is the *hit-path* improvement — an upper bound
    scaled by the hit ratio of §4.1.5's simulation.
    """
    origin_location = geo.location_of_as(origin_asn)
    baseline_total = 0.0
    placed_total = 0.0
    weight_total = 0
    for site in plan.sites:
        for cluster in site.members:
            client_location = geo.location_of_address(cluster.clients[0])
            if client_location is None:
                continue
            weight = max(1, cluster.requests)
            baseline = geo.latency_between(client_location, origin_location)
            to_site = geo.latency_between(client_location, site.location,
                                          hops=3)
            baseline_total += baseline * weight
            placed_total += to_site * weight
            weight_total += weight
    if weight_total == 0:
        return LatencyReport(origin_asn, 0.0, 0.0, 0)
    return LatencyReport(
        origin_asn=origin_asn,
        baseline_ms=baseline_total / weight_total,
        placed_ms=placed_total / weight_total,
        weighted_requests=weight_total,
    )
