"""Real-time client clustering over a sliding log window (§3.5).

The paper: "Self-correction and adaptation is also very important to
generate client clusters using real-time routing information and
producing real-time client cluster identification results.  By
real-time cluster identifying we mean application of cluster
identifying techniques to very recent server log data (within the last
few minutes)."

:class:`RealTimeClusterer` consumes log entries in timestamp order and
maintains, incrementally, the cluster statistics of the trailing
``window_seconds`` of traffic:

* per-entry cost is one LPM lookup plus O(1) bookkeeping (amortised);
* :meth:`snapshot` materialises the current window as a normal
  :class:`ClusterSet`, so all downstream tooling (thresholding,
  validation, placement) works on live data unchanged;
* :meth:`update_table` swaps in a fresh merged prefix table — the
  adaptation hook for BGP dynamics; affected clients re-cluster as
  their next requests arrive, and the stale assignments age out with
  the window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.core.clustering import Cluster, ClusterSet
from repro.net.prefix import Prefix
from repro.weblog.entry import LogEntry

__all__ = ["RealTimeClusterer", "WindowStats"]

#: The clusterer only needs ``lookup(address) -> LookupResult | None``,
#: so any conforming table works: a live
#: :class:`~repro.bgp.table.MergedPrefixTable`, or an immutable
#: :class:`~repro.engine.packed.PackedLpm` compiled from one
#: (``PackedLpm.from_merged``) when lookup throughput matters.
LookupTable = Any


@dataclass
class WindowStats:
    """Aggregate statistics of the current window."""

    entries: int
    clients: int
    clusters: int
    window_start: float
    window_end: float


class _LiveCluster:
    """Mutable per-cluster accumulator for the active window."""

    __slots__ = ("prefix", "requests", "bytes", "client_counts", "url_counts",
                 "source_kind", "source_name")

    def __init__(self, prefix: Prefix, source_kind: str, source_name: str):
        self.prefix = prefix
        self.requests = 0
        self.bytes = 0
        self.client_counts: Dict[int, int] = {}
        self.url_counts: Dict[str, int] = {}
        self.source_kind = source_kind
        self.source_name = source_name

    def add(self, entry: LogEntry) -> None:
        self.requests += 1
        self.bytes += entry.size
        self.client_counts[entry.client] = (
            self.client_counts.get(entry.client, 0) + 1
        )
        self.url_counts[entry.url] = self.url_counts.get(entry.url, 0) + 1

    def remove(self, entry: LogEntry) -> None:
        self.requests -= 1
        self.bytes -= entry.size
        remaining = self.client_counts[entry.client] - 1
        if remaining:
            self.client_counts[entry.client] = remaining
        else:
            del self.client_counts[entry.client]
        url_remaining = self.url_counts[entry.url] - 1
        if url_remaining:
            self.url_counts[entry.url] = url_remaining
        else:
            del self.url_counts[entry.url]

    @property
    def empty(self) -> bool:
        return self.requests == 0


class RealTimeClusterer:
    """Streaming network-aware clustering over a sliding time window."""

    def __init__(
        self,
        table: LookupTable,
        window_seconds: float = 300.0,
        name: str = "realtime",
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window must be positive: {window_seconds!r}")
        self._table = table
        self.window_seconds = window_seconds
        self.name = name
        # Each queue item: (entry, cluster prefix or None).
        self._window: Deque[Tuple[LogEntry, Optional[Prefix]]] = deque()
        self._live: Dict[Prefix, _LiveCluster] = {}
        self._unclustered: Dict[int, int] = {}
        self._last_time: Optional[float] = None
        self.entries_processed = 0
        self.lookups_performed = 0
        # Cache client -> assignment so repeat clients skip the LPM.
        self._assignment_cache: Dict[int, Optional[Prefix]] = {}

    # -- ingestion ---------------------------------------------------------

    def feed(self, entry: LogEntry) -> None:
        """Consume one log entry (entries must arrive in time order)."""
        if self._last_time is not None and entry.timestamp < self._last_time:
            raise ValueError(
                "real-time feed requires non-decreasing timestamps "
                f"({entry.timestamp} after {self._last_time})"
            )
        self._last_time = entry.timestamp
        self.entries_processed += 1
        prefix = self._assign(entry.client)
        self._window.append((entry, prefix))
        if prefix is None:
            self._unclustered[entry.client] = (
                self._unclustered.get(entry.client, 0) + 1
            )
        else:
            live = self._live.get(prefix)
            if live is None:
                result = self._table.lookup(entry.client)
                live = self._live[prefix] = _LiveCluster(
                    prefix,
                    result.source_kind if result else "",
                    result.source_name if result else "",
                )
            live.add(entry)
        self._expire(entry.timestamp)

    def feed_many(self, entries) -> None:
        """Consume an iterable of time-ordered entries."""
        for entry in entries:
            self.feed(entry)

    def _assign(self, client: int) -> Optional[Prefix]:
        if client in self._assignment_cache:
            return self._assignment_cache[client]
        self.lookups_performed += 1
        result = self._table.lookup(client)
        prefix = result.prefix if result else None
        self._assignment_cache[client] = prefix
        return prefix

    def _expire(self, now: float) -> None:
        horizon = now - self.window_seconds
        while self._window and self._window[0][0].timestamp < horizon:
            entry, prefix = self._window.popleft()
            if prefix is None:
                remaining = self._unclustered[entry.client] - 1
                if remaining:
                    self._unclustered[entry.client] = remaining
                else:
                    del self._unclustered[entry.client]
                continue
            live = self._live[prefix]
            live.remove(entry)
            if live.empty:
                del self._live[prefix]

    # -- adaptation -----------------------------------------------------------

    def update_table(self, table: LookupTable) -> None:
        """Swap in fresh routing information (§3.5's adaptation).

        The assignment cache is dropped, so every client re-resolves
        against the new table at its next request; window contents keep
        their original assignment until they age out.  Accepts the same
        duck-typed tables as the constructor — the engine's
        :class:`~repro.engine.shard.ShardedClusterEngine.update_table`
        hot-swap follows these semantics.
        """
        self._table = table
        self._assignment_cache.clear()

    # -- observation ------------------------------------------------------------

    def snapshot(self) -> ClusterSet:
        """Materialise the current window as a :class:`ClusterSet`."""
        clusters: List[Cluster] = []
        for prefix, live in sorted(
            self._live.items(), key=lambda kv: kv[0].sort_key()
        ):
            clusters.append(
                Cluster(
                    identifier=prefix,
                    clients=sorted(live.client_counts),
                    requests=live.requests,
                    unique_urls=len(live.url_counts),
                    total_bytes=live.bytes,
                    source_kind=live.source_kind,
                    source_name=live.source_name,
                )
            )
        return ClusterSet(
            log_name=self.name,
            method="network-aware+realtime",
            clusters=clusters,
            unclustered_clients=sorted(self._unclustered),
        )

    def stats(self) -> WindowStats:
        """Cheap counters without materialising a snapshot."""
        clients: Set[int] = set(self._unclustered)
        for live in self._live.values():
            clients.update(live.client_counts)
        window_start = (
            self._window[0][0].timestamp if self._window else 0.0
        )
        return WindowStats(
            entries=len(self._window),
            clients=len(clients),
            clusters=len(self._live),
            window_start=window_start,
            window_end=self._last_time or 0.0,
        )

    def busiest(self, count: int = 10) -> List[Tuple[Prefix, int]]:
        """The window's busiest clusters as (prefix, requests)."""
        ordered = sorted(self._live.values(), key=lambda l: -l.requests)
        return [(live.prefix, live.requests) for live in ordered[:count]]
