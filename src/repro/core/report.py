"""One-call site analysis: the paper's §3–§4 pipeline as a report.

A site operator with a log and a prefix table wants, in one shot, what
the paper assembles across four sections: the clustering and its
coverage, the spiders and proxies, the busy clusters worth fronting
with proxies, and (when a topology/geography oracle is available) a
validated accuracy estimate and a placement sketch.

:func:`analyze_log` orchestrates the library's pieces and returns a
:class:`SiteReport` whose ``render()`` is a readable plain-text digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.bgp.table import MergedPrefixTable
from repro.core.clustering import ClusterSet, cluster_log
from repro.core.hidden import ClientCensus, census
from repro.core.metrics import ClusterSummary, summary
from repro.core.spiders import DetectionReport, classify_clients
from repro.core.threshold import ThresholdReport, threshold_busy_clusters
from repro.util.rng import make_rng
from repro.util.tables import render_table
from repro.weblog.parser import WebLog
from repro.weblog.stats import LogStats, summarize

__all__ = ["SiteReport", "analyze_log"]


@dataclass
class SiteReport:
    """Everything :func:`analyze_log` computed."""

    log_stats: LogStats
    cluster_set: ClusterSet
    cluster_summary: ClusterSummary
    detections: DetectionReport
    client_census: ClientCensus
    busy: ThresholdReport
    validation_pass_rate: Optional[float] = None
    notes: List[str] = field(default_factory=list)

    def render(self, top: int = 10) -> str:
        """Readable digest, one section per pipeline stage."""
        parts: List[str] = []
        parts.append("=== log ===")
        parts.append(self.log_stats.describe())
        parts.append("")
        parts.append("=== clusters ===")
        parts.append(self.cluster_summary.describe())
        unclustered = len(self.cluster_set.unclustered_clients)
        if unclustered:
            parts.append(f"unclusterable clients: {unclustered}")
        if self.validation_pass_rate is not None:
            parts.append(
                f"sampled validation pass rate: "
                f"{self.validation_pass_rate:.1%}"
            )
        parts.append("")
        parts.append("=== robots and relays ===")
        parts.append(self.client_census.describe())
        for detection in self.detections.spiders + self.detections.proxies:
            parts.append("  " + detection.describe())
        parts.append("")
        parts.append("=== busy clusters (proxy candidates) ===")
        parts.append(self.busy.describe())
        rows = [
            [c.identifier.cidr, c.num_clients, f"{c.requests:,}",
             c.unique_urls]
            for c in self.busy.busy[:top]
        ]
        if rows:
            parts.append(render_table(
                ["cluster", "clients", "requests", "urls"], rows
            ))
        if self.notes:
            parts.append("")
            parts.append("=== notes ===")
            parts.extend(f"  {note}" for note in self.notes)
        return "\n".join(parts)


def analyze_log(
    log: WebLog,
    table: MergedPrefixTable,
    busy_share: float = 0.70,
    dns=None,
    topology=None,
    validation_fraction: float = 0.10,
    seed: int = 0,
) -> SiteReport:
    """Run the full §3–§4 analysis over ``log``.

    ``dns``/``topology`` are optional oracles (available for synthetic
    worlds, substitutable with live probers): when present, a sampled
    nslookup validation pass rate is included.
    """
    stats = summarize(log)
    clusters = cluster_log(log, table)
    detections = classify_clients(log, clusters)
    client_census = census(log, detections)

    notes: List[str] = []
    eliminated = detections.spider_clients() + detections.proxy_clients()
    working_log = log
    working_clusters = clusters
    if eliminated:
        working_log = log.without_clients(eliminated)
        working_clusters = cluster_log(working_log, table)
        notes.append(
            f"busy-cluster analysis excludes {len(eliminated)} detected "
            "spider/proxy client(s)"
        )
    busy = threshold_busy_clusters(working_clusters, request_share=busy_share)

    pass_rate: Optional[float] = None
    if dns is not None and topology is not None:
        from repro.core.validation import nslookup_validate, sample_clusters

        sample = sample_clusters(
            clusters, validation_fraction, make_rng(seed)
        )
        report = nslookup_validate(sample, dns, topology)
        pass_rate = report.pass_rate
        notes.append(
            f"validated {len(sample)} sampled clusters via nslookup "
            "suffix matching"
        )

    return SiteReport(
        log_stats=stats,
        cluster_set=clusters,
        cluster_summary=summary(clusters),
        detections=detections,
        client_census=client_census,
        busy=busy,
        validation_pass_rate=pass_rate,
        notes=notes,
    )
