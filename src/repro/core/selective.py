"""Selective-sampling validation (§3.3, closing paragraph).

"Many real applications will be tolerant to a certain degree of
inaccuracy and an alternative way to validate is to set a threshold
(say 5%) and selectively sample clients.  For example, if 95% of the
clients inside the cluster are correctly identified, we could consider
this cluster to be correct.  This selective sampling can be performed
in either a client-based or a request-based manner depending on the
application's criteria."

The strict test of :mod:`repro.core.validation` fails a cluster on a
single disagreeing client; this module implements the tolerant variant:

* a *majority suffix* is computed over the cluster's resolvable
  clients;
* the cluster passes when at least ``1 - tolerance`` of its clients
  (client-based) or of its requests (request-based) carry that suffix.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.clustering import Cluster
from repro.simnet.dns import SimulatedDns, nontrivial_suffix

__all__ = [
    "MODE_CLIENT",
    "MODE_REQUEST",
    "SelectiveVerdict",
    "SelectiveReport",
    "selective_validate",
]

MODE_CLIENT = "client"
MODE_REQUEST = "request"


@dataclass
class SelectiveVerdict:
    """Tolerant-validation outcome for one cluster."""

    cluster: Cluster
    passed: bool
    agreement: float              # weight fraction carrying the majority suffix
    majority_suffix: Tuple[str, ...]
    resolved_clients: int
    weighted_total: float

    @property
    def failed(self) -> bool:
        return not self.passed


@dataclass
class SelectiveReport:
    """One tolerant-validation run."""

    mode: str
    tolerance: float
    verdicts: List[SelectiveVerdict] = field(default_factory=list)

    @property
    def pass_rate(self) -> float:
        if not self.verdicts:
            return 1.0
        return sum(1 for v in self.verdicts if v.passed) / len(self.verdicts)

    @property
    def misidentified(self) -> int:
        return sum(1 for v in self.verdicts if v.failed)


def selective_validate(
    clusters: Sequence[Cluster],
    dns: SimulatedDns,
    tolerance: float = 0.05,
    mode: str = MODE_CLIENT,
    request_counts: Optional[Dict[int, int]] = None,
) -> SelectiveReport:
    """Run the tolerant suffix test over ``clusters``.

    ``mode=MODE_CLIENT`` weighs every resolvable client equally;
    ``mode=MODE_REQUEST`` weighs each by its request count (pass
    ``request_counts`` from
    :func:`repro.weblog.stats.requests_by_client`), so a cluster whose
    sole disagreeing client is also its busiest fails the request-based
    test while passing the client-based one.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1): {tolerance!r}")
    if mode not in (MODE_CLIENT, MODE_REQUEST):
        raise ValueError(f"unknown mode: {mode!r}")
    if mode == MODE_REQUEST and request_counts is None:
        raise ValueError("request-based mode needs request_counts")

    report = SelectiveReport(mode=mode, tolerance=tolerance)
    for cluster in clusters:
        weights: Counter = Counter()
        resolved = 0
        for client in cluster.clients:
            name = dns.resolve(client)
            if name is None:
                continue
            resolved += 1
            weight = (
                request_counts.get(client, 0)
                if mode == MODE_REQUEST
                else 1
            )
            weights[nontrivial_suffix(name)] += weight
        total = float(sum(weights.values()))
        if total <= 0.0:
            # No evidence either way: like the strict test, a cluster
            # with no resolvable clients cannot be failed.
            report.verdicts.append(
                SelectiveVerdict(cluster, True, 1.0, (), resolved, 0.0)
            )
            continue
        majority_suffix, majority_weight = weights.most_common(1)[0]
        agreement = majority_weight / total
        report.verdicts.append(
            SelectiveVerdict(
                cluster=cluster,
                passed=agreement >= 1.0 - tolerance,
                agreement=agreement,
                majority_suffix=majority_suffix,
                resolved_clients=resolved,
                weighted_total=total,
            )
        )
    return report
