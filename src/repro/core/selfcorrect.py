"""Self-correction and adaptation (§3.5).

Periodic traceroute sampling improves the clustering in three ways:

* **absorb** — each un-clusterable client starts as a singleton cluster
  and is merged into the existing cluster whose sampled clients share
  its router-path suffix (or with fellow singletons sharing one);
* **merge** — clusters whose sampled clients share a path suffix belong
  to one network; they are merged and the covering prefix recomputed;
* **split** — a cluster whose clients disagree on path suffix spans
  several networks; it is partitioned by suffix.

The same pass makes the clustering adaptive to network dynamics: after
BGP churn invalidates a prefix, the affected clients re-enter via the
absorb path on the next run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.clustering import Cluster, ClusterSet
from repro.net.ipv4 import mask_bits
from repro.net.prefix import Prefix
from repro.simnet.traceroute import SimulatedTraceroute
from repro.util.rng import make_rng

__all__ = ["CorrectionReport", "SelfCorrector", "covering_prefix"]


def covering_prefix(addresses: Sequence[int]) -> Prefix:
    """The tightest prefix covering all ``addresses`` (recomputed
    netmask after a merge, §3.5 case (i))."""
    if not addresses:
        raise ValueError("cannot cover an empty address set")
    lo, hi = min(addresses), max(addresses)
    length = 32
    while length > 0 and (lo & mask_bits(length)) != (hi & mask_bits(length)):
        length -= 1
    return Prefix(lo & mask_bits(length), length)


@dataclass
class CorrectionReport:
    """What one self-correction pass changed."""

    absorbed_clients: int = 0
    merges: int = 0
    splits: int = 0
    clusters_before: int = 0
    clusters_after: int = 0
    probes_used: int = 0

    def describe(self) -> str:
        return (
            f"self-correction: {self.clusters_before} -> "
            f"{self.clusters_after} clusters "
            f"({self.merges} merges, {self.splits} splits, "
            f"{self.absorbed_clients} clients absorbed)"
        )


class SelfCorrector:
    """Applies §3.5's merge/split/absorb using traceroute samples."""

    def __init__(
        self,
        traceroute: SimulatedTraceroute,
        samples_per_cluster: int = 3,
        path_suffix_hops: int = 2,
        seed: int = 0,
    ) -> None:
        self._traceroute = traceroute
        self._samples = samples_per_cluster
        self._hops = path_suffix_hops
        self._rng = make_rng(seed)
        self._probes = 0

    # -- sampling helpers ----------------------------------------------------

    def _suffix_of(self, address: int) -> Tuple[str, ...]:
        self._probes += 1
        return self._traceroute.optimized(address).last_hops(self._hops)

    def _sampled_suffixes(self, cluster: Cluster) -> List[Tuple[str, ...]]:
        count = min(self._samples, cluster.num_clients)
        chosen = self._rng.sample(cluster.clients, count)
        return [self._suffix_of(address) for address in chosen]

    # -- the pass -------------------------------------------------------------

    def correct(self, cluster_set: ClusterSet) -> Tuple[ClusterSet, CorrectionReport]:
        """Run one full self-correction pass; returns the corrected set.

        The input is not mutated.  Cluster traffic metrics (requests,
        URLs) are summed on merge and zeroed on split — a split cluster
        needs one metrics pass over the log to refresh them, which the
        caller owns.
        """
        report = CorrectionReport(clusters_before=len(cluster_set))
        working = [
            Cluster(
                identifier=c.identifier,
                clients=list(c.clients),
                requests=c.requests,
                unique_urls=c.unique_urls,
                total_bytes=c.total_bytes,
                source_kind=c.source_kind,
                source_name=c.source_name,
            )
            for c in cluster_set.clusters
        ]

        # 1. Split clusters spanning several path suffixes.
        split_out: List[Cluster] = []
        for cluster in working:
            split_out.extend(self._maybe_split(cluster, report))

        # 2. Merge clusters sharing a sampled path suffix.
        merged = self._merge_by_suffix(split_out, report)

        # 3. Absorb unclustered clients as singletons, then merge them in.
        singletons = [
            Cluster(identifier=Prefix(address, 32), clients=[address])
            for address in cluster_set.unclustered_clients
        ]
        if singletons:
            before = len(merged)
            merged = self._merge_by_suffix(merged + singletons, report)
            absorbed = before + len(singletons) - len(merged)
            report.absorbed_clients = max(0, absorbed)

        corrected = ClusterSet(
            log_name=cluster_set.log_name,
            method=cluster_set.method + "+selfcorrect",
            clusters=sorted(merged, key=lambda c: c.identifier.sort_key()),
            unclustered_clients=[],
        )
        report.clusters_after = len(corrected)
        report.probes_used = self._probes
        return corrected, report

    def _maybe_split(self, cluster: Cluster, report: CorrectionReport) -> List[Cluster]:
        """§3.5 case (ii): partition a cluster by path suffix when its
        sampled clients disagree."""
        if cluster.num_clients < 2:
            return [cluster]
        suffixes = set(self._sampled_suffixes(cluster))
        if len(suffixes) <= 1:
            return [cluster]
        report.splits += 1
        groups: Dict[Tuple[str, ...], List[int]] = {}
        for address in cluster.clients:
            groups.setdefault(self._suffix_of(address), []).append(address)
        return [
            Cluster(identifier=covering_prefix(addresses), clients=addresses)
            for addresses in groups.values()
        ]

    def _merge_by_suffix(
        self, clusters: List[Cluster], report: CorrectionReport
    ) -> List[Cluster]:
        """§3.5 case (i): merge clusters sharing a sampled path suffix."""
        by_suffix: Dict[Tuple[str, ...], Cluster] = {}
        result: List[Cluster] = []
        for cluster in clusters:
            suffixes = set(self._sampled_suffixes(cluster))
            if len(suffixes) != 1:
                result.append(cluster)  # ambiguous: leave untouched
                continue
            suffix = next(iter(suffixes))
            if not suffix or not all(suffix):
                result.append(cluster)  # path unknown: cannot merge safely
                continue
            target = by_suffix.get(suffix)
            if target is None:
                by_suffix[suffix] = cluster
                continue
            report.merges += 1
            combined = sorted(set(target.clients) | set(cluster.clients))
            target.clients = combined
            target.identifier = covering_prefix(combined)
            target.requests += cluster.requests
            target.total_bytes += cluster.total_bytes
            target.unique_urls = max(target.unique_urls, cluster.unique_urls)
        result.extend(by_suffix.values())
        return result
