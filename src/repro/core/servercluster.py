"""Server clustering from proxy logs (§3.6).

The same longest-prefix-match machinery clusters *server* addresses
seen in a proxy/ISP client trace.  The paper found 69,192 unique server
addresses in an 11-day ISP trace, of which only ~0.2 % were not
clusterable, and that roughly 4 % of the server clusters received 70 %
of the 12.4 M requests — the concentration that makes content
distribution planning tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.table import MergedPrefixTable
from repro.core.clustering import ClusterSet, cluster_log
from repro.weblog.parser import WebLog

__all__ = ["ServerClusterReport", "cluster_servers"]


@dataclass
class ServerClusterReport:
    """Headline numbers of one server-clustering run."""

    cluster_set: ClusterSet
    unique_servers: int
    unclusterable: int
    total_requests: int

    @property
    def unclusterable_fraction(self) -> float:
        if self.unique_servers == 0:
            return 0.0
        return self.unclusterable / self.unique_servers

    def top_cluster_share(self, request_share: float = 0.70) -> float:
        """Fraction of server clusters that receive ``request_share`` of
        all requests (the paper's '4 % of clusters got 70 %')."""
        ordered = self.cluster_set.sorted_by_requests()
        if not ordered:
            return 0.0
        target = self.total_requests * request_share
        accumulated = 0
        needed = 0
        for cluster in ordered:
            if accumulated >= target:
                break
            accumulated += cluster.requests
            needed += 1
        return needed / len(ordered)

    def describe(self) -> str:
        return (
            f"{self.unique_servers:,} servers -> "
            f"{len(self.cluster_set):,} clusters; "
            f"{self.unclusterable} unclusterable "
            f"({self.unclusterable_fraction:.2%}); "
            f"{self.top_cluster_share():.1%} of clusters receive 70% "
            f"of {self.total_requests:,} requests"
        )


def cluster_servers(
    proxy_log: WebLog, table: MergedPrefixTable
) -> ServerClusterReport:
    """Cluster the server addresses appearing in ``proxy_log``.

    The log's address field holds the *servers* contacted through the
    proxy; request/URL metrics roll up per server cluster exactly as
    they do for client clusters.
    """
    cluster_set = cluster_log(proxy_log, table)
    return ServerClusterReport(
        cluster_set=cluster_set,
        unique_servers=cluster_set.num_clients,
        unclusterable=len(cluster_set.unclustered_clients),
        total_requests=len(proxy_log),
    )
