"""Spider and proxy identification (§4.1.1–§4.1.2).

The paper classifies log clients into visible clients, hidden clients
(behind proxies), and spiders, using per-cluster access patterns:

* a **spider** issues a very large number of requests, sweeps a large
  fraction of the site's URLs, dominates its cluster's request count
  (Figure 10), and its arrival pattern does *not* follow the log's
  diurnal shape (Figure 9(c));
* a **proxy** also issues many requests but *mimics* the aggregate
  arrival pattern (Figure 9(b)), has short think times, and — when the
  log records User-Agent — relays many distinct agents.

Neither signal is individually sufficient (the paper combines arrival
time with within-cluster skew for spiders, and admits proxies cannot
all be found); the detectors below combine the same features and report
per-candidate evidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.clustering import Cluster, ClusterSet
from repro.weblog.parser import WebLog

__all__ = [
    "ClientProfile",
    "Detection",
    "DetectionReport",
    "profile_clients",
    "arrival_histogram",
    "pattern_correlation",
    "detect_spiders",
    "detect_proxies",
    "classify_clients",
]

#: Arrival histograms use hourly buckets, like Figure 9.
BUCKET_SECONDS = 3600.0


@dataclass
class ClientProfile:
    """Per-client features driving classification."""

    client: int
    requests: int = 0
    unique_urls: int = 0
    user_agents: Set[str] = field(default_factory=set)
    first_time: float = math.inf
    last_time: float = -math.inf
    histogram: List[int] = field(default_factory=list)
    total_think_time: float = 0.0

    @property
    def mean_think_seconds(self) -> float:
        """Average gap between consecutive requests."""
        if self.requests < 2:
            return math.inf
        return self.total_think_time / (self.requests - 1)


def arrival_histogram(
    log: WebLog, clients: Optional[Set[int]] = None
) -> List[int]:
    """Hourly request-arrival histogram over the whole log span.

    ``clients`` restricts the count to those addresses; the bucket axis
    always covers the full log so histograms are comparable.
    """
    if not log.entries:
        return []
    start, end = log.time_span()
    buckets = int((end - start) // BUCKET_SECONDS) + 1
    counts = [0] * buckets
    for entry in log.entries:
        if clients is not None and entry.client not in clients:
            continue
        counts[int((entry.timestamp - start) // BUCKET_SECONDS)] += 1
    return counts


def pattern_correlation(a: Sequence[int], b: Sequence[int]) -> float:
    """Pearson correlation between two arrival histograms.

    Quantifies the paper's visual test: a proxy's spikes line up with
    the log's daily spikes (high correlation); a spider's do not.
    """
    n = min(len(a), len(b))
    if n < 2:
        return 0.0
    xs, ys = list(a[:n]), list(b[:n])
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0.0 or var_y <= 0.0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def profile_clients(log: WebLog) -> Dict[int, ClientProfile]:
    """One pass over the log building per-client profiles."""
    if not log.entries:
        return {}
    start, end = log.time_span()
    buckets = int((end - start) // BUCKET_SECONDS) + 1
    profiles: Dict[int, ClientProfile] = {}
    last_seen: Dict[int, float] = {}
    urls: Dict[int, Set[str]] = {}
    for entry in log.entries:
        profile = profiles.get(entry.client)
        if profile is None:
            profile = profiles[entry.client] = ClientProfile(
                client=entry.client, histogram=[0] * buckets
            )
        profile.requests += 1
        urls.setdefault(entry.client, set()).add(entry.url)
        if entry.user_agent:
            profile.user_agents.add(entry.user_agent)
        profile.first_time = min(profile.first_time, entry.timestamp)
        profile.last_time = max(profile.last_time, entry.timestamp)
        profile.histogram[int((entry.timestamp - start) // BUCKET_SECONDS)] += 1
        previous = last_seen.get(entry.client)
        if previous is not None:
            profile.total_think_time += max(0.0, entry.timestamp - previous)
        last_seen[entry.client] = entry.timestamp
    for client, url_set in urls.items():
        profiles[client].unique_urls = len(url_set)
    return profiles


@dataclass(frozen=True)
class Detection:
    """One suspected spider or proxy, with its evidence."""

    client: int
    kind: str                 # "spider" or "proxy"
    cluster_prefix: str
    requests: int
    unique_urls: int
    request_share_of_cluster: float
    diurnal_correlation: float
    user_agents: int
    mean_think_seconds: float
    score: float

    def describe(self) -> str:
        return (
            f"{self.kind} at client {self.client}: {self.requests:,} requests, "
            f"{self.unique_urls:,} URLs, {self.request_share_of_cluster:.0%} of "
            f"cluster, corr={self.diurnal_correlation:.2f}, "
            f"UAs={self.user_agents}"
        )


@dataclass
class DetectionReport:
    """All detections for one log."""

    spiders: List[Detection] = field(default_factory=list)
    proxies: List[Detection] = field(default_factory=list)

    def spider_clients(self) -> List[int]:
        return [d.client for d in self.spiders]

    def proxy_clients(self) -> List[int]:
        return [d.client for d in self.proxies]


def _candidate_features(
    log: WebLog,
    cluster_set: ClusterSet,
    profiles: Dict[int, ClientProfile],
    min_requests: int,
) -> List[Tuple[ClientProfile, Cluster, float, float]]:
    """Yield (profile, cluster, cluster share, diurnal correlation) for
    every client busy enough to matter."""
    overall = arrival_histogram(log)
    features = []
    for cluster in cluster_set.clusters:
        if cluster.requests <= 0:
            continue
        for client in cluster.clients:
            profile = profiles.get(client)
            if profile is None or profile.requests < min_requests:
                continue
            share = profile.requests / cluster.requests
            correlation = pattern_correlation(profile.histogram, overall)
            features.append((profile, cluster, share, correlation))
    return features


def detect_spiders(
    log: WebLog,
    cluster_set: ClusterSet,
    min_request_fraction: float = 0.01,
    min_url_coverage: float = 0.10,
    max_diurnal_correlation: float = 0.5,
    min_dominance: float = 5.0,
) -> List[Detection]:
    """Find suspected spiders (§4.1.2's combined test).

    A candidate must (a) issue at least ``min_request_fraction`` of the
    log's requests, (b) touch at least ``min_url_coverage`` of the
    site's unique URLs, (c) show the paper's "uneven distribution of
    requests within the cluster" — at least ``min_dominance`` times the
    requests of the cluster's second-busiest client — and (d) have an
    arrival pattern uncorrelated with the log's diurnal shape.
    """
    profiles = profile_clients(log)
    site_urls = max(1, log.unique_urls())
    min_requests = max(10, int(len(log) * min_request_fraction))
    # Top-two request counts per cluster, for the dominance test.
    top_two: Dict[int, Tuple[int, int]] = {}
    for cluster in cluster_set.clusters:
        counts = sorted(
            (profiles[c].requests for c in cluster.clients if c in profiles),
            reverse=True,
        )
        top_two[id(cluster)] = (
            counts[0] if counts else 0,
            counts[1] if len(counts) > 1 else 0,
        )
    detections: List[Detection] = []
    for profile, cluster, share, corr in _candidate_features(
        log, cluster_set, profiles, min_requests
    ):
        coverage = profile.unique_urls / site_urls
        if coverage < min_url_coverage:
            continue
        first, second = top_two.get(id(cluster), (0, 0))
        # The candidate must dominate everyone else in its cluster.
        busiest_other = second if profile.requests >= first else first
        if busiest_other and profile.requests < min_dominance * busiest_other:
            continue
        if corr > max_diurnal_correlation:
            continue
        score = coverage * share * (1.0 - max(corr, 0.0))
        detections.append(
            Detection(
                client=profile.client,
                kind="spider",
                cluster_prefix=cluster.identifier.cidr,
                requests=profile.requests,
                unique_urls=profile.unique_urls,
                request_share_of_cluster=share,
                diurnal_correlation=corr,
                user_agents=len(profile.user_agents),
                mean_think_seconds=profile.mean_think_seconds,
                score=score,
            )
        )
    detections.sort(key=lambda d: -d.score)
    return detections


def detect_proxies(
    log: WebLog,
    cluster_set: ClusterSet,
    min_request_fraction: float = 0.01,
    min_diurnal_correlation: float = 0.5,
    min_user_agents: int = 3,
    max_think_seconds: Optional[float] = None,
) -> List[Detection]:
    """Find suspected proxies.

    A candidate issues many requests whose arrival pattern tracks the
    log's diurnal shape, with short think times; multiple distinct
    User-Agent strings (when logged) corroborate (§4.1.2's note on the
    User-Agent field).

    ``max_think_seconds`` defaults to 1/200 of the log's duration (with
    a 300 s floor): "short think time" is relative to how long the log
    runs — a proxy in a 10-day log still averages minutes between
    requests while remaining far busier than any single user.
    """
    profiles = profile_clients(log)
    min_requests = max(10, int(len(log) * min_request_fraction))
    if max_think_seconds is None:
        max_think_seconds = max(300.0, log.duration_seconds() / 200.0)
    detections: List[Detection] = []
    for profile, cluster, share, corr in _candidate_features(
        log, cluster_set, profiles, min_requests
    ):
        if corr < min_diurnal_correlation:
            continue
        if profile.mean_think_seconds > max_think_seconds:
            continue
        has_ua_signal = len(profile.user_agents) >= min_user_agents
        if not has_ua_signal:
            continue
        score = corr * min(1.0, profile.requests / max(1, min_requests * 10))
        detections.append(
            Detection(
                client=profile.client,
                kind="proxy",
                cluster_prefix=cluster.identifier.cidr,
                requests=profile.requests,
                unique_urls=profile.unique_urls,
                request_share_of_cluster=share,
                diurnal_correlation=corr,
                user_agents=len(profile.user_agents),
                mean_think_seconds=profile.mean_think_seconds,
                score=score,
            )
        )
    detections.sort(key=lambda d: -d.score)
    return detections


def classify_clients(log: WebLog, cluster_set: ClusterSet) -> DetectionReport:
    """Run both detectors; a client flagged as spider is never also a
    proxy (the spider signature is the stronger claim)."""
    spiders = detect_spiders(log, cluster_set)
    spider_set = {d.client for d in spiders}
    proxies = [
        d for d in detect_proxies(log, cluster_set) if d.client not in spider_set
    ]
    return DetectionReport(spiders=spiders, proxies=proxies)
