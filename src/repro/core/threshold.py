"""Busy-cluster thresholding (§4.1.3, Table 5).

After spiders and proxies are eliminated, the paper keeps only *busy*
clusters: sort clusters in reverse order of requests and retain the
smallest prefix of that order whose summed requests reach 70 % of the
log's total.  The threshold row of Table 5 is the request count of the
smallest retained cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.clustering import Cluster, ClusterSet

__all__ = ["ThresholdReport", "threshold_busy_clusters"]


@dataclass
class ThresholdReport:
    """One thresholding outcome (one column of Table 5)."""

    method: str
    total_clusters: int
    request_share: float
    busy: List[Cluster]
    less_busy: List[Cluster]

    @property
    def threshold_requests(self) -> int:
        """Requests issued by the smallest busy cluster."""
        return self.busy[-1].requests if self.busy else 0

    @property
    def busy_clients(self) -> int:
        return sum(c.num_clients for c in self.busy)

    @property
    def busy_requests(self) -> int:
        return sum(c.requests for c in self.busy)

    def busy_range(self) -> Tuple[int, int, int, int]:
        """(min requests, max requests, min clients, max clients) of the
        busy clusters."""
        if not self.busy:
            return (0, 0, 0, 0)
        requests = [c.requests for c in self.busy]
        clients = [c.num_clients for c in self.busy]
        return (min(requests), max(requests), min(clients), max(clients))

    def less_busy_range(self) -> Tuple[int, int, int, int]:
        """Same, for the filtered-out clusters."""
        if not self.less_busy:
            return (0, 0, 0, 0)
        requests = [c.requests for c in self.less_busy]
        clients = [c.num_clients for c in self.less_busy]
        return (min(requests), max(requests), min(clients), max(clients))

    def describe(self) -> str:
        rq = self.busy_range()
        return (
            f"{self.method}: {len(self.busy)} busy of {self.total_clusters} "
            f"clusters ({self.busy_clients:,} clients, "
            f"{self.busy_requests:,} requests, threshold "
            f"{self.threshold_requests:,}, range {rq[0]:,}–{rq[1]:,})"
        )


def threshold_busy_clusters(
    cluster_set: ClusterSet, request_share: float = 0.70
) -> ThresholdReport:
    """Retain the busiest clusters covering ``request_share`` of all
    requests (the paper's 70 % rule)."""
    if not 0.0 < request_share <= 1.0:
        raise ValueError(f"request share must be in (0, 1]: {request_share!r}")
    ordered = cluster_set.sorted_by_requests()
    total_requests = sum(c.requests for c in ordered)
    target = total_requests * request_share
    busy: List[Cluster] = []
    accumulated = 0
    for cluster in ordered:
        if accumulated >= target:
            break
        busy.append(cluster)
        accumulated += cluster.requests
    less_busy = ordered[len(busy):]
    return ThresholdReport(
        method=cluster_set.method,
        total_clusters=len(cluster_set),
        request_share=request_share,
        busy=busy,
        less_busy=less_busy,
    )
