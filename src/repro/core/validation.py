"""Cluster validation via nslookup and optimized traceroute (§3.3).

Both validators sample a fraction of the identified clusters (1 % in
the paper) and apply a suffix test:

* **nslookup**: every resolvable client in the cluster must share a
  non-trivial domain-name suffix (last ``n`` components, n = 3 when the
  name has ≥ 4 components, else 2).  One mismatching client marks the
  whole cluster mis-identified.
* **traceroute**: clients that resolve are suffix-matched by name; the
  rest must share the same last-two-hop router-path suffix.  Either
  group disagreeing fails the cluster.

Because the simulated topology carries ground truth, an additional
:func:`ground_truth_validate` scores clusters against actual
administrative entities — something the paper could not do, used here
for ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import random
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.clustering import Cluster, ClusterSet
from repro.simnet.dns import SimulatedDns, name_components
from repro.simnet.topology import Topology
from repro.simnet.traceroute import ProbeAccounting, SimulatedTraceroute
from repro.util.rng import make_rng

__all__ = [
    "ClusterVerdict",
    "ValidationReport",
    "sample_clusters",
    "names_share_suffix",
    "nslookup_validate",
    "traceroute_validate",
    "ground_truth_validate",
    "simple_approach_pass_rate",
]


def names_share_suffix(first: str, second: str) -> bool:
    """Apply the paper's non-trivial-suffix rule to two FQDNs.

    Each name contributes its own ``n`` (3 when it has ≥ 4 components,
    else 2); the comparison uses the smaller of the two so a 3-component
    ISP name can still match a 5-component academic name's tail.
    """
    a = name_components(first)
    b = name_components(second)
    n = min(3 if len(a) >= 4 else 2, 3 if len(b) >= 4 else 2)
    if len(a) < n or len(b) < n:
        return a == b
    return a[-n:] == b[-n:]


@dataclass
class ClusterVerdict:
    """Validation outcome for one sampled cluster."""

    cluster: Cluster
    passed: bool
    reason: str = ""
    resolved_clients: int = 0
    probed_clients: int = 0
    is_us: bool = True

    @property
    def failed(self) -> bool:
        return not self.passed


@dataclass
class ValidationReport:
    """One validation run over a cluster sample (one Table 3 block)."""

    method: str
    log_name: str
    total_clusters: int
    verdicts: List[ClusterVerdict] = field(default_factory=list)
    probe_accounting: Optional[ProbeAccounting] = None

    @property
    def sampled_clusters(self) -> int:
        return len(self.verdicts)

    @property
    def sampled_clients(self) -> int:
        return sum(v.cluster.num_clients for v in self.verdicts)

    @property
    def reachable_clients(self) -> int:
        """nslookup: clients that resolved; traceroute: clients probed."""
        return sum(
            v.resolved_clients if self.method == "nslookup" else v.probed_clients
            for v in self.verdicts
        )

    @property
    def misidentified(self) -> int:
        return sum(1 for v in self.verdicts if v.failed)

    @property
    def misidentified_non_us(self) -> int:
        return sum(1 for v in self.verdicts if v.failed and not v.is_us)

    @property
    def pass_rate(self) -> float:
        if not self.verdicts:
            return 1.0
        return 1.0 - self.misidentified / len(self.verdicts)


def sample_clusters(
    cluster_set: ClusterSet,
    fraction: float = 0.01,
    rng: Optional[random.Random] = None,
    minimum: int = 10,
) -> List[Cluster]:
    """Draw the paper's validation sample: ``fraction`` of clusters,
    uniformly, at least ``minimum`` when the set allows."""
    rng = rng or make_rng(0)
    population = cluster_set.clusters
    count = min(len(population), max(minimum, round(len(population) * fraction)))
    return rng.sample(population, count) if population else []


def _cluster_is_us(cluster: Cluster, topology: Topology) -> bool:
    """A cluster counts as US when its first resolvable client's AS is
    US-registered (mirrors the paper's name-based eyeballing)."""
    for client in cluster.clients:
        autonomous_system = topology.as_for_address(client)
        if autonomous_system is not None:
            return autonomous_system.country == "US"
    return True


def _suffix_groups_consistent(names: Sequence[str]) -> bool:
    """True when every pair of names shares the required suffix."""
    if len(names) < 2:
        return True
    anchor = names[0]
    return all(names_share_suffix(anchor, other) for other in names[1:])


def nslookup_validate(
    clusters: Sequence[Cluster],
    dns: SimulatedDns,
    topology: Topology,
    log_name: str = "",
    total_clusters: int = 0,
) -> ValidationReport:
    """Run the nslookup suffix test over sampled ``clusters``."""
    report = ValidationReport("nslookup", log_name, total_clusters)
    for cluster in clusters:
        names = [
            name
            for name in (dns.resolve(client) for client in cluster.clients)
            if name is not None
        ]
        passed = _suffix_groups_consistent(names)
        report.verdicts.append(
            ClusterVerdict(
                cluster=cluster,
                passed=passed,
                reason="" if passed else "name suffix mismatch",
                resolved_clients=len(names),
                is_us=_cluster_is_us(cluster, topology),
            )
        )
    return report


def traceroute_validate(
    clusters: Sequence[Cluster],
    traceroute: SimulatedTraceroute,
    topology: Topology,
    log_name: str = "",
    total_clusters: int = 0,
    path_suffix_hops: int = 2,
) -> ValidationReport:
    """Run the optimized-traceroute test over sampled ``clusters``.

    Every client is probed (the optimized traceroute resolves name *or*
    path for 100 % of destinations); named clients are suffix-matched,
    unnamed clients must agree on the last ``path_suffix_hops`` hops.
    """
    report = ValidationReport("traceroute", log_name, total_clusters)
    accounting = ProbeAccounting()
    for cluster in clusters:
        names: List[str] = []
        path_suffixes: Set[Tuple[str, ...]] = set()
        for client in cluster.clients:
            result = traceroute.optimized(client)
            accounting.add(result)
            if result.name is not None:
                names.append(result.name)
            else:
                path_suffixes.add(result.last_hops(path_suffix_hops))
        names_ok = _suffix_groups_consistent(names)
        paths_ok = len(path_suffixes) <= 1
        passed = names_ok and paths_ok
        if passed:
            reason = ""
        elif not names_ok:
            reason = "name suffix mismatch"
        else:
            reason = "path suffix mismatch"
        report.verdicts.append(
            ClusterVerdict(
                cluster=cluster,
                passed=passed,
                reason=reason,
                resolved_clients=len(names),
                probed_clients=cluster.num_clients,
                is_us=_cluster_is_us(cluster, topology),
            )
        )
    report.probe_accounting = accounting
    return report


def simple_approach_pass_rate(clusters: Sequence[Cluster]) -> float:
    """The paper's measure of the simple approach on a validated sample.

    §3.3: a sampled (network-aware, validated) cluster is correctly
    handled by the fixed-/24 approach only when its true prefix length
    is 24 — shorter clusters get shattered, longer ones get merged with
    neighbours.  In the paper only 57 of Nagano's 111 sampled clusters
    (48.6 %) were /24, hence 'the simple approach fails a validation
    test in over 50 % of the sampled cases'.
    """
    if not clusters:
        return 1.0
    return sum(1 for c in clusters if c.identifier.length == 24) / len(clusters)


def ground_truth_validate(
    clusters: Sequence[Cluster],
    topology: Topology,
    log_name: str = "",
    total_clusters: int = 0,
) -> ValidationReport:
    """Score clusters against the simulator's ground truth.

    A cluster is correct when all its clients belong to one
    administrative entity.  Unallocated (bogus) clients fail their
    cluster.  This oracle is unavailable on the real Internet; we use
    it to calibrate how conservative the paper's observable tests are.
    """
    report = ValidationReport("ground-truth", log_name, total_clusters)
    for cluster in clusters:
        entities = set()
        unallocated = 0
        for client in cluster.clients:
            entity = topology.entity_for_address(client)
            if entity is None:
                unallocated += 1
            else:
                entities.add(entity.entity_id)
        passed = unallocated == 0 and len(entities) <= 1
        report.verdicts.append(
            ClusterVerdict(
                cluster=cluster,
                passed=passed,
                reason="" if passed else f"{len(entities)} entities in cluster",
                resolved_clients=cluster.num_clients - unallocated,
                probed_clients=cluster.num_clients,
                is_us=_cluster_is_us(cluster, topology),
            )
        )
    return report
