"""High-throughput streaming clustering engine.

The paper's §3 pipeline — one longest-prefix match per client against a
pointer-chasing radix trie — is the right shape for correctness but the
wrong shape for throughput.  This package is the scale-out substrate:

* :mod:`repro.engine.packed` — :class:`PackedLpm`, an immutable,
  array-packed longest-prefix-match table compiled once from a
  :class:`~repro.bgp.table.MergedPrefixTable` (or any radix tree) and
  shipped to workers as a single pickle; batch lookups run one binary
  search per address instead of one trie walk.
* :mod:`repro.engine.fastpath` — the hot-path accelerators:
  :class:`StrideLpm` (a stride-16 direct-index overlay on the packed
  layout — most lookups are one array index), :class:`MemoizedLookup`
  (a bounded exact-IP memo exploiting heavy-tailed client repetition),
  and :class:`PackedBatch` (flat-buffer shard dispatch — IPC cost no
  longer scales with per-entry object count).  Select with the CLIs'
  ``--lpm {packed,stride}`` and ``--memo-size``.
* :mod:`repro.engine.state` — :class:`ClusterStore`, the incremental,
  mergeable cluster accumulator with versioned checkpoint/restore.
* :mod:`repro.engine.shard` — :class:`ShardedClusterEngine`, which
  hash-partitions client addresses across N shards, fans batches out to
  worker processes, and merges per-shard states in shard order so
  results are deterministic.
* :mod:`repro.engine.shm` — the zero-copy hot path:
  :class:`SharedLpm` publishes the packed interval arrays into
  ``multiprocessing.shared_memory`` segments, persistent workers attach
  once (:func:`attach_shared_table`) and pull batches from a queue —
  only segment *names* (:class:`SharedLpmHandle`) cross the pickle
  boundary.  The default transport whenever ``num_shards > 1``;
  ``EngineConfig(use_shm=False)`` or ``--no-shm`` restores the
  per-chunk pickle pool.
* :mod:`repro.engine.metrics` — :class:`EngineMetrics` counters/timers
  (entries/sec, lookups, batch latency, shard skew, fault accounting).
* :mod:`repro.engine.supervisor` — :class:`SupervisedEngine`, the
  recovery layer: bounded retries with exponential backoff, dead-letter
  quarantine, read-back-verified checkpoints, and graceful degradation
  to inline ingestion when the pool keeps dying.
* :mod:`repro.engine.cli` — the ``repro-engine`` command line.

Fault tolerance is testable: :mod:`repro.faults` injects worker
crashes, hangs, checkpoint corruption, and dirty input on a
deterministic schedule, and ``tests/faults/`` proves a disturbed run
still emits output identical to an undisturbed one.

Everything downstream still receives a plain
:class:`~repro.core.clustering.ClusterSet`, so validation,
thresholding, placement, and the caching simulation run on engine
output unchanged.
"""

from repro.engine.fastpath import (
    LPM_KINDS,
    MemoizedLookup,
    PackedBatch,
    StrideLpm,
    build_lpm_table,
)
from repro.engine.metrics import EngineMetrics
from repro.engine.packed import PackedLpm
from repro.engine.shard import EngineConfig, ShardedClusterEngine, shard_of
from repro.engine.state import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointTableMismatchError,
    CheckpointVersionError,
    ClusterStore,
    read_checkpoint,
    read_checkpoint_table,
    write_checkpoint,
)
from repro.engine.shm import SharedLpm, SharedLpmHandle, attach_shared_table
from repro.engine.supervisor import SupervisedEngine, SupervisorConfig

__all__ = [
    "PackedLpm",
    "StrideLpm",
    "MemoizedLookup",
    "PackedBatch",
    "build_lpm_table",
    "LPM_KINDS",
    "ClusterStore",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointVersionError",
    "CheckpointTableMismatchError",
    "read_checkpoint",
    "read_checkpoint_table",
    "write_checkpoint",
    "SharedLpm",
    "SharedLpmHandle",
    "attach_shared_table",
    "ShardedClusterEngine",
    "EngineConfig",
    "shard_of",
    "EngineMetrics",
    "SupervisedEngine",
    "SupervisorConfig",
]
