"""``repro-engine``: the streaming engine as a shell command.

The full engine surface over real CLF logs and real dump files::

    repro-engine access.log --table routes-a.txt --table routes-b.txt \
        --shards 4 --chunk-size 16384 --checkpoint run.ckpt

Ingestion streams the log in constant memory, fanning batches out to
shard workers.  With ``--shards`` > 1 the workers are persistent
processes attached to the LPM table through shared memory (the
zero-copy hot path; ``--no-shm`` forces the legacy per-chunk pickle
pool, ``--shm`` forces the shared transport explicitly).  ``--checkpoint`` writes the versioned engine state at
the end of the run (and every ``--checkpoint-every`` entries along the
way); ``--resume`` restores from that file first.  Checkpoints record
which log was being ingested and how many of its entries were already
counted, so resuming against the *same* log skips that prefix and the
run finishes with the same cluster table an uninterrupted run produces
— no entry is ever counted twice.  Resuming against a *different* log
ingests all of it on top of the restored state (append mode).
``--metrics`` prints the engine's counters (entries/sec, batch
latency, shard skew).

``--lpm stride`` swaps the packed table's per-lookup binary search for
a stride-16 direct index, and ``--memo-size N`` memoizes up to N
distinct client resolutions in front of the table
(:mod:`repro.engine.fastpath`); both are pure accelerations — cluster
output is identical across every combination, fault plans included,
and checkpoints resume across ``--lpm`` settings because all layouts
share a prefix-set digest.

Ingestion runs supervised (:mod:`repro.engine.supervisor`): failed
chunks are retried with exponential backoff (``--retries``,
``--backoff``), chunks that keep failing are quarantined to a
dead-letter file (``--quarantine``), and when the worker pool keeps
dying the run degrades to inline ingestion unless ``--no-degrade``
forbids it.  ``--inject PLAN.json`` arms a :mod:`repro.faults` plan —
the chaos-testing entry point.  Checkpoints are atomic and
CRC-verified after every write; a corrupt file fails ``--resume`` with
a specific, actionable error instead of garbage state.

``repro-engine serve ...`` switches to the long-lived daemon mode
(:mod:`repro.serve`): an ndjson stream of weblog requests and BGP
deltas, applied to the live table in place.

Checkpoint files are pickle-based: only ``--resume`` from files you
wrote yourself (see :mod:`repro.engine.state`).
"""

from __future__ import annotations

import argparse
import itertools
import os
import sys
from typing import Any, Dict, Iterable, List, Optional

from repro.weblog.entry import LogEntry

from repro.cli import load_tables, print_cluster_report
from repro.engine.fastpath import LPM_KINDS, build_lpm_table
from repro.engine.metrics import EngineMetrics
from repro.engine.packed import PackedLpm
from repro.engine.shard import EngineConfig, ShardedClusterEngine
from repro.engine.state import CheckpointError
from repro.engine.supervisor import SupervisedEngine, SupervisorConfig
from repro.faults import SITE_LOG_TRUNCATE, FaultInjector, FaultPlan
from repro.weblog.parser import ParseLimitError, ParseReport, iter_clf_entries

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-engine",
        description=(
            "High-throughput streaming client clustering: sharded batch "
            "ingestion of a CLF access log against a packed LPM table "
            "compiled from BGP routing-table dumps."
        ),
    )
    parser.add_argument("log", help="server access log (NCSA common/combined)")
    parser.add_argument(
        "--table", "-t", action="append", default=[], metavar="DUMP",
        help="routing-table dump file; repeatable; any §3.1.2 format",
    )
    parser.add_argument(
        "--lpm", choices=LPM_KINDS, default="packed",
        help="LPM table layout: 'packed' (binary search over the flat "
             "interval array) or 'stride' (stride-16 direct index; "
             "most lookups are one array read).  Identical clusters "
             "either way (default packed)",
    )
    parser.add_argument(
        "--memo-size", type=int, default=0, metavar="N",
        help="memoize up to N distinct client resolutions in front of "
             "the LPM table (FIFO eviction; 0 = off).  Web-log clients "
             "repeat heavily, so most entries skip the LPM entirely; "
             "clusters stay identical",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="hash-partitioned shards / worker processes (default 1)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=8192, metavar="N",
        help="entries per dispatched batch (default 8192)",
    )
    parser.add_argument(
        "--shm", dest="use_shm", action="store_true", default=None,
        help="dispatch batches to persistent workers attached to the LPM "
             "table through shared memory (zero-copy hot path; default "
             "whenever --shards > 1)",
    )
    parser.add_argument(
        "--no-shm", dest="use_shm", action="store_false",
        help="force the legacy per-chunk pickle pool instead of the "
             "shared-memory transport",
    )
    parser.add_argument(
        "--max-errors", type=int, default=None, metavar="N",
        help="abort when more than N malformed lines accumulate "
             "(default: skip-and-count forever)",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="write engine state to PATH when the run completes",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="ENTRIES",
        help="also checkpoint after every ENTRIES ingested (0 = only at "
             "the end)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="restore state from --checkpoint before ingesting "
             "(requires the same routing table); when the checkpoint "
             "was taken against this same log, its already-ingested "
             "prefix is skipped, otherwise the whole log is appended",
    )
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="re-dispatches of a failed chunk before quarantining it "
             "(default 2)",
    )
    parser.add_argument(
        "--backoff", type=float, default=0.1, metavar="SECONDS",
        help="base of the exponential retry backoff (default 0.1s; "
             "doubles per retry, capped at 5s)",
    )
    parser.add_argument(
        "--quarantine", metavar="PATH", default=None,
        help="dead-letter file for chunks that exhaust their retries "
             "(JSON lines; default: quarantined chunks are counted "
             "but not persisted)",
    )
    parser.add_argument(
        "--no-degrade", action="store_true",
        help="never fall back to inline single-process ingestion when "
             "the worker pool keeps dying (fail instead)",
    )
    parser.add_argument(
        "--dispatch-timeout", type=float, default=None, metavar="SECONDS",
        help="declare a dispatched chunk failed after SECONDS (recovers "
             "from hung/killed workers; default: wait forever)",
    )
    parser.add_argument(
        "--inject", metavar="PLAN.json", default=None,
        help="arm a repro.faults FaultPlan (chaos testing): injected "
             "worker crashes, checkpoint corruption, dirty input",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print engine counters (entries/sec, latency, shard skew, "
             "fault accounting)",
    )
    parser.add_argument(
        "--busy", type=float, default=None, metavar="SHARE",
        help="threshold busy clusters covering SHARE of requests",
    )
    parser.add_argument(
        "--top", type=int, default=20,
        help="how many clusters to print (default 20, 0 = all)",
    )
    return parser


def _build_engine(
    args: argparse.Namespace,
    table: PackedLpm,
    injector: Optional[FaultInjector],
) -> SupervisedEngine:
    config = EngineConfig(
        num_shards=args.shards,
        chunk_size=args.chunk_size,
        name=args.log,
        dispatch_timeout=args.dispatch_timeout,
        use_shm=args.use_shm,
    )
    supervision = SupervisorConfig(
        max_retries=args.retries,
        backoff_base=args.backoff,
        quarantine_path=args.quarantine,
        allow_degraded=not args.no_degrade,
    )
    metrics = EngineMetrics(args.shards)
    engine: Optional[ShardedClusterEngine] = None
    if args.resume:
        if not args.checkpoint:
            raise CheckpointError("--resume requires --checkpoint PATH")
        if os.path.exists(args.checkpoint):
            engine = ShardedClusterEngine.resume(
                args.checkpoint, table, config, metrics, injector=injector
            )
            print(
                f"resumed from {args.checkpoint} "
                f"({engine.entries_ingested:,} entries already ingested)"
            )
        else:
            print(f"no checkpoint at {args.checkpoint}; starting fresh")
    if engine is None:
        engine = ShardedClusterEngine(
            table, config, metrics, injector=injector
        )
    return SupervisedEngine(engine, supervision)


def _entries_to_skip(resume_meta: Dict[str, Any], log: str) -> int:
    """How many parsed entries of ``log`` the checkpoint already counted.

    Checkpoints written by this CLI record the log they were ingesting
    (``log``) and how many of its parsed entries had been folded in
    (``log_entries``).  Resuming against the same log skips exactly that
    prefix — parsing is deterministic, so entry N of a re-read is entry
    N of the interrupted run — which is what makes the resumed cluster
    table identical to an uninterrupted run's.  Resuming against any
    other log (or a checkpoint written through the engine API, which
    records no source log) skips nothing: the whole log is appended on
    top of the restored state.
    """
    if not resume_meta:
        return 0
    checkpoint_log = resume_meta.get("log")
    if checkpoint_log == log:
        skip = int(resume_meta.get("log_entries", 0))
        if skip:
            print(
                f"skipping the first {skip:,} entries of {log} "
                "(already in the checkpoint)"
            )
        return skip
    if checkpoint_log:
        print(
            f"checkpoint was taken against {checkpoint_log!r}; "
            f"appending all of {log!r} to the restored state"
        )
    else:
        print(
            "checkpoint records no source log; "
            "appending the whole log to the restored state"
        )
    return 0


def _write_checkpoint(
    engine: SupervisedEngine, args: argparse.Namespace, log_entries: int
) -> None:
    engine.checkpoint(
        args.checkpoint,
        extra_meta={"log": args.log, "log_entries": log_entries},
    )


def main(argv: Optional[List[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "serve":
        # The daemon mode lives in its own package; ``repro-engine
        # serve ...`` hands the rest of the command line over.
        from repro.serve.cli import serve_main

        code: int = serve_main(arguments[1:])
        return code
    parser = build_parser()
    args = parser.parse_args(arguments)
    if not args.table:
        parser.error("the engine needs at least one --table dump")
    if args.checkpoint_every and not args.checkpoint:
        parser.error("--checkpoint-every requires --checkpoint PATH")

    injector: Optional[FaultInjector] = None
    if args.inject:
        injector = FaultInjector(FaultPlan.load(args.inject))
        print(f"fault injection armed from {args.inject}: "
              f"{', '.join(injector.plan.sites()) or 'no sites'}")

    merged = load_tables(args.table, injector=injector)
    print(f"merged prefix table: {len(merged):,} entries "
          f"from {len(args.table)} dump(s)")
    if args.memo_size < 0:
        parser.error("--memo-size must be >= 0")
    table = build_lpm_table(args.lpm, merged, args.memo_size)
    inner = table.table if args.memo_size else table
    detail = f"{len(inner):,} entries, {inner.num_intervals:,} intervals"
    if args.lpm == "stride":
        detail += f", {inner.num_direct_slots:,}/65,536 direct slots"
    if args.memo_size:
        detail += f", memo bound {args.memo_size:,}"
    print(f"{args.lpm} LPM table: {detail}")

    try:
        engine = _build_engine(args, table, injector)
    except CheckpointError as exc:
        print(f"cannot resume: {exc}", file=sys.stderr)
        return 1
    skip = _entries_to_skip(engine.resume_meta, args.log)

    report = ParseReport()
    since_checkpoint = 0
    ingested_this_run = 0
    with engine:
        with open(args.log) as handle:
            lines: Iterable[str] = handle
            if injector is not None:
                lines = injector.wrap_lines(handle, SITE_LOG_TRUNCATE)
            entries = iter_clf_entries(lines, report, max_errors=args.max_errors)
            if skip:
                entries = itertools.islice(entries, skip, None)
            try:
                while True:
                    batch: List[LogEntry] = []
                    for entry in entries:
                        batch.append(entry)
                        if len(batch) >= args.chunk_size:
                            break
                    if not batch:
                        break
                    engine.ingest(batch)
                    # Positional accounting uses *consumed* entries, not
                    # applied: a quarantined chunk was consumed from the
                    # log (it lives in the dead-letter file, not here),
                    # so a later --resume must not replay it.
                    since_checkpoint += len(batch)
                    ingested_this_run += len(batch)
                    if (
                        args.checkpoint_every
                        and since_checkpoint >= args.checkpoint_every
                    ):
                        _write_checkpoint(
                            engine, args, skip + ingested_this_run
                        )
                        since_checkpoint = 0
            except ParseLimitError as exc:
                print(f"aborting: {exc}", file=sys.stderr)
                return 1
        engine.metrics.record_malformed(report.malformed)
        print(
            f"parsed {report.parsed:,} requests "
            f"({report.malformed:,} malformed, "
            f"{report.null_client:,} null-client lines dropped)"
        )
        if skip and report.parsed < skip:
            print(
                f"warning: {args.log} holds {report.parsed:,} entries but "
                f"the checkpoint had already ingested {skip:,} from it — "
                "the log appears to have shrunk since the checkpoint",
                file=sys.stderr,
            )
        snap = engine.metrics.snapshot()
        if snap["chunks_quarantined"]:
            destination = args.quarantine or "dropped (no --quarantine PATH)"
            print(
                f"warning: {int(snap['chunks_quarantined'])} chunk(s) / "
                f"{int(snap['entries_quarantined']):,} entries quarantined "
                f"after {args.retries} retries each — {destination}",
                file=sys.stderr,
            )
        if engine.degraded:
            print(
                "warning: worker pool kept dying; run finished in "
                "degraded (inline single-process) mode",
                file=sys.stderr,
            )
        if engine.entries_ingested == 0:
            print("no usable entries; nothing to cluster", file=sys.stderr)
            return 1
        if args.checkpoint:
            _write_checkpoint(engine, args, skip + ingested_this_run)
            print(f"checkpoint written: {args.checkpoint}")

        clusters = engine.snapshot()
        print()
        print_cluster_report(clusters, args.top, args.busy)
        if args.metrics:
            print()
            print(engine.metrics.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
