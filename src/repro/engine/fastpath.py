"""The engine's fast path: stride-indexed LPM, memoized resolution,
and packed zero-copy chunk transport.

Three independent optimisations of the ingestion hot loop, selectable
from the CLI (``--lpm``, ``--memo-size``) and composable with every
existing engine feature (sharding, checkpoints, supervision, fault
injection) because each one preserves the surrounding contract exactly:

* :class:`StrideLpm` — a :class:`~repro.engine.packed.PackedLpm`
  whose top 16 address bits index a flat 2^16-entry slot table.  A
  slot covered by a single interval (every prefix ≤ /16, and any /16
  block no longer prefix punches into) resolves in **one array index**
  — no search at all.  Slots that longer prefixes subdivide point at a
  small per-slot run of the interval layout, and the binary search
  shrinks from the whole table to that run.  Same compile input, same
  lookup results, same ``digest()``, same pickle-ability.
* :class:`MemoizedLookup` — an exact-IP memo in front of any table,
  exploiting the heavy-tailed client repetition of web logs: a client
  seen before costs one dict probe instead of an LPM search.  The memo
  is bounded (FIFO eviction) and its hit/miss/eviction counts flow
  into :class:`~repro.engine.metrics.EngineMetrics`.
* :class:`PackedBatch` — the wire format of a dispatched shard batch:
  a flat ``array('Q')`` of client addresses, a flat ``array('Q')`` of
  response sizes, and URLs interned into a per-batch string table
  referenced by ``array('L')`` ids.  Pickling three flat buffers and
  one deduplicated string tuple is far cheaper than pickling one
  Python tuple per request, and the worker folds the batch into its
  :class:`~repro.engine.state.ClusterStore` without ever
  materialising per-entry objects.

Correctness is pinned by tests: every table kind, memo size, and
transport path produces clusters bit-identical to
:func:`repro.core.clustering.cluster_log`, including under fault
plans and across checkpoint/resume.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis import sanitize as _sanitize
from repro.engine.packed import PackedLpm, PatchResult, _PackedState
from repro.errors import SanitizeError
from repro.net.prefix import Prefix

if TYPE_CHECKING:
    from repro.bgp.table import MergedPrefixTable

#: One indirect slot's interval run: (starts, owners) as plain lists.
_SlotRun = Tuple[List[int], List[int]]

#: StrideLpm's pickled form: the packed layout plus the stride overlay.
_StrideState = Tuple[_PackedState, "array[int]", List[Optional[_SlotRun]]]

#: PackedBatch's pickled form: three flat buffers and the URL table.
_BatchState = Tuple["array[int]", "array[int]", "array[int]", Tuple[str, ...]]

__all__ = [
    "StrideLpm",
    "MemoizedLookup",
    "PackedBatch",
    "build_lpm_table",
    "build_table_view",
    "LPM_KINDS",
    "DEFAULT_MEMO_SIZE",
]

#: Table kinds ``build_lpm_table`` (and the CLIs' ``--lpm``) accept.
LPM_KINDS = ("packed", "stride")

#: Default memo bound: comfortably holds every distinct client of the
#: paper's logs (~60k for Nagano) while capping worst-case memory for
#: adversarial address streams at a few MB.
DEFAULT_MEMO_SIZE = 1 << 18

#: Number of low bits *not* covered by the stride index.
_STRIDE_SHIFT = 16
_NUM_SLOTS = 1 << 16

#: Slot sentinel: "consult the per-slot run" (any value ≥ -1 is a
#: direct answer — an entry index, or -1 for an uncovered gap).
_INDIRECT = -2


class StrideLpm(PackedLpm):
    """Stride-16 direct-index LPM over the packed interval layout.

    Construction first compiles the same disjoint-interval layout as
    :class:`PackedLpm` (so ``digest``, ``items``, ``prefix``, ``value``
    and the entry indices lookups return are identical), then overlays
    the stride index in one monotone walk over the intervals:

    * ``_slots[s]`` — the answer for every address whose top 16 bits
      equal ``s`` when one interval covers the whole /16 block (every
      prefix ≤ /16 that no longer prefix punches into, and every
      uncovered gap) — an entry index, or -1 for a miss — else the
      ``_INDIRECT`` sentinel;
    * ``_runs[s]`` — for indirect slots, the slot's own
      ``(starts, owners)`` interval run as two plain int lists, the
      first start clamped to the slot base so ``bisect_right`` can
      never land before the run.  Lists, not shared arrays: a bisect
      over a small int list compares already-boxed ints, where an
      ``array`` view would re-box an item per comparison.

    The hot path (:meth:`lookup_many`) therefore degenerates to one
    shift + one array index for every address in a direct slot, and a
    binary search over the handful of intervals inside one /16 block
    otherwise — against the full-table search :class:`PackedLpm` pays
    for every address.
    """

    __slots__ = ("_slots", "_runs")

    def __init__(self, entries: Sequence[Tuple[Prefix, Any]]) -> None:
        super().__init__(entries)
        self._build_stride()

    def _build_stride(self) -> None:
        starts = self._starts
        owners = self._owners
        num_intervals = len(starts)
        slots = array("q", [0]) * _NUM_SLOTS
        runs: List[Optional[_SlotRun]] = [None] * _NUM_SLOTS
        index = 0  # one monotone walk over the intervals
        for slot in range(_NUM_SLOTS):
            base = slot << _STRIDE_SHIFT
            end = base + _NUM_SLOTS
            while index + 1 < num_intervals and starts[index + 1] <= base:
                index += 1
            last = index
            while last + 1 < num_intervals and starts[last + 1] < end:
                last += 1
            if last == index:
                slots[slot] = owners[index]
            else:
                slots[slot] = _INDIRECT
                run_starts = [base]
                run_starts.extend(starts[index + 1:last + 1])
                runs[slot] = (run_starts, list(owners[index:last + 1]))
                index = last
        self._slots = slots
        self._runs = runs

    # -- introspection ---------------------------------------------------

    @property
    def num_direct_slots(self) -> int:
        """How many of the 2^16 slots resolve without any search."""
        return sum(1 for owner in self._slots if owner >= -1)

    # -- in-place patching -----------------------------------------------

    def apply_delta(
        self,
        announce: Sequence[Tuple[Prefix, Any]] = (),
        withdraw: Sequence[Prefix] = (),
    ) -> PatchResult:
        """Patch the packed layout, then repair the stride overlay.

        Outside the patch's address windows the interval *boundaries*
        are untouched — entry indices merely shifted — so those slots
        and runs only need the index remap applied.  Slots overlapping
        a window are rebuilt from the patched intervals with the same
        monotone walk compilation uses, which keeps the overlay
        bit-identical to a from-scratch :class:`StrideLpm` (the
        :meth:`verify_patched` gate compares ``_slots`` and ``_runs``
        too).
        """
        result = super().apply_delta(announce, withdraw)
        remap = result.remap
        if remap is None:
            return result
        slots = self._slots
        self._slots = array(
            "q", [remap[owner] if owner >= 0 else owner for owner in slots]
        )
        runs = self._runs
        for slot, run in enumerate(runs):
            if run is not None:
                run_starts, run_owners = run
                runs[slot] = (
                    run_starts,
                    [remap[o] if o >= 0 else o for o in run_owners],
                )
        for low, high in result.windows:
            self._rebuild_slots(low >> _STRIDE_SHIFT, high >> _STRIDE_SHIFT)
        return result

    def _rebuild_slots(self, first_slot: int, last_slot: int) -> None:
        """Recompile slots ``first_slot..last_slot`` (inclusive) from the
        current intervals — the windowed version of :meth:`_build_stride`,
        seeded by one bisect instead of walking from slot zero."""
        starts = self._starts
        owners = self._owners
        num_intervals = len(starts)
        slots = self._slots
        runs = self._runs
        index = bisect_right(starts, first_slot << _STRIDE_SHIFT) - 1
        for slot in range(first_slot, last_slot + 1):
            base = slot << _STRIDE_SHIFT
            end = base + _NUM_SLOTS
            while index + 1 < num_intervals and starts[index + 1] <= base:
                index += 1
            last = index
            while last + 1 < num_intervals and starts[last + 1] < end:
                last += 1
            if last == index:
                slots[slot] = owners[index]
                runs[slot] = None
            else:
                slots[slot] = _INDIRECT
                run_starts = [base]
                run_starts.extend(starts[index + 1:last + 1])
                runs[slot] = (run_starts, list(owners[index:last + 1]))
                index = last

    def verify_patched(self) -> None:
        """Equivalence gate, extended to the stride overlay."""
        super().verify_patched()
        rebuilt = StrideLpm(list(zip(self._prefixes, self._values)))
        if rebuilt._slots != self._slots or rebuilt._runs != self._runs:
            raise SanitizeError(
                "patched StrideLpm overlay diverged from a from-scratch "
                f"rebuild at epoch {self.epoch}: the stride index no "
                "longer mirrors the packed intervals"
            )

    # -- lookups ---------------------------------------------------------

    def match_index(self, address: int) -> int:
        slot = address >> _STRIDE_SHIFT
        owner = self._slots[slot]
        if owner >= -1:
            return owner
        run_starts, run_owners = self._runs[slot]  # type: ignore[misc]
        return run_owners[bisect_right(run_starts, address) - 1]

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, Any]]:
        owner = self.match_index(address)
        if owner < 0:
            return None
        return self._prefixes[owner], self._values[owner]

    def lookup(self, address: int) -> Any:
        owner = self.match_index(address)
        if owner < 0:
            return None
        return self._values[owner]

    def lookup_many(self, addresses: Iterable[int]) -> List[int]:
        """Batch lookup: one shift + one index per direct-slot address,
        a run-bounded binary search otherwise.

        Under ``REPRO_SANITIZE=1`` a sampled fraction of calls is
        recomputed through the packed binary-search path and compared —
        the stride overlay is an index, and an index that disagrees with
        the data it indexes is the worst kind of silent corruption.
        """
        sanitizing = _sanitize.is_enabled()
        if sanitizing:
            # The cross-check re-reads the addresses, so a one-shot
            # iterator must be materialised first (same values, so the
            # clustering output is unchanged).
            addresses = list(addresses)
        slots = self._slots
        runs = self._runs
        search = bisect_right
        out: List[int] = []
        append = out.append
        for address in addresses:
            slot = address >> 16
            owner = slots[slot]
            if owner < -1:
                run_starts, run_owners = runs[slot]  # type: ignore[misc]
                owner = run_owners[search(run_starts, address) - 1]
            append(owner)
        if sanitizing and _sanitize.crosscheck_due():
            expected = PackedLpm.lookup_many(self, addresses)
            if expected != out:
                raise SanitizeError(
                    "stride/packed LPM cross-check failed: the stride "
                    f"index disagrees with the packed intervals on a "
                    f"batch of {len(out)} lookups"
                )
            _sanitize.record_crosscheck()
        return out

    # -- pickling --------------------------------------------------------

    def __getstate__(self) -> _StrideState:
        return (super().__getstate__(), self._slots, self._runs)

    def __setstate__(self, state: _StrideState) -> None:
        packed_state, self._slots, self._runs = state
        super().__setstate__(packed_state)


#: Distinct from any valid memo value (indices are ints, including -1).
#: Typed ``Any`` so ``dict.get(addr, _ABSENT)`` keeps its int result type.
_ABSENT: Any = object()


class MemoizedLookup:
    """Bounded exact-IP memo in front of any index-returning LPM table.

    Wraps anything with the packed-table API (``lookup_many`` returning
    entry indices plus ``prefix``/``value``/``digest``) and serves
    repeat addresses from a dict.  Web-log client popularity is heavy
    tailed, so in steady state most addresses never reach the table.

    The memo is bounded at ``maxsize`` distinct addresses with FIFO
    eviction (dicts preserve insertion order); eviction only matters
    when a log's distinct-client count exceeds the bound, where FIFO's
    per-miss cost — one ``pop`` — beats LRU's per-*hit* bookkeeping on
    the hit-dominated streams the memo exists for.

    Counters (``hits`` / ``misses`` / ``evictions``) accumulate per
    wrapper; the engine drains them into
    :class:`~repro.engine.metrics.EngineMetrics` via
    :meth:`take_memo_stats` after each dispatched chunk.  The wrapper
    pickles *without* its memo or counters — each worker process warms
    its own memo over its own shard's clients.
    """

    __slots__ = (
        "table", "maxsize", "hits", "misses", "evictions", "_memo",
        "_table_epoch",
    )

    def __init__(self, table: Any, maxsize: int = DEFAULT_MEMO_SIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"memo maxsize must be >= 1: {maxsize!r}")
        self.table = table
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._memo: Dict[int, int] = {}
        self._table_epoch = int(getattr(table, "epoch", 0))

    # -- patch-aware invalidation ----------------------------------------

    def _sync_epoch(self) -> None:
        """Safety net: if the table was patched without
        :meth:`apply_patch` being called, drop the whole memo rather
        than serve stale indices.  One int compare on the happy path."""
        epoch = getattr(self.table, "epoch", 0)
        if epoch != self._table_epoch:
            self._memo.clear()
            self._table_epoch = epoch

    def apply_delta(
        self,
        announce: Sequence[Tuple[Prefix, Any]] = (),
        withdraw: Sequence[Prefix] = (),
    ) -> PatchResult:
        """Patch the wrapped table and selectively invalidate the memo
        in one step (see :meth:`PackedLpm.apply_delta`)."""
        result: PatchResult = self.table.apply_delta(announce, withdraw)
        self.apply_patch(result)
        return result

    def apply_patch(self, result: PatchResult) -> int:
        """Fold one :class:`~repro.engine.packed.PatchResult` into the
        memo: entries inside an affected window are evicted (their
        longest match may have changed), every other entry has the
        index remap applied.  Returns the number of evicted entries.

        Far cheaper than a wholesale clear on the heavy-tailed client
        streams the memo exists for: a routing delta touches a few
        address windows, while the memo holds the whole working set.
        """
        self._table_epoch = int(getattr(self.table, "epoch", 0))
        remap = result.remap
        if remap is None:
            return 0
        window_lows = [window[0] for window in result.windows]
        window_highs = [window[1] for window in result.windows]
        fresh: Dict[int, int] = {}
        dropped = 0
        for address, owner in self._memo.items():
            spot = bisect_right(window_lows, address) - 1
            if spot >= 0 and address <= window_highs[spot]:
                dropped += 1
                continue
            fresh[address] = remap[owner] if owner >= 0 else owner
        self._memo = fresh
        self.evictions += dropped
        return dropped

    def verify_patched(self) -> None:
        """Delegate the equivalence gate to the wrapped table."""
        self.table.verify_patched()

    @property
    def epoch(self) -> int:
        """The wrapped table's patch generation counter."""
        return int(getattr(self.table, "epoch", 0))

    @property
    def deltas_applied(self) -> int:
        """The wrapped table's lifetime applied-delta count."""
        return int(getattr(self.table, "deltas_applied", 0))

    # -- memoized lookups ------------------------------------------------

    def lookup_many(self, addresses: Iterable[int]) -> List[int]:
        """Batch lookup: memo hits inline, misses batched to the table.

        Output order matches the input.  An address repeating inside
        one batch before it is memoized counts as a miss each time
        (misses are collected first, resolved in one table batch);
        the memo stores it once and later batches hit.
        """
        self._sync_epoch()
        memo = self._memo
        get = memo.get
        out: List[int] = []
        append = out.append
        miss_pos: List[int] = []
        miss_addr: List[int] = []
        position = 0
        for address in addresses:
            owner = get(address, _ABSENT)
            if owner is _ABSENT:
                miss_pos.append(position)
                miss_addr.append(address)
                append(-1)
            else:
                append(owner)
            position += 1
        if miss_addr:
            resolved = self.table.lookup_many(miss_addr)
            maxsize = self.maxsize
            evictions = 0
            for position, address, owner in zip(miss_pos, miss_addr, resolved):
                out[position] = owner
                if address not in memo:
                    if len(memo) >= maxsize:
                        del memo[next(iter(memo))]
                        evictions += 1
                    memo[address] = owner
            self.misses += len(miss_addr)
            self.evictions += evictions
        self.hits += len(out) - len(miss_addr)
        return out

    def match_index(self, address: int) -> int:
        self._sync_epoch()
        owner = self._memo.get(address, _ABSENT)
        if owner is _ABSENT:
            owner = self.table.match_index(address)
            self.misses += 1
            if len(self._memo) >= self.maxsize:
                del self._memo[next(iter(self._memo))]
                self.evictions += 1
            self._memo[address] = owner
        else:
            self.hits += 1
        return owner

    def lookup(self, address: int) -> Any:
        owner = self.match_index(address)
        if owner < 0:
            return None
        return self.table.value(owner)

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, Any]]:
        owner = self.match_index(address)
        if owner < 0:
            return None
        return self.table.prefix(owner), self.table.value(owner)

    # -- telemetry -------------------------------------------------------

    def take_memo_stats(self) -> Tuple[int, int, int]:
        """Return and reset ``(hits, misses, evictions)`` accumulated
        since the last take — the engine's per-chunk metrics drain."""
        stats = (self.hits, self.misses, self.evictions)
        self.hits = self.misses = self.evictions = 0
        return stats

    def clear_memo(self) -> None:
        """Drop every memoized resolution (table hot-swap hook)."""
        self._memo.clear()

    def __len__(self) -> int:
        return len(self.table)

    def __bool__(self) -> bool:
        return bool(self.table)

    @property
    def memo_size(self) -> int:
        """Distinct addresses currently memoized."""
        return len(self._memo)

    # -- delegation (the rest of the LookupTable surface) ----------------

    def items(self) -> Iterable[Tuple[Prefix, Any]]:
        return self.table.items()

    def prefix(self, index: int) -> Prefix:
        return self.table.prefix(index)

    def value(self, index: int) -> Any:
        return self.table.value(index)

    def digest(self) -> str:
        return self.table.digest()

    # -- pickling --------------------------------------------------------

    def __getstate__(self) -> Tuple[Any, int]:
        # The memo and its counters are process-local working state:
        # workers warm their own over their own shard's clients.
        return (self.table, self.maxsize)

    def __setstate__(self, state: Tuple[Any, int]) -> None:
        self.table, self.maxsize = state
        self.hits = self.misses = self.evictions = 0
        self._memo = {}
        self._table_epoch = int(getattr(self.table, "epoch", 0))


class PackedBatch:
    """One shard's dispatched work as flat buffers, not tuple lists.

    ``addresses`` and ``sizes`` are ``array('Q')``; ``url_ids`` is an
    ``array('L')`` of indices into ``urls``, the batch's interned
    string table (each distinct URL pickled once however often it
    repeats).  The arrays pickle as single contiguous buffers — the
    "zero-copy" of the wire format: serialisation cost no longer scales
    with per-entry Python object count.

    Workers consume batches with
    :meth:`repro.engine.state.ClusterStore.apply_packed`;
    :meth:`iter_triples` recovers the plain ``(client, url, size)``
    stream for code that still wants tuples.
    """

    __slots__ = ("addresses", "sizes", "url_ids", "urls", "_url_index")

    def __init__(self) -> None:
        self.addresses = array("Q")
        self.sizes = array("Q")
        self.url_ids = array("L")
        self.urls: List[str] = []
        self._url_index: Optional[Dict[str, int]] = {}

    def append(self, client: int, url: str, size: int) -> None:
        index = self._url_index
        if index is None:
            raise TypeError("PackedBatch is frozen after unpickling")
        url_id = index.get(url)
        if url_id is None:
            url_id = index[url] = len(self.urls)
            self.urls.append(url)
        self.addresses.append(client)
        self.sizes.append(size)
        self.url_ids.append(url_id)

    @classmethod
    def from_triples(
        cls, triples: Iterable[Tuple[int, str, int]]
    ) -> "PackedBatch":
        batch = cls()
        append = batch.append
        for client, url, size in triples:
            append(client, url, size)
        return batch

    @classmethod
    def partition(
        cls, triples: Iterable[Tuple[int, str, int]], num_shards: int
    ) -> List["PackedBatch"]:
        """Pack ``triples`` straight into per-shard batches (one pass,
        no intermediate per-shard tuple lists)."""
        from repro.engine.shard import shard_of

        batches = [cls() for _ in range(num_shards)]
        for client, url, size in triples:
            batches[shard_of(client, num_shards)].append(client, url, size)
        return batches

    def __len__(self) -> int:
        return len(self.addresses)

    def iter_triples(self) -> Iterator[Tuple[int, str, int]]:
        urls = self.urls
        for client, url_id, size in zip(self.addresses, self.url_ids,
                                        self.sizes):
            yield client, urls[url_id], size

    def __getstate__(self) -> _BatchState:
        return (self.addresses, self.sizes, self.url_ids, tuple(self.urls))

    def __setstate__(self, state: _BatchState) -> None:
        self.addresses, self.sizes, self.url_ids, urls = state
        self.urls = list(urls)
        self._url_index = None


def build_lpm_table(
    kind: str, merged: "MergedPrefixTable", memo_size: int = 0
) -> Any:
    """Compile ``merged`` (a MergedPrefixTable) into an engine table.

    ``kind`` selects the layout (``"packed"`` or ``"stride"``);
    ``memo_size`` > 0 wraps the result in a :class:`MemoizedLookup`
    bounded at that many addresses.  Every combination exposes the
    identical LookupTable surface, and two tables compiled from the
    same merged input share a ``digest()`` whatever the kind — so
    checkpoints move freely between ``--lpm`` settings.
    """
    if kind == "packed":
        table: Any = PackedLpm.from_merged(merged)
    elif kind == "stride":
        table = StrideLpm.from_merged(merged)
    else:
        raise ValueError(
            f"unknown LPM table kind {kind!r} (choose from {LPM_KINDS})"
        )
    if memo_size:
        table = MemoizedLookup(table, memo_size)
    return table


def build_table_view(
    kind: str,
    starts: Any,
    owners: Any,
    slots: Any,
    entries: Tuple[Any, Any, Any],
    epoch: int,
    deltas_applied: int,
) -> PackedLpm:
    """Reconstruct a table *around* existing buffers, copying nothing.

    The buffer parameters may be plain ``array`` objects or
    ``memoryview`` casts over a ``multiprocessing.shared_memory``
    segment or an mmap'd checkpoint — anything ``bisect_right`` can
    search (``starts`` cast ``'Q'``, ``owners``/``slots`` cast ``'q'``).
    ``entries`` carries the Python-object side as ``(prefixes, values,
    runs)``; ``runs`` (and ``slots``) are only consulted for
    ``kind="stride"``.  A view built over borrowed buffers reports
    :attr:`PackedLpm.is_view` and refuses ``apply_delta`` — patch the
    owning table and republish instead.
    """
    prefixes, values, runs = entries
    packed_state: _PackedState = (
        starts, owners, tuple(prefixes), tuple(values),
        epoch, deltas_applied,
    )
    if kind == "packed":
        packed = PackedLpm.__new__(PackedLpm)
        packed.__setstate__(packed_state)
        return packed
    if kind == "stride":
        stride = StrideLpm.__new__(StrideLpm)
        stride.__setstate__((packed_state, slots, list(runs)))
        return stride
    raise ValueError(
        f"unknown LPM table kind {kind!r} (choose from {LPM_KINDS})"
    )
