"""Lightweight engine telemetry: counters, timers, shard skew.

The engine feeds these from its ingestion loop; nothing here touches a
clock itself, so the numbers are deterministic in tests (feed synthetic
durations) and nearly free in production (integer adds per batch).
:meth:`EngineMetrics.snapshot` exposes a plain dict;
:meth:`EngineMetrics.render` prints it via :func:`repro.util.tables`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.util.tables import format_count, render_table

__all__ = ["EngineMetrics"]


class EngineMetrics:
    """Counters and timers for one engine run."""

    def __init__(self, num_shards: int = 1) -> None:
        self.num_shards = max(1, num_shards)
        self.entries = 0
        self.lookups = 0
        self.batches = 0
        self.malformed_skipped = 0
        self.checkpoints_written = 0
        self.table_swaps = 0
        self.worker_restarts = 0
        self.chunk_retries = 0
        self.chunks_quarantined = 0
        self.entries_quarantined = 0
        self.checkpoint_rewrites = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_evictions = 0
        self.routes_announced = 0
        self.routes_withdrawn = 0
        self.clients_reclustered = 0
        self.patches_applied = 0
        self.patch_rebuild_fallbacks = 0
        self.sanitize_batch_checks = 0
        self.sanitize_lpm_crosschecks = 0
        self.sanitize_checkpoint_readbacks = 0
        self.sanitize_rng_draws = 0
        self.wal_appends = 0
        self.wal_syncs = 0
        self.wal_rotations = 0
        self.wal_segments_truncated = 0
        self.wal_recovered_events = 0
        self.wal_truncated_frames = 0
        self.wal_enospc_recoveries = 0
        self.shed_events = 0
        self.shm_unlink_failures = 0
        self.degraded = False
        self.total_seconds = 0.0
        self.max_batch_seconds = 0.0
        self.patch_seconds = 0.0
        self.shard_entries: List[int] = [0] * self.num_shards

    # -- recording -------------------------------------------------------

    def record_batch(
        self, per_shard_counts: Sequence[int], seconds: float, lookups: int
    ) -> None:
        """Record one dispatched batch: per-shard entry counts, wall
        time, and LPM lookups performed."""
        self.batches += 1
        self.entries += sum(per_shard_counts)
        self.lookups += lookups
        self.total_seconds += seconds
        if seconds > self.max_batch_seconds:
            self.max_batch_seconds = seconds
        for shard, count in enumerate(per_shard_counts):
            self.shard_entries[shard] += count

    def record_malformed(self, count: int = 1) -> None:
        self.malformed_skipped += count

    def record_checkpoint(self) -> None:
        self.checkpoints_written += 1

    def record_table_swap(self) -> None:
        self.table_swaps += 1

    def record_worker_restart(self) -> None:
        """A worker pool was terminated and will be rebuilt."""
        self.worker_restarts += 1

    def record_retry(self) -> None:
        """A failed chunk was re-dispatched."""
        self.chunk_retries += 1

    def record_quarantine(self, entries: int) -> None:
        """A chunk exhausted its retries and went to the dead-letter
        file; ``entries`` requests are excluded from the run's output."""
        self.chunks_quarantined += 1
        self.entries_quarantined += entries

    def record_checkpoint_rewrite(self) -> None:
        """A just-written checkpoint failed read-back verification and
        was written again."""
        self.checkpoint_rewrites += 1

    def record_memo(self, hits: int, misses: int, evictions: int) -> None:
        """Fold in one drain of a
        :class:`~repro.engine.fastpath.MemoizedLookup`'s counters
        (driver-side after inline chunks, worker-reported otherwise)."""
        self.memo_hits += hits
        self.memo_misses += misses
        self.memo_evictions += evictions

    def record_patch(
        self, announced: int, withdrawn: int, reclustered: int, seconds: float
    ) -> None:
        """Record one applied routing delta batch: routes announced and
        withdrawn in place, clients whose cluster assignment moved, and
        the wall time spent patching tables and reclustering."""
        self.patches_applied += 1
        self.routes_announced += announced
        self.routes_withdrawn += withdrawn
        self.clients_reclustered += reclustered
        self.patch_seconds += seconds

    def record_patch_fallback(self) -> None:
        """A delta batch was too large to patch in place and the serve
        loop rebuilt the table from scratch instead."""
        self.patch_rebuild_fallbacks += 1

    def record_sanitize(
        self,
        batch_checks: int,
        lpm_crosschecks: int,
        checkpoint_readbacks: int,
        rng_draws: int,
    ) -> None:
        """Fold in one drain of :func:`repro.analysis.sanitize.take_stats`
        (worker-reported for pooled chunks, driver-side after inline
        chunks and checkpoint writes).  All-zero when ``REPRO_SANITIZE``
        is off."""
        self.sanitize_batch_checks += batch_checks
        self.sanitize_lpm_crosschecks += lpm_crosschecks
        self.sanitize_checkpoint_readbacks += checkpoint_readbacks
        self.sanitize_rng_draws += rng_draws

    def record_wal_append(self, synced: bool) -> None:
        """One event frame reached the serve write-ahead log; ``synced``
        marks the appends whose batched fsync fired."""
        self.wal_appends += 1
        if synced:
            self.wal_syncs += 1

    def record_wal_rotation(self) -> None:
        """A WAL segment crossed its size threshold and was closed."""
        self.wal_rotations += 1

    def record_wal_truncated_segments(self, count: int) -> None:
        """``count`` checkpoint-covered WAL segments were deleted."""
        self.wal_segments_truncated += count

    def record_wal_recovery(self, events: int, truncated_frames: int) -> None:
        """One ``serve --resume --wal`` recovery: events re-fed from the
        WAL tail, and torn tails repaired while reading it back."""
        self.wal_recovered_events += events
        self.wal_truncated_frames += truncated_frames

    def record_wal_enospc_recovery(self) -> None:
        """A WAL append hit ``ENOSPC``, and the checkpoint-truncate-retry
        path got the event durably appended after all."""
        self.wal_enospc_recoveries += 1

    def record_shed(self, count: int = 1) -> None:
        """``count`` log events were dropped by ingress overload
        shedding (routing deltas are never shed)."""
        self.shed_events += count

    def record_shm_unlink_failures(self, count: int = 1) -> None:
        """``count`` shared-memory segments either failed to close or
        unlink on a teardown path, or were found leaked by a previous
        run and reclaimed at publish time.  Nonzero values mean cleanup
        needed the backstop — worth a look, not an error."""
        self.shm_unlink_failures += count

    def record_degraded(self) -> None:
        """The run fell back to inline (single-process) ingestion."""
        self.degraded = True

    # -- derived figures -------------------------------------------------

    @property
    def entries_per_second(self) -> float:
        if self.total_seconds <= 0.0:
            return 0.0
        return self.entries / self.total_seconds

    @property
    def mean_batch_seconds(self) -> float:
        if self.batches == 0:
            return 0.0
        return self.total_seconds / self.batches

    @property
    def mean_patch_seconds(self) -> float:
        if self.patches_applied == 0:
            return 0.0
        return self.patch_seconds / self.patches_applied

    @property
    def memo_hit_rate(self) -> float:
        """Share of memoized resolutions served without an LPM search."""
        probes = self.memo_hits + self.memo_misses
        if probes == 0:
            return 0.0
        return self.memo_hits / probes

    @property
    def shard_skew(self) -> float:
        """Max-over-mean shard load: 1.0 is perfect balance, 2.0 means
        the hottest shard saw twice the average."""
        if self.entries == 0:
            return 1.0
        mean = self.entries / self.num_shards
        return max(self.shard_entries) / mean if mean else 1.0

    # -- export ----------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Current readings as a flat dict (stable keys, plain types)."""
        return {
            "entries": self.entries,
            "lookups": self.lookups,
            "batches": self.batches,
            "malformed_skipped": self.malformed_skipped,
            "checkpoints_written": self.checkpoints_written,
            "table_swaps": self.table_swaps,
            "worker_restarts": self.worker_restarts,
            "chunk_retries": self.chunk_retries,
            "chunks_quarantined": self.chunks_quarantined,
            "entries_quarantined": self.entries_quarantined,
            "checkpoint_rewrites": self.checkpoint_rewrites,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_evictions": self.memo_evictions,
            "routes_announced": self.routes_announced,
            "routes_withdrawn": self.routes_withdrawn,
            "clients_reclustered": self.clients_reclustered,
            "patches_applied": self.patches_applied,
            "patch_rebuild_fallbacks": self.patch_rebuild_fallbacks,
            "sanitize_batch_checks": self.sanitize_batch_checks,
            "sanitize_lpm_crosschecks": self.sanitize_lpm_crosschecks,
            "sanitize_checkpoint_readbacks": self.sanitize_checkpoint_readbacks,
            "sanitize_rng_draws": self.sanitize_rng_draws,
            "wal_appends": self.wal_appends,
            "wal_syncs": self.wal_syncs,
            "wal_rotations": self.wal_rotations,
            "wal_segments_truncated": self.wal_segments_truncated,
            "wal_recovered_events": self.wal_recovered_events,
            "wal_truncated_frames": self.wal_truncated_frames,
            "wal_enospc_recoveries": self.wal_enospc_recoveries,
            "shed_events": self.shed_events,
            "shm_unlink_failures": self.shm_unlink_failures,
            "degraded": int(self.degraded),
            "num_shards": self.num_shards,
            "total_seconds": self.total_seconds,
            "mean_batch_seconds": self.mean_batch_seconds,
            "max_batch_seconds": self.max_batch_seconds,
            "patch_seconds": self.patch_seconds,
            "mean_patch_seconds": self.mean_patch_seconds,
            "entries_per_second": self.entries_per_second,
            "memo_hit_rate": self.memo_hit_rate,
            "shard_skew": self.shard_skew,
        }

    def render(self) -> str:
        """ASCII table of the snapshot, one metric per row."""
        snap = self.snapshot()
        rows: List[List[str]] = []
        for key in (
            "entries",
            "lookups",
            "batches",
            "malformed_skipped",
            "checkpoints_written",
            "table_swaps",
            "worker_restarts",
            "chunk_retries",
            "chunks_quarantined",
            "entries_quarantined",
            "checkpoint_rewrites",
            "memo_hits",
            "memo_misses",
            "memo_evictions",
            "routes_announced",
            "routes_withdrawn",
            "clients_reclustered",
            "patches_applied",
            "patch_rebuild_fallbacks",
            "sanitize_batch_checks",
            "sanitize_lpm_crosschecks",
            "sanitize_checkpoint_readbacks",
            "sanitize_rng_draws",
            "wal_appends",
            "wal_syncs",
            "wal_rotations",
            "wal_segments_truncated",
            "wal_recovered_events",
            "wal_truncated_frames",
            "wal_enospc_recoveries",
            "shed_events",
            "shm_unlink_failures",
            "degraded",
            "num_shards",
        ):
            rows.append([key, format_count(int(snap[key]))])
        rows.append(["entries_per_second", f"{snap['entries_per_second']:,.0f}"])
        rows.append(["memo_hit_rate", f"{snap['memo_hit_rate']:.3f}"])
        rows.append(["total_seconds", f"{snap['total_seconds']:.6f}"])
        rows.append(["mean_batch_seconds", f"{snap['mean_batch_seconds']:.6f}"])
        rows.append(["max_batch_seconds", f"{snap['max_batch_seconds']:.6f}"])
        rows.append(["patch_seconds", f"{snap['patch_seconds']:.6f}"])
        rows.append(["mean_patch_seconds", f"{snap['mean_patch_seconds']:.6f}"])
        rows.append(["shard_skew", f"{snap['shard_skew']:.3f}"])
        return render_table(["metric", "value"], rows, title="engine metrics")
