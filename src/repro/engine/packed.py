"""Immutable, array-packed longest-prefix-match table.

The radix trie (:class:`repro.net.radix.RadixTree`) is the right
structure for a table that changes entry by entry; the clustering
engine's table changes rarely (snapshot swaps, live BGP deltas), so it
can be *compiled*: the prefix set is flattened into the disjoint
address intervals it induces (nested prefixes project onto their
most-specific covering entry), and a lookup becomes one binary search
over a flat integer array instead of a pointer-chasing trie walk.

Route churn is applied *in place* with :meth:`PackedLpm.apply_delta`:
a batch of announcements/withdrawals splices the interval layout only
inside the affected address windows, preserving every compile
invariant, so the patched table is indistinguishable from a
from-scratch rebuild (:meth:`PackedLpm.verify_patched` enforces this).
Each successful patch bumps an epoch counter that downstream caches
(:class:`~repro.engine.fastpath.MemoizedLookup`, cluster assignments)
use for selective invalidation via the returned :class:`PatchResult`.

Layout — three parallel, flat sequences:

* ``_starts`` — ``array('Q')`` of interval start addresses, ascending;
  interval *i* covers ``[_starts[i], _starts[i+1])``.
* ``_owners`` — ``array('q')`` mapping interval *i* to the index of its
  most-specific covering entry, or ``-1`` for uncovered gaps.
* ``_prefixes`` / ``_values`` — tuples holding each entry's
  :class:`~repro.net.prefix.Prefix` and attached value.

The whole table is a handful of picklable flat objects, so it ships to
worker processes once and is shared read-only from then on.  Batch
lookups (:meth:`lookup_many`) do one ``bisect`` call — C code — per
address, which is what lets the engine outrun the per-entry trie loop.
"""

from __future__ import annotations

import hashlib
from array import array
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import SanitizeError
from repro.net.ipv4 import MAX_ADDRESS
from repro.net.prefix import Prefix

if TYPE_CHECKING:
    from repro.bgp.table import MergedPrefixTable
    from repro.net.radix import RadixTree

#: The pickled form: the four flat slots plus the generation counters,
#: in declaration order.
_PackedState = Tuple[
    "array[int]", "array[int]", Tuple[Prefix, ...], Tuple[Any, ...], int, int
]

__all__ = ["PackedLpm", "PatchResult", "merge_windows"]


@dataclass(frozen=True)
class PatchResult:
    """Outcome of one :meth:`PackedLpm.apply_delta` batch.

    ``windows`` are the merged, sorted, inclusive address ranges whose
    longest-match answer *may* have changed — the selective-invalidation
    contract for :class:`~repro.engine.fastpath.MemoizedLookup` and
    :meth:`~repro.engine.state.ClusterStore.reassign_clients`: any
    address outside every window resolves to the same prefix as before
    (possibly at a shifted entry index).

    ``remap`` maps every pre-patch entry index to its post-patch index.
    Surviving entries map to their shifted position; withdrawn entries
    map to the final index of their most specific remaining covering
    prefix (their new longest match), or ``-1`` when nothing covers
    them.  ``None`` means no structural change happened (value-only
    updates), so existing indices are still valid as-is.
    """

    epoch: int
    announced: int
    withdrawn: int
    value_updates: int
    noop_withdrawals: int
    windows: Tuple[Tuple[int, int], ...]
    remap: Optional[Tuple[int, ...]]

    @property
    def structural(self) -> bool:
        """True when entry indices shifted (inserts or withdrawals)."""
        return self.remap is not None


def merge_windows(
    spans: Iterable[Tuple[int, int]]
) -> Tuple[Tuple[int, int], ...]:
    """Merge inclusive address ranges into sorted disjoint windows.

    Adjacent ranges coalesce too (``[a, b] + [b+1, c] -> [a, c]``), so
    the result is the minimal window set for a given delta batch.
    """
    merged: List[Tuple[int, int]] = []
    for low, high in sorted(spans):
        if merged and low <= merged[-1][1] + 1:
            if high > merged[-1][1]:
                merged[-1] = (merged[-1][0], high)
        else:
            merged.append((low, high))
    return tuple(merged)


class PackedLpm:
    """Read-only LPM table over disjoint address intervals.

    Build with :meth:`from_items`, :meth:`from_radix`, or
    :meth:`from_merged`; the constructor itself takes an already
    deduplicated, ``sort_key``-ordered entry list.
    """

    __slots__ = (
        "_starts", "_owners", "_prefixes", "_values", "_epoch",
        "_deltas_applied",
    )

    def __init__(self, entries: Sequence[Tuple[Prefix, Any]]) -> None:
        self._epoch = 0
        self._deltas_applied = 0
        self._prefixes: Tuple[Prefix, ...] = tuple(p for p, _ in entries)
        self._values: Tuple[Any, ...] = tuple(v for _, v in entries)
        starts = array("Q", [0])
        owners = array("q", [-1])

        def push(addr: int, owner: int) -> None:
            if starts[-1] == addr:
                owners[-1] = owner
                if len(owners) >= 2 and owners[-2] == owner:
                    starts.pop()
                    owners.pop()
            elif owners[-1] != owner:
                starts.append(addr)
                owners.append(owner)

        prefixes = self._prefixes
        stack: List[int] = []
        for index, prefix in enumerate(prefixes):
            while stack and prefixes[stack[-1]].last_address < prefix.network:
                ended = stack.pop()
                push(prefixes[ended].last_address + 1, stack[-1] if stack else -1)
            push(prefix.network, index)
            stack.append(index)
        while stack:
            ended = stack.pop()
            boundary = prefixes[ended].last_address + 1
            if boundary <= MAX_ADDRESS:
                push(boundary, stack[-1] if stack else -1)
        self._starts = starts
        self._owners = owners

    # -- construction ----------------------------------------------------

    @classmethod
    def from_items(cls, items: Iterable[Tuple[Prefix, Any]]) -> "PackedLpm":
        """Compile from ``(prefix, value)`` pairs (later duplicates win,
        matching :meth:`RadixTree.insert` overwrite semantics)."""
        unique = dict(items)
        ordered = sorted(unique.items(), key=lambda kv: kv[0].sort_key())
        return cls(ordered)

    @classmethod
    def from_radix(cls, tree: "RadixTree") -> "PackedLpm":
        """Compile from a :class:`~repro.net.radix.RadixTree`."""
        return cls(tree.export_entries())

    @classmethod
    def from_merged(cls, table: "MergedPrefixTable") -> "PackedLpm":
        """Compile from a :class:`~repro.bgp.table.MergedPrefixTable`.

        Values are the table's :class:`~repro.bgp.table.LookupResult`
        objects, so :meth:`lookup` is a drop-in for
        ``MergedPrefixTable.lookup`` (same return type, same None-on-miss
        contract) — including as the table of a
        :class:`~repro.core.realtime.RealTimeClusterer`.
        """
        return cls(table.export_entries())

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._prefixes)

    def __bool__(self) -> bool:
        return bool(self._prefixes)

    @property
    def num_intervals(self) -> int:
        """Number of disjoint address intervals in the packed layout."""
        return len(self._starts)

    @property
    def epoch(self) -> int:
        """Generation counter: bumped by every :meth:`apply_delta` that
        changed anything.  Caches keyed on lookup results (memos,
        cluster assignments) compare epochs to detect a table that
        mutated underneath them."""
        return self._epoch

    @property
    def deltas_applied(self) -> int:
        """Total route events (announce/withdraw) applied in place over
        this table's lifetime (noop withdrawals excluded)."""
        return self._deltas_applied

    @property
    def is_view(self) -> bool:
        """True when the interval buffers are borrowed — ``memoryview``
        casts over a shared-memory segment or an mmap'd checkpoint —
        rather than arrays this table owns.  Views serve lookups at full
        speed but refuse in-place patching."""
        return not isinstance(self._starts, array)

    def items(self) -> Iterable[Tuple[Prefix, Any]]:
        """Iterate ``(prefix, value)`` entries in address order."""
        return zip(self._prefixes, self._values)

    def prefix(self, index: int) -> Prefix:
        """The prefix of entry ``index`` (as returned by lookups)."""
        return self._prefixes[index]

    def value(self, index: int) -> Any:
        """The value of entry ``index`` (as returned by lookups)."""
        return self._values[index]

    def digest(self) -> str:
        """Stable fingerprint of the prefix set (checkpoint safety check).

        Two tables compiled from the same prefixes — whatever the source
        structure — share a digest; values are excluded on purpose so a
        re-merged table with identical routes still matches.
        """
        hasher = hashlib.sha256()
        for prefix in self._prefixes:
            hasher.update(prefix.network.to_bytes(4, "big"))
            hasher.update(bytes((prefix.length,)))
        return hasher.hexdigest()

    # -- lookups ---------------------------------------------------------

    def match_index(self, address: int) -> int:
        """Entry index of the longest matching prefix, or -1 on miss."""
        return self._owners[bisect_right(self._starts, address) - 1]

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, Any]]:
        """Router-style lookup with the :class:`RadixTree` contract."""
        owner = self._owners[bisect_right(self._starts, address) - 1]
        if owner < 0:
            return None
        return self._prefixes[owner], self._values[owner]

    def lookup(self, address: int) -> Any:
        """Return the matched entry's value, or None on miss.

        Mirrors ``MergedPrefixTable.lookup`` when compiled via
        :meth:`from_merged`.
        """
        owner = self._owners[bisect_right(self._starts, address) - 1]
        if owner < 0:
            return None
        return self._values[owner]

    def lookup_many(self, addresses: Iterable[int]) -> List[int]:
        """Batch lookup: entry index per address (-1 on miss).

        The hot path of the engine: everything inside the comprehension
        is a C-level call, so per-address cost is one binary search with
        no Python-object churn.
        """
        starts = self._starts
        owners = self._owners
        search = bisect_right
        return [owners[search(starts, address) - 1] for address in addresses]

    # -- in-place patching -----------------------------------------------

    def apply_delta(
        self,
        announce: Sequence[Tuple[Prefix, Any]] = (),
        withdraw: Sequence[Prefix] = (),
    ) -> PatchResult:
        """Apply one batch of BGP route deltas *in place*.

        ``announce`` upserts entries (an already-present prefix becomes
        a value update — no structural change); ``withdraw`` removes
        entries (absent prefixes are counted as noops, the idempotent
        re-withdrawals live BGP feeds produce).  A prefix both announced
        and withdrawn in the same batch is a caller error — event
        streams must coalesce to one final operation per prefix first.

        The patch preserves every compile invariant of ``__init__``:
        entries stay ``sort_key``-ordered, and the interval layout is
        re-derived only inside the affected address windows, so the
        patched table is *indistinguishable* from a from-scratch rebuild
        at the new routing state — same entry indices, same intervals,
        same ``digest()``.  :meth:`verify_patched` checks exactly that.

        Returns a :class:`PatchResult` carrying the index remap and the
        affected address windows that downstream caches need for
        selective invalidation.
        """
        if self.is_view:
            raise TypeError(
                "cannot patch a buffer-backed LPM view in place: the "
                "interval arrays are borrowed (shared memory or an "
                "mmap'd checkpoint) — patch the owning table and "
                "republish its segments instead"
            )
        prefixes = self._prefixes
        old_count = len(prefixes)

        def _position(prefix: Prefix) -> int:
            """Index of ``prefix`` among current entries, or -1."""
            spot = bisect_left(prefixes, prefix)
            if spot < old_count and prefixes[spot] == prefix:
                return spot
            return -1

        updates: Dict[int, Any] = {}
        inserts: Dict[Prefix, Any] = {}
        for prefix, value in announce:
            spot = _position(prefix)
            if spot >= 0:
                updates[spot] = value
                inserts.pop(prefix, None)
            else:
                inserts[prefix] = value
        removed: Set[int] = set()
        noop_withdrawals = 0
        for prefix in withdraw:
            if prefix in inserts:
                raise ValueError(
                    f"prefix {prefix.cidr} both announced and withdrawn in "
                    "one delta batch — coalesce the event stream first"
                )
            spot = _position(prefix)
            if spot >= 0:
                if spot in updates:
                    raise ValueError(
                        f"prefix {prefix.cidr} both announced and withdrawn "
                        "in one delta batch — coalesce the event stream first"
                    )
                removed.add(spot)
            else:
                noop_withdrawals += 1

        if not inserts and not removed:
            # Value-only fast path: indices and intervals are untouched,
            # so no cache needs invalidating (memo entries store indices
            # and values are fetched through the table on use).
            if updates:
                values = list(self._values)
                for spot, value in updates.items():
                    values[spot] = value
                self._values = tuple(values)
                self._epoch += 1
                self._deltas_applied += len(updates)
            return PatchResult(
                epoch=self._epoch,
                announced=len(updates),
                withdrawn=0,
                value_updates=len(updates),
                noop_withdrawals=noop_withdrawals,
                windows=(),
                remap=None,
            )

        # 1. The final entry list: survivors (with updates folded in)
        #    merged with the sorted inserts, plus the old->new remap.
        old_values = self._values
        insert_items = sorted(inserts.items(), key=lambda kv: kv[0].sort_key())
        insert_count = len(insert_items)
        new_prefixes: List[Prefix] = []
        new_values: List[Any] = []
        remap: List[int] = [-1] * old_count
        inserted_positions: List[int] = []
        pending = 0
        for position in range(old_count):
            prefix = prefixes[position]
            while pending < insert_count and insert_items[pending][0] < prefix:
                inserted_positions.append(len(new_prefixes))
                new_prefixes.append(insert_items[pending][0])
                new_values.append(insert_items[pending][1])
                pending += 1
            if position in removed:
                continue
            remap[position] = len(new_prefixes)
            new_prefixes.append(prefix)
            new_values.append(updates.get(position, old_values[position]))
        while pending < insert_count:
            inserted_positions.append(len(new_prefixes))
            new_prefixes.append(insert_items[pending][0])
            new_values.append(insert_items[pending][1])
            pending += 1

        # 2. Withdrawn entries remap to their new longest match: the
        #    most specific remaining cover.  Covers of a prefix sort in
        #    increasing specificity, so the first cover found walking
        #    backward from the withdrawn prefix's sorted position is it.
        for position in sorted(removed):
            prefix = prefixes[position]
            probe = bisect_left(new_prefixes, prefix)
            for candidate in range(probe - 1, -1, -1):
                if new_prefixes[candidate].contains_prefix(prefix):
                    remap[position] = candidate
                    break

        # 3. One remap pass over the interval owners.  Mapping each
        #    withdrawn entry's intervals to its cover makes withdrawal a
        #    pure relabelling; the coalesce fold restores the canonical
        #    no-adjacent-equal-owners invariant where labels merged.
        starts = array("Q")
        owners = array("q")
        last_owner: Optional[int] = None
        for start, owner in zip(self._starts, self._owners):
            mapped = remap[owner] if owner >= 0 else -1
            if mapped != last_owner:
                starts.append(start)
                owners.append(mapped)
                last_owner = mapped

        # 4. Splice each inserted prefix into its address window, taking
        #    over every piece owned by a less specific entry (or by no
        #    one) and leaving nested more-specific survivors alone.
        #    Inserts are processed in sorted order, so a same-batch
        #    cover is always spliced before the specifics it contains.
        for final_index in inserted_positions:
            prefix = new_prefixes[final_index]
            low = prefix.network
            high = prefix.last_address
            left = bisect_right(starts, low) - 1
            right = bisect_right(starts, high) - 1
            piece_starts: List[int] = []
            piece_owners: List[int] = []
            if starts[left] < low:
                piece_starts.append(starts[left])
                piece_owners.append(owners[left])
            for segment in range(left, right + 1):
                segment_owner = owners[segment]
                if (
                    segment_owner < 0
                    or new_prefixes[segment_owner].length < prefix.length
                ):
                    segment_owner = final_index
                if piece_owners and piece_owners[-1] == segment_owner:
                    continue
                piece_starts.append(max(starts[segment], low))
                piece_owners.append(segment_owner)
            if high < MAX_ADDRESS:
                boundary = (
                    starts[right + 1]
                    if right + 1 < len(starts)
                    else MAX_ADDRESS + 1
                )
                if boundary > high + 1 and piece_owners[-1] != owners[right]:
                    piece_starts.append(high + 1)
                    piece_owners.append(owners[right])
            starts = (
                starts[:left] + array("Q", piece_starts) + starts[right + 1:]
            )
            owners = (
                owners[:left] + array("q", piece_owners) + owners[right + 1:]
            )

        windows = merge_windows(
            [(item[0].network, item[0].last_address) for item in insert_items]
            + [
                (prefixes[position].network, prefixes[position].last_address)
                for position in removed
            ]
        )
        self._prefixes = tuple(new_prefixes)
        self._values = tuple(new_values)
        self._starts = starts
        self._owners = owners
        self._epoch += 1
        self._deltas_applied += len(updates) + insert_count + len(removed)
        return PatchResult(
            epoch=self._epoch,
            announced=len(updates) + insert_count,
            withdrawn=len(removed),
            value_updates=len(updates),
            noop_withdrawals=noop_withdrawals,
            windows=windows,
            remap=tuple(remap),
        )

    def restore_generation(self, epoch: int, deltas_applied: int) -> None:
        """Adopt another table's generation counters.

        The serve daemon's rebuild fallback compiles a fresh table (so
        its counters restart at zero) to *replace* a long-patched one;
        carrying the old generation forward keeps epoch monotonicity —
        which is what memo safety nets and checkpoints key on.
        """
        self._epoch = epoch
        self._deltas_applied = deltas_applied

    def verify_patched(self) -> None:
        """Equivalence gate: the patched layout must be bit-identical to
        a from-scratch compile of the current entry set.

        Raises :class:`~repro.errors.SanitizeError` on any divergence —
        an incremental patch that drifts from the rebuild it promises to
        equal is silent corruption, never a recoverable condition.
        """
        rebuilt = PackedLpm(list(zip(self._prefixes, self._values)))
        if rebuilt._starts != self._starts or rebuilt._owners != self._owners:
            raise SanitizeError(
                "patched PackedLpm diverged from a from-scratch rebuild: "
                f"{len(self._starts)} intervals in the patched layout vs "
                f"{len(rebuilt._starts)} rebuilt "
                f"(epoch {self._epoch}, {len(self._prefixes)} entries)"
            )
        if rebuilt.digest() != self.digest():
            raise SanitizeError(
                "patched PackedLpm digest diverged from a from-scratch "
                f"rebuild at epoch {self._epoch}"
            )

    # -- pickling --------------------------------------------------------

    def __getstate__(self) -> _PackedState:
        return (
            self._starts, self._owners, self._prefixes, self._values,
            self._epoch, self._deltas_applied,
        )

    def __setstate__(self, state: _PackedState) -> None:
        (
            self._starts, self._owners, self._prefixes, self._values,
            self._epoch, self._deltas_applied,
        ) = state
