"""Immutable, array-packed longest-prefix-match table.

The radix trie (:class:`repro.net.radix.RadixTree`) is the right
structure for a table that changes; the clustering engine's table does
not change between routing-snapshot swaps, so it can be *compiled*: the
prefix set is flattened into the disjoint address intervals it induces
(nested prefixes project onto their most-specific covering entry), and
a lookup becomes one binary search over a flat integer array instead of
a pointer-chasing trie walk.

Layout — three parallel, flat sequences:

* ``_starts`` — ``array('Q')`` of interval start addresses, ascending;
  interval *i* covers ``[_starts[i], _starts[i+1])``.
* ``_owners`` — ``array('q')`` mapping interval *i* to the index of its
  most-specific covering entry, or ``-1`` for uncovered gaps.
* ``_prefixes`` / ``_values`` — tuples holding each entry's
  :class:`~repro.net.prefix.Prefix` and attached value.

The whole table is a handful of picklable flat objects, so it ships to
worker processes once and is shared read-only from then on.  Batch
lookups (:meth:`lookup_many`) do one ``bisect`` call — C code — per
address, which is what lets the engine outrun the per-entry trie loop.
"""

from __future__ import annotations

import hashlib
from array import array
from bisect import bisect_right
from typing import TYPE_CHECKING, Any, Iterable, List, Optional, Sequence, Tuple

from repro.net.ipv4 import MAX_ADDRESS
from repro.net.prefix import Prefix

if TYPE_CHECKING:
    from repro.bgp.table import MergedPrefixTable
    from repro.net.radix import RadixTree

#: The pickled form: the four flat slots, in declaration order.
_PackedState = Tuple["array[int]", "array[int]", Tuple[Prefix, ...], Tuple[Any, ...]]

__all__ = ["PackedLpm"]


class PackedLpm:
    """Read-only LPM table over disjoint address intervals.

    Build with :meth:`from_items`, :meth:`from_radix`, or
    :meth:`from_merged`; the constructor itself takes an already
    deduplicated, ``sort_key``-ordered entry list.
    """

    __slots__ = ("_starts", "_owners", "_prefixes", "_values")

    def __init__(self, entries: Sequence[Tuple[Prefix, Any]]) -> None:
        self._prefixes: Tuple[Prefix, ...] = tuple(p for p, _ in entries)
        self._values: Tuple[Any, ...] = tuple(v for _, v in entries)
        starts = array("Q", [0])
        owners = array("q", [-1])

        def push(addr: int, owner: int) -> None:
            if starts[-1] == addr:
                owners[-1] = owner
                if len(owners) >= 2 and owners[-2] == owner:
                    starts.pop()
                    owners.pop()
            elif owners[-1] != owner:
                starts.append(addr)
                owners.append(owner)

        prefixes = self._prefixes
        stack: List[int] = []
        for index, prefix in enumerate(prefixes):
            while stack and prefixes[stack[-1]].last_address < prefix.network:
                ended = stack.pop()
                push(prefixes[ended].last_address + 1, stack[-1] if stack else -1)
            push(prefix.network, index)
            stack.append(index)
        while stack:
            ended = stack.pop()
            boundary = prefixes[ended].last_address + 1
            if boundary <= MAX_ADDRESS:
                push(boundary, stack[-1] if stack else -1)
        self._starts = starts
        self._owners = owners

    # -- construction ----------------------------------------------------

    @classmethod
    def from_items(cls, items: Iterable[Tuple[Prefix, Any]]) -> "PackedLpm":
        """Compile from ``(prefix, value)`` pairs (later duplicates win,
        matching :meth:`RadixTree.insert` overwrite semantics)."""
        unique = dict(items)
        ordered = sorted(unique.items(), key=lambda kv: kv[0].sort_key())
        return cls(ordered)

    @classmethod
    def from_radix(cls, tree: "RadixTree") -> "PackedLpm":
        """Compile from a :class:`~repro.net.radix.RadixTree`."""
        return cls(tree.export_entries())

    @classmethod
    def from_merged(cls, table: "MergedPrefixTable") -> "PackedLpm":
        """Compile from a :class:`~repro.bgp.table.MergedPrefixTable`.

        Values are the table's :class:`~repro.bgp.table.LookupResult`
        objects, so :meth:`lookup` is a drop-in for
        ``MergedPrefixTable.lookup`` (same return type, same None-on-miss
        contract) — including as the table of a
        :class:`~repro.core.realtime.RealTimeClusterer`.
        """
        return cls(table.export_entries())

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._prefixes)

    def __bool__(self) -> bool:
        return bool(self._prefixes)

    @property
    def num_intervals(self) -> int:
        """Number of disjoint address intervals in the packed layout."""
        return len(self._starts)

    def items(self) -> Iterable[Tuple[Prefix, Any]]:
        """Iterate ``(prefix, value)`` entries in address order."""
        return zip(self._prefixes, self._values)

    def prefix(self, index: int) -> Prefix:
        """The prefix of entry ``index`` (as returned by lookups)."""
        return self._prefixes[index]

    def value(self, index: int) -> Any:
        """The value of entry ``index`` (as returned by lookups)."""
        return self._values[index]

    def digest(self) -> str:
        """Stable fingerprint of the prefix set (checkpoint safety check).

        Two tables compiled from the same prefixes — whatever the source
        structure — share a digest; values are excluded on purpose so a
        re-merged table with identical routes still matches.
        """
        hasher = hashlib.sha256()
        for prefix in self._prefixes:
            hasher.update(prefix.network.to_bytes(4, "big"))
            hasher.update(bytes((prefix.length,)))
        return hasher.hexdigest()

    # -- lookups ---------------------------------------------------------

    def match_index(self, address: int) -> int:
        """Entry index of the longest matching prefix, or -1 on miss."""
        return self._owners[bisect_right(self._starts, address) - 1]

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, Any]]:
        """Router-style lookup with the :class:`RadixTree` contract."""
        owner = self._owners[bisect_right(self._starts, address) - 1]
        if owner < 0:
            return None
        return self._prefixes[owner], self._values[owner]

    def lookup(self, address: int) -> Any:
        """Return the matched entry's value, or None on miss.

        Mirrors ``MergedPrefixTable.lookup`` when compiled via
        :meth:`from_merged`.
        """
        owner = self._owners[bisect_right(self._starts, address) - 1]
        if owner < 0:
            return None
        return self._values[owner]

    def lookup_many(self, addresses: Iterable[int]) -> List[int]:
        """Batch lookup: entry index per address (-1 on miss).

        The hot path of the engine: everything inside the comprehension
        is a C-level call, so per-address cost is one binary search with
        no Python-object churn.
        """
        starts = self._starts
        owners = self._owners
        search = bisect_right
        return [owners[search(starts, address) - 1] for address in addresses]

    # -- pickling --------------------------------------------------------

    def __getstate__(self) -> _PackedState:
        return (self._starts, self._owners, self._prefixes, self._values)

    def __setstate__(self, state: _PackedState) -> None:
        self._starts, self._owners, self._prefixes, self._values = state
