"""Sharded, batched ingestion: the engine's parallel front end.

Client addresses are hash-partitioned across N shards with a fixed
multiplicative hash (stable across processes and Python versions — no
``hash()``/``PYTHONHASHSEED`` dependence), so the same client always
lands on the same shard.  Ingestion is chunked: each chunk is split
into per-shard batches, the batches fan out to a ``multiprocessing``
pool whose workers hold the :class:`~repro.engine.packed.PackedLpm`
table (shipped once at pool start), and the returned partial
:class:`~repro.engine.state.ClusterStore` states merge back in shard
order — so results are bit-for-bit deterministic regardless of worker
scheduling, and identical to the single-pass
:func:`repro.core.clustering.cluster_log` on the same input.

With ``num_shards=1`` (or ``use_processes=False``) everything runs
inline in the calling process — same code path, no pool — which is the
mode tests use for speed and the CLI uses by default.

Parallel dispatch has two transports.  The default is the zero-copy
shared-memory hot path (:mod:`repro.engine.shm`): the table is
published once into shared segments, persistent workers attach by name
and pull :class:`~repro.engine.fastpath.PackedBatch` jobs from queues,
and per-chunk results come back as shared-array counter increments —
worker delta states cross back only on periodic syncs
(``config.shm_sync_interval`` chunks) and before any snapshot or
checkpoint.  ``use_shm=False`` selects the legacy pickle transport (a
``multiprocessing.Pool`` whose workers receive the table at start and
return partial states per chunk), kept as the portability fallback and
the benchmark baseline.

Failure containment: a dispatched chunk is merged only after *every*
shard's partial returned, so any worker failure — exception, hard
death, hang past ``dispatch_timeout`` — leaves the engine's state
exactly as it was before the chunk, the pool is terminated (no orphaned
workers), and the driver sees a single
:class:`~repro.errors.WorkerCrashError`.  Re-dispatching the same chunk
is therefore always safe; :class:`~repro.engine.supervisor.SupervisedEngine`
builds its retry/quarantine/degrade loop on that guarantee.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import pickle
import time
from dataclasses import dataclass
from typing import (
    Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple,
)

from repro.analysis import sanitize as _sanitize
from repro.core.clustering import ClusterSet
from repro.engine.fastpath import PackedBatch
from repro.engine.metrics import EngineMetrics
from repro.engine.packed import PackedLpm
from repro.engine.shm import ShmWorkerGroup
from repro.engine.state import ClusterStore, read_checkpoint, write_checkpoint
from repro.errors import InjectedFault, WorkerCrashError
from repro.faults import (
    SHM_WORKER_SITES,
    SITE_WORKER_SLOW,
    FaultInjector,
    execute_worker_directive,
)

__all__ = ["shard_of", "EngineConfig", "ShardedClusterEngine"]

#: Knuth's multiplicative constant; scrambles allocation-correlated
#: address bits so CIDR-dense logs still spread evenly across shards.
_HASH_MULTIPLIER = 0x9E3779B1
_HASH_MASK = 0xFFFFFFFF

#: One request on the wire: (client address, url, response bytes).
Triple = Tuple[int, str, int]


def shard_of(address: int, num_shards: int) -> int:
    """Deterministic shard assignment for a client address."""
    return ((address * _HASH_MULTIPLIER) & _HASH_MASK) % num_shards


@dataclass
class EngineConfig:
    """Tunables for one engine run.

    ``dispatch_timeout`` bounds how long one dispatched chunk may take
    end to end; a pool that blows past it is presumed dead (a worker
    killed mid-task leaves ``Pool.map`` waiting forever — the hang this
    PR's issue describes) and the dispatch fails with
    :class:`~repro.errors.WorkerCrashError` instead.  ``None`` waits
    forever, which is only safe without fault injection and with
    trustworthy workers.

    ``use_shm`` selects the parallel transport: ``None`` (auto, the
    default) uses shared memory whenever dispatch is parallel at all,
    ``False`` forces the legacy pickle pool, ``True`` documents intent
    (it cannot make a single-shard or inline run parallel).
    ``shm_sync_interval`` is how many dispatched chunks may ride on
    worker-local delta state before the driver pulls it back; smaller
    values shrink the replay window after a worker crash, larger ones
    amortise the sync pickling better.
    """

    num_shards: int = 1
    chunk_size: int = 8192
    use_processes: bool = True
    name: str = "engine"
    dispatch_timeout: Optional[float] = None
    use_shm: Optional[bool] = None
    shm_sync_interval: int = 32

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1: {self.num_shards!r}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1: {self.chunk_size!r}")
        if self.dispatch_timeout is not None and self.dispatch_timeout <= 0:
            raise ValueError(
                f"dispatch_timeout must be positive: {self.dispatch_timeout!r}"
            )
        if self.shm_sync_interval < 1:
            raise ValueError(
                f"shm_sync_interval must be >= 1: {self.shm_sync_interval!r}"
            )


# -- worker side ----------------------------------------------------------

_WORKER_TABLE: Optional[PackedLpm] = None

#: A worker job: the shard's batch — a packed flat-buffer
#: :class:`~repro.engine.fastpath.PackedBatch`, not a tuple list —
#: plus an optional armed fault directive (``(shard, site, arg)``)
#: the driver decided on dispatch.
_WorkerJob = Tuple[PackedBatch, Optional[Tuple[int, str, float]]]

#: What a worker sends back: its partial state, the memo counters its
#: process-local :class:`~repro.engine.fastpath.MemoizedLookup`
#: accumulated over the batch ((0, 0, 0) without a memo), and the
#: drained :mod:`repro.analysis.sanitize` counters (all zero unless
#: ``REPRO_SANITIZE`` armed the worker's invariant checks).
_WorkerResult = Tuple[ClusterStore, Tuple[int, int, int], Tuple[int, int, int, int]]

#: The anticipated ways a pool round-trip fails: injected faults and
#: assertion trips inside worker code, pipe/pickle transport failures
#: (a worker that hard-exits snaps the result pipe), result-encoding
#: failures, and the data-shape errors a poisoned batch can raise in
#: ``apply_packed``.  Kept concrete so anything *outside* this set
#: still terminates the pool but surfaces unwrapped instead of being
#: mislabelled a retryable worker crash.
_WORKER_FAILURE_ERRORS = (
    InjectedFault,
    AssertionError,
    OSError,
    EOFError,
    pickle.PickleError,
    multiprocessing.pool.MaybeEncodingError,
    ValueError,
    TypeError,
    KeyError,
    IndexError,
    AttributeError,
    ArithmeticError,
    MemoryError,
    RuntimeError,
)


def _init_worker(table: PackedLpm) -> None:
    global _WORKER_TABLE
    _WORKER_TABLE = table


def _process_batch(job: _WorkerJob) -> _WorkerResult:
    assert _WORKER_TABLE is not None, "worker pool not initialised"
    batch, directive = job
    if directive is not None:
        execute_worker_directive(directive)
    store = ClusterStore()
    store.apply_packed(batch, _WORKER_TABLE)
    take = getattr(_WORKER_TABLE, "take_memo_stats", None)
    memo_stats = take() if take is not None else (0, 0, 0)
    return store, memo_stats, _sanitize.take_stats()


# -- driver side ----------------------------------------------------------


class ShardedClusterEngine:
    """Streaming clustering over a packed table with sharded workers.

    Usage::

        packed = PackedLpm.from_merged(merged_table)
        with ShardedClusterEngine(packed, EngineConfig(num_shards=4)) as eng:
            eng.ingest(entries)           # any iterable of LogEntry
            clusters = eng.snapshot()     # a plain ClusterSet

    The engine may be fed any number of times; ``snapshot`` and
    ``checkpoint`` can be taken between feeds.
    """

    def __init__(
        self,
        table: PackedLpm,
        config: Optional[EngineConfig] = None,
        metrics: Optional[EngineMetrics] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.table = table
        self.config = config or EngineConfig()
        self.metrics = metrics or EngineMetrics(self.config.num_shards)
        #: Optional fault injector (chaos testing); ``None`` — the
        #: default — costs one comparison per dispatched chunk.
        self.injector = injector
        self._stores: List[ClusterStore] = [
            ClusterStore() for _ in range(self.config.num_shards)
        ]
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._shm_group: Optional[ShmWorkerGroup] = None
        #: Chunks dispatched over shm and acked but not yet pulled back
        #: in a sync: the replay buffer.  If the worker group dies, the
        #: driver re-applies these inline — per-shard order preserved,
        #: so the merged result is identical — before surfacing the
        #: failure.
        self._shm_pending: List[List[PackedBatch]] = []
        #: Checkpoint metadata this engine was restored from ({} when the
        #: engine started fresh); see :meth:`resume`.
        self.resume_meta: Dict[str, Any] = {}

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "ShardedClusterEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        # On an exception the pool may hold hung or half-dead workers:
        # a graceful close()+join() would wait on them forever, which is
        # exactly the orphaned-worker leak this guards against.
        self.close(terminate=exc_info and exc_info[0] is not None)

    def close(self, terminate: bool = False) -> None:
        """Shut workers down (idempotent) — shm group and legacy pool.

        ``terminate`` kills workers instead of draining them — the only
        safe shutdown after a dispatch failure, when workers may be
        wedged mid-task.  Either way no acked chunk is lost: a graceful
        close syncs worker delta states back first, a terminating close
        replays the un-synced chunks inline from the driver's buffer.
        """
        if self._shm_group is not None:
            if terminate:
                self.release_shm()
            else:
                self._sync_shm()
                group, self._shm_group = self._shm_group, None
                if group is not None:
                    group.shutdown()
        if self._pool is not None:
            if terminate:
                self._pool.terminate()
            else:
                self._pool.close()
            self._pool.join()
            self._pool = None

    def terminate_pool(self) -> None:
        """Kill and discard the worker pool; the next dispatch builds a
        fresh one.  Used after a worker crash/hang, and counted in
        ``metrics.worker_restarts``."""
        if self._pool is not None:
            self.close(terminate=True)
            self.metrics.record_worker_restart()

    @property
    def _parallel(self) -> bool:
        return self.config.num_shards > 1 and self.config.use_processes

    @property
    def _use_shm(self) -> bool:
        """Shared-memory transport active?  Auto-on for any parallel
        dispatch unless the config opted out (``use_shm=False``)."""
        return self._parallel and self.config.use_shm is not False

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            self._pool = multiprocessing.Pool(
                processes=self.config.num_shards,
                initializer=_init_worker,
                initargs=(self.table,),
            )
        return self._pool

    # -- ingestion -------------------------------------------------------

    def ingest(self, entries: Iterable[Any]) -> int:
        """Consume log entries (anything with client/url/size attributes).

        Entries are chunked to ``config.chunk_size``, each chunk is
        partitioned by client shard and dispatched; returns the number
        of entries ingested in this call.
        """
        total = 0
        for chunk in _chunks(entries, self.config.chunk_size):
            total += self._ingest_chunk(chunk)
        return total

    def ingest_triples(self, triples: Iterable[Triple]) -> int:
        """Like :meth:`ingest` for pre-projected request triples."""
        total = 0
        for chunk in _chunks(triples, self.config.chunk_size):
            total += self._dispatch(chunk)
        return total

    def _ingest_chunk(self, chunk: Sequence[Any]) -> int:
        return self._dispatch(
            [(entry.client, entry.url, entry.size) for entry in chunk]
        )

    def apply_chunk(self, triples: Sequence[Triple]) -> int:
        """Apply one chunk of triples, all-or-nothing.

        This is the engine's atomic unit of progress: on success every
        shard's partial has merged; on any failure — a worker exception,
        a dead worker, a hang past ``config.dispatch_timeout`` — *no*
        state was merged, the pool has been terminated, and the call
        raises :class:`WorkerCrashError`.  Re-applying the same chunk
        after a failure can therefore never double-count.
        """
        return self._dispatch(triples)

    def _dispatch(self, triples: Sequence[Triple]) -> int:
        num_shards = self.config.num_shards
        directive = None
        if self.injector is not None:
            directive = self.injector.worker_directive(
                num_shards,
                sites=SHM_WORKER_SITES if self._use_shm else None,
            )
        began = time.perf_counter()
        if num_shards == 1 or not self._parallel:
            if directive is not None:
                self._execute_inline_directive(directive)
            if num_shards == 1:
                self._stores[0].apply_batch(triples, self.table)
                counts = [len(triples)]
            else:
                batches = self._partition(triples, num_shards)
                counts = [len(batch) for batch in batches]
                for shard, batch in enumerate(batches):
                    self._stores[shard].apply_batch(batch, self.table)
            self._drain_inline_memo_stats()
        else:
            # Packed transport: each shard's work crosses the process
            # boundary as flat address/size buffers plus an interned
            # URL table (PackedBatch), not a pickled tuple list.
            packed_batches = PackedBatch.partition(triples, num_shards)
            counts = [len(batch) for batch in packed_batches]
            if self._use_shm:
                self._dispatch_shm(packed_batches, directive)
            else:
                jobs: List[_WorkerJob] = [
                    (
                        batch,
                        directive
                        if directive is not None and directive[0] == shard
                        else None,
                    )
                    for shard, batch in enumerate(packed_batches)
                ]
                results = self._dispatch_to_pool(jobs)
                for shard, (partial, memo_stats, sanitize_stats) in enumerate(
                    results
                ):
                    self._stores[shard].merge(partial)
                    self.metrics.record_memo(*memo_stats)
                    self.metrics.record_sanitize(*sanitize_stats)
        elapsed = time.perf_counter() - began
        self.metrics.record_batch(counts, elapsed, lookups=len(triples))
        return len(triples)

    # -- shared-memory transport -----------------------------------------

    def _ensure_shm_group(self) -> ShmWorkerGroup:
        """The live worker group, republished if the table moved on.

        Staleness (an ``apply_delta`` bumped the table's epoch since
        publication) is checked before *every* dispatch: the old
        generation's delta state syncs back, its segments unlink, and a
        fresh generation publishes the patched table — workers can never
        resolve a batch against superseded buffers.
        """
        group = self._shm_group
        if group is not None and group.is_stale(self.table):
            self._sync_shm()
            group, self._shm_group = self._shm_group, None
            if group is not None:
                group.shutdown()
            group = None
        if group is None:
            group = ShmWorkerGroup(
                self.table,
                self.config.num_shards,
                dispatch_timeout=self.config.dispatch_timeout,
                metrics=self.metrics,
            )
            self._shm_group = group
        return group

    def _dispatch_shm(
        self,
        batches: List[PackedBatch],
        directive: Optional[Tuple[int, str, float]],
    ) -> None:
        """One chunk over the persistent shm workers, all-or-nothing.

        On success the chunk is acked by every worker and buffered for
        replay until the next sync pulls the delta states back.  On any
        failure the group is torn down, the buffered chunks re-apply
        inline (so no acked work is lost), and the dispatch raises
        :class:`WorkerCrashError` with nothing merged — the same atomic
        contract as the pool path.
        """
        try:
            group = self._ensure_shm_group()
            stats = group.dispatch(batches, directive)
        except WorkerCrashError:
            self._recover_shm()
            raise
        except _WORKER_FAILURE_ERRORS as exc:
            self._recover_shm()
            raise WorkerCrashError(
                f"shm dispatch failed ({exc!r}) — worker group torn down, "
                "chunk not applied"
            ) from exc
        except BaseException:
            # Unknown failures (including KeyboardInterrupt) still tear
            # the group down — workers may be wedged and segments must
            # not leak — but surface unwrapped.
            self._recover_shm()
            raise
        self._shm_pending.append(batches)
        self.metrics.record_memo(*stats["memo"])
        self.metrics.record_sanitize(*stats["sanitize"])
        if len(self._shm_pending) >= self.config.shm_sync_interval:
            self._sync_shm()

    def _sync_shm(self) -> None:
        """Pull worker delta states into the authoritative stores.

        After a successful sync the replay buffer is empty — everything
        acked so far is owned by the driver again.  A *failed* sync
        recovers the same way a failed dispatch does: tear down, replay
        the buffer inline; state stays exactly-once either way, so no
        error escapes.
        """
        group = self._shm_group
        if group is None:
            return
        try:
            stores, stats = group.sync()
        except (WorkerCrashError,) + _WORKER_FAILURE_ERRORS:
            self._recover_shm()
            return
        except BaseException:
            self._recover_shm()
            raise
        for shard, delta in enumerate(stores):
            if delta is not None:
                self._stores[shard].merge(delta)
        self._shm_pending.clear()
        self.metrics.record_memo(*stats["memo"])
        self.metrics.record_sanitize(*stats["sanitize"])

    def _recover_shm(self, count_restart: bool = True) -> None:
        """Tear the worker group down and replay its un-synced chunks.

        Worker-local delta stores die with the group (they may hold a
        partial application of the failing chunk), so every *acked*
        chunk since the last sync re-applies inline from the driver's
        buffer — per-shard order preserved, cluster merges commutative,
        result identical.  The memo/sanitize counters the replay
        generates driver-side are drained and discarded: the workers
        already reported those chunks' counters through the shared
        accumulator.
        """
        group, self._shm_group = self._shm_group, None
        if group is not None:
            group.shutdown(kill=True)
            if count_restart:
                self.metrics.record_worker_restart()
        if self._shm_pending:
            pending, self._shm_pending = self._shm_pending, []
            for batches in pending:
                for shard, batch in enumerate(batches):
                    self._stores[shard].apply_packed(batch, self.table)
            take = getattr(self.table, "take_memo_stats", None)
            if take is not None:
                take()
            if _sanitize.is_enabled():
                _sanitize.take_stats()

    def release_shm(self) -> None:
        """Shut the shm worker group down hard, keeping every acked
        chunk (replayed inline from the buffer) and unlinking every
        segment.  Idempotent; the quarantine/degrade paths call this so
        a failed run can never leak shared memory."""
        self._recover_shm(count_restart=False)

    def _drain_inline_memo_stats(self) -> None:
        """Move this process's memo counters into the metrics (inline
        ingestion resolves against ``self.table`` directly, so any
        :class:`~repro.engine.fastpath.MemoizedLookup` counts here)."""
        take = getattr(self.table, "take_memo_stats", None)
        if take is not None:
            self.metrics.record_memo(*take())
        if _sanitize.is_enabled():
            self.metrics.record_sanitize(*_sanitize.take_stats())

    @staticmethod
    def _partition(
        triples: Sequence[Triple], num_shards: int
    ) -> List[List[Triple]]:
        batches: List[List[Triple]] = [[] for _ in range(num_shards)]
        for triple in triples:
            batches[shard_of(triple[0], num_shards)].append(triple)
        return batches

    def _dispatch_to_pool(self, jobs: List[_WorkerJob]) -> List[_WorkerResult]:
        """One pool round-trip with dead/hung-worker containment.

        ``map_async`` + a bounded ``get`` instead of ``map``: a worker
        that hard-exits leaves its task permanently incomplete, so a
        plain ``map`` would block forever.  Every failure path
        terminates the pool (workers may be wedged) before raising.
        """
        pool = self._ensure_pool()
        pending = pool.map_async(_process_batch, jobs)
        try:
            return pending.get(self.config.dispatch_timeout)
        except multiprocessing.TimeoutError as exc:
            self.terminate_pool()
            raise WorkerCrashError(
                f"chunk dispatch exceeded dispatch_timeout="
                f"{self.config.dispatch_timeout}s; a worker is hung or "
                "died mid-task — pool terminated, chunk not applied"
            ) from exc
        except _WORKER_FAILURE_ERRORS as exc:
            self.terminate_pool()
            raise WorkerCrashError(
                f"worker failed while processing a chunk ({exc!r}) — "
                "pool terminated, chunk not applied"
            ) from exc
        except BaseException:
            # Anything outside the anticipated failure set (including
            # KeyboardInterrupt) still terminates the possibly-wedged
            # pool, but surfaces unwrapped: mislabelling an unknown bug
            # as a worker crash would send the supervisor down the
            # retry/quarantine path for something retries cannot fix.
            self.terminate_pool()
            raise

    def _execute_inline_directive(
        self, directive: Tuple[int, str, float]
    ) -> None:
        """Honour an armed worker fault without a pool.

        Inline mode cannot survive a literal ``os._exit``, so
        ``worker.die`` degrades to the same clean failure as
        ``worker.crash`` — raised *before* any state is touched, keeping
        the chunk atomic.  ``worker.slow`` just sleeps.
        """
        _, site, arg = directive
        if site == SITE_WORKER_SLOW:
            time.sleep(arg)
            return
        raise WorkerCrashError(
            f"injected inline worker fault ({site}) — chunk not applied"
        )

    # -- adaptation ------------------------------------------------------

    def update_table(self, table: PackedLpm) -> None:
        """Hot-swap the routing table (``core.realtime.update_table``
        semantics): accumulated assignments persist; every later batch
        resolves against the new table.  The worker pool restarts so
        workers pick up the new table."""
        self.close()
        self.table = table
        self.metrics.record_table_swap()

    # -- observation -----------------------------------------------------

    def snapshot(self, name: Optional[str] = None) -> ClusterSet:
        """Merge all shards into one :class:`ClusterSet` (non-destructive)."""
        self._sync_shm()
        combined = ClusterStore()
        for store in self._stores:
            combined.merge(store.copy())
        return combined.snapshot(
            name=name if name is not None else self.config.name,
            method="network-aware",
        )

    @property
    def entries_ingested(self) -> int:
        self._sync_shm()
        return sum(store.entries_applied for store in self._stores)

    # -- persistence -----------------------------------------------------

    def checkpoint(
        self, path: str, extra_meta: Optional[Dict[str, Any]] = None
    ) -> None:
        """Write all shard states plus run metadata to ``path``.

        ``extra_meta`` entries are merged into the checkpoint's meta
        dict; the CLI uses this to record which log was being ingested
        and how far through it the run had got, so a resumed run can
        skip the already-counted prefix.
        """
        self._sync_shm()
        meta = {
            "num_shards": self.config.num_shards,
            "chunk_size": self.config.chunk_size,
            "name": self.config.name,
            "entries_ingested": self.entries_ingested,
        }
        if extra_meta:
            meta.update(extra_meta)
        write_checkpoint(
            path,
            self._stores,
            table_digest=self.table.digest(),
            meta=meta,
            routing_epoch=int(getattr(self.table, "epoch", 0)),
            deltas_applied=int(getattr(self.table, "deltas_applied", 0)),
            table=self.table,
        )
        self.metrics.record_checkpoint()
        if _sanitize.is_enabled():
            # The write itself performed (and counted) a read-back.
            self.metrics.record_sanitize(*_sanitize.take_stats())

    @classmethod
    def resume(
        cls,
        path: str,
        table: PackedLpm,
        config: Optional[EngineConfig] = None,
        metrics: Optional[EngineMetrics] = None,
        verify_table: bool = True,
        injector: Optional[FaultInjector] = None,
    ) -> "ShardedClusterEngine":
        """Rebuild an engine from a checkpoint and keep ingesting.

        With ``verify_table`` the checkpoint must have been taken
        against a table with the same prefix set (digest match).  A
        different shard count than the checkpoint's is allowed — shard
        states merge into the new layout without changing aggregate
        results, since all statistics are order- and
        placement-independent.  Note the remapping is ``old_shard %
        num_shards``, not a re-partition by :func:`shard_of`: after a
        reshard resume the *per-shard attribution* of restored state is
        arbitrary (restored clients need not live on the shard
        ``shard_of`` would pick), so only aggregate snapshots — not any
        future placement-dependent accounting — should be read off the
        restored stores.  Shard-skew metrics are unaffected either way:
        they are computed from post-resume batch sizes only.

        The checkpoint's meta dict is kept on the returned engine as
        ``resume_meta``.
        """
        digest = table.digest() if verify_table else ""
        stores, meta = read_checkpoint(path, table_digest=digest)
        if config is None:
            config = EngineConfig(
                num_shards=int(meta.get("num_shards", len(stores)) or 1),
                chunk_size=int(meta.get("chunk_size", 8192) or 8192),
                name=str(meta.get("name", "engine")),
            )
        engine = cls(table, config, metrics, injector=injector)
        if len(stores) == config.num_shards:
            engine._stores = stores
        else:
            for shard, store in enumerate(stores):
                engine._stores[shard % config.num_shards].merge(store)
        engine.resume_meta = dict(meta)
        return engine


def _chunks(items: Iterable[Any], size: int) -> Iterator[List[Any]]:
    """Yield lists of up to ``size`` items from any iterable."""
    chunk: List[Any] = []
    append = chunk.append
    for item in items:
        append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
            append = chunk.append
    if chunk:
        yield chunk
