"""Sharded, batched ingestion: the engine's parallel front end.

Client addresses are hash-partitioned across N shards with a fixed
multiplicative hash (stable across processes and Python versions — no
``hash()``/``PYTHONHASHSEED`` dependence), so the same client always
lands on the same shard.  Ingestion is chunked: each chunk is split
into per-shard batches, the batches fan out to a ``multiprocessing``
pool whose workers hold the :class:`~repro.engine.packed.PackedLpm`
table (shipped once at pool start), and the returned partial
:class:`~repro.engine.state.ClusterStore` states merge back in shard
order — so results are bit-for-bit deterministic regardless of worker
scheduling, and identical to the single-pass
:func:`repro.core.clustering.cluster_log` on the same input.

With ``num_shards=1`` (or ``use_processes=False``) everything runs
inline in the calling process — same code path, no pool — which is the
mode tests use for speed and the CLI uses by default.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import (
    Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple,
)

from repro.core.clustering import ClusterSet
from repro.engine.metrics import EngineMetrics
from repro.engine.packed import PackedLpm
from repro.engine.state import ClusterStore, read_checkpoint, write_checkpoint

__all__ = ["shard_of", "EngineConfig", "ShardedClusterEngine"]

#: Knuth's multiplicative constant; scrambles allocation-correlated
#: address bits so CIDR-dense logs still spread evenly across shards.
_HASH_MULTIPLIER = 0x9E3779B1
_HASH_MASK = 0xFFFFFFFF

#: One request on the wire: (client address, url, response bytes).
Triple = Tuple[int, str, int]


def shard_of(address: int, num_shards: int) -> int:
    """Deterministic shard assignment for a client address."""
    return ((address * _HASH_MULTIPLIER) & _HASH_MASK) % num_shards


@dataclass
class EngineConfig:
    """Tunables for one engine run."""

    num_shards: int = 1
    chunk_size: int = 8192
    use_processes: bool = True
    name: str = "engine"

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1: {self.num_shards!r}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1: {self.chunk_size!r}")


# -- worker side ----------------------------------------------------------

_WORKER_TABLE: Optional[PackedLpm] = None


def _init_worker(table: PackedLpm) -> None:
    global _WORKER_TABLE
    _WORKER_TABLE = table


def _process_batch(triples: Sequence[Triple]) -> ClusterStore:
    assert _WORKER_TABLE is not None, "worker pool not initialised"
    store = ClusterStore()
    store.apply_batch(triples, _WORKER_TABLE)
    return store


# -- driver side ----------------------------------------------------------


class ShardedClusterEngine:
    """Streaming clustering over a packed table with sharded workers.

    Usage::

        packed = PackedLpm.from_merged(merged_table)
        with ShardedClusterEngine(packed, EngineConfig(num_shards=4)) as eng:
            eng.ingest(entries)           # any iterable of LogEntry
            clusters = eng.snapshot()     # a plain ClusterSet

    The engine may be fed any number of times; ``snapshot`` and
    ``checkpoint`` can be taken between feeds.
    """

    def __init__(
        self,
        table: PackedLpm,
        config: Optional[EngineConfig] = None,
        metrics: Optional[EngineMetrics] = None,
    ) -> None:
        self.table = table
        self.config = config or EngineConfig()
        self.metrics = metrics or EngineMetrics(self.config.num_shards)
        self._stores: List[ClusterStore] = [
            ClusterStore() for _ in range(self.config.num_shards)
        ]
        self._pool: Optional[multiprocessing.pool.Pool] = None
        #: Checkpoint metadata this engine was restored from ({} when the
        #: engine started fresh); see :meth:`resume`.
        self.resume_meta: Dict[str, Any] = {}

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "ShardedClusterEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    @property
    def _parallel(self) -> bool:
        return self.config.num_shards > 1 and self.config.use_processes

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            self._pool = multiprocessing.Pool(
                processes=self.config.num_shards,
                initializer=_init_worker,
                initargs=(self.table,),
            )
        return self._pool

    # -- ingestion -------------------------------------------------------

    def ingest(self, entries: Iterable[Any]) -> int:
        """Consume log entries (anything with client/url/size attributes).

        Entries are chunked to ``config.chunk_size``, each chunk is
        partitioned by client shard and dispatched; returns the number
        of entries ingested in this call.
        """
        total = 0
        for chunk in _chunks(entries, self.config.chunk_size):
            total += self._ingest_chunk(chunk)
        return total

    def ingest_triples(self, triples: Iterable[Triple]) -> int:
        """Like :meth:`ingest` for pre-projected request triples."""
        total = 0
        for chunk in _chunks(triples, self.config.chunk_size):
            total += self._dispatch(chunk)
        return total

    def _ingest_chunk(self, chunk: Sequence[Any]) -> int:
        return self._dispatch(
            [(entry.client, entry.url, entry.size) for entry in chunk]
        )

    def _dispatch(self, triples: Sequence[Triple]) -> int:
        num_shards = self.config.num_shards
        began = time.perf_counter()
        if num_shards == 1:
            self._stores[0].apply_batch(triples, self.table)
            counts = [len(triples)]
        else:
            batches: List[List[Triple]] = [[] for _ in range(num_shards)]
            for triple in triples:
                batches[shard_of(triple[0], num_shards)].append(triple)
            counts = [len(batch) for batch in batches]
            if self._parallel:
                partials = self._ensure_pool().map(_process_batch, batches)
                for shard, partial in enumerate(partials):
                    self._stores[shard].merge(partial)
            else:
                for shard, batch in enumerate(batches):
                    self._stores[shard].apply_batch(batch, self.table)
        elapsed = time.perf_counter() - began
        self.metrics.record_batch(counts, elapsed, lookups=len(triples))
        return len(triples)

    # -- adaptation ------------------------------------------------------

    def update_table(self, table: PackedLpm) -> None:
        """Hot-swap the routing table (``core.realtime.update_table``
        semantics): accumulated assignments persist; every later batch
        resolves against the new table.  The worker pool restarts so
        workers pick up the new table."""
        self.close()
        self.table = table
        self.metrics.record_table_swap()

    # -- observation -----------------------------------------------------

    def snapshot(self, name: Optional[str] = None) -> ClusterSet:
        """Merge all shards into one :class:`ClusterSet` (non-destructive)."""
        combined = ClusterStore()
        for store in self._stores:
            combined.merge(store.copy())
        return combined.snapshot(
            name=name if name is not None else self.config.name,
            method="network-aware",
        )

    @property
    def entries_ingested(self) -> int:
        return sum(store.entries_applied for store in self._stores)

    # -- persistence -----------------------------------------------------

    def checkpoint(
        self, path: str, extra_meta: Optional[Dict[str, Any]] = None
    ) -> None:
        """Write all shard states plus run metadata to ``path``.

        ``extra_meta`` entries are merged into the checkpoint's meta
        dict; the CLI uses this to record which log was being ingested
        and how far through it the run had got, so a resumed run can
        skip the already-counted prefix.
        """
        meta = {
            "num_shards": self.config.num_shards,
            "chunk_size": self.config.chunk_size,
            "name": self.config.name,
            "entries_ingested": self.entries_ingested,
        }
        if extra_meta:
            meta.update(extra_meta)
        write_checkpoint(
            path, self._stores, table_digest=self.table.digest(), meta=meta
        )
        self.metrics.record_checkpoint()

    @classmethod
    def resume(
        cls,
        path: str,
        table: PackedLpm,
        config: Optional[EngineConfig] = None,
        metrics: Optional[EngineMetrics] = None,
        verify_table: bool = True,
    ) -> "ShardedClusterEngine":
        """Rebuild an engine from a checkpoint and keep ingesting.

        With ``verify_table`` the checkpoint must have been taken
        against a table with the same prefix set (digest match).  A
        different shard count than the checkpoint's is allowed — shard
        states merge into the new layout without changing aggregate
        results, since all statistics are order- and
        placement-independent.  Note the remapping is ``old_shard %
        num_shards``, not a re-partition by :func:`shard_of`: after a
        reshard resume the *per-shard attribution* of restored state is
        arbitrary (restored clients need not live on the shard
        ``shard_of`` would pick), so only aggregate snapshots — not any
        future placement-dependent accounting — should be read off the
        restored stores.  Shard-skew metrics are unaffected either way:
        they are computed from post-resume batch sizes only.

        The checkpoint's meta dict is kept on the returned engine as
        ``resume_meta``.
        """
        digest = table.digest() if verify_table else ""
        stores, meta = read_checkpoint(path, table_digest=digest)
        if config is None:
            config = EngineConfig(
                num_shards=int(meta.get("num_shards", len(stores)) or 1),
                chunk_size=int(meta.get("chunk_size", 8192) or 8192),
                name=str(meta.get("name", "engine")),
            )
        engine = cls(table, config, metrics)
        if len(stores) == config.num_shards:
            engine._stores = stores
        else:
            for shard, store in enumerate(stores):
                engine._stores[shard % config.num_shards].merge(store)
        engine.resume_meta = dict(meta)
        return engine


def _chunks(items: Iterable[Any], size: int) -> Iterator[List[Any]]:
    """Yield lists of up to ``size`` items from any iterable."""
    chunk: List[Any] = []
    append = chunk.append
    for item in items:
        append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
            append = chunk.append
    if chunk:
        yield chunk
