"""Zero-copy shared-memory dispatch: one table, many workers, no pickles.

The packed LPM layouts are flat ``array('Q')``/``array('q')`` buffers,
so instead of pickling the whole table into every pool worker (and a
partial :class:`~repro.engine.state.ClusterStore` back per chunk), the
driver *publishes* the table once into ``multiprocessing.shared_memory``
segments and persistent workers attach to it by name:

* :class:`SharedLpm` places the interval arrays (and the stride-16
  front, for :class:`~repro.engine.fastpath.StrideLpm`) into two
  segments — raw buffers plus a once-pickled blob for the Python-object
  entries — and :func:`attach_shared_table` rebuilds a zero-copy
  ``memoryview``-backed table around them in the worker.  Only a
  :class:`SharedLpmHandle` (segment names, digest, generation) ever
  crosses the process boundary.
* :class:`ShmWorkerGroup` runs one persistent worker process per shard.
  Jobs (:class:`~repro.engine.fastpath.PackedBatch` — URL interning
  stays message-passed) arrive on a per-worker ``SimpleQueue``; workers
  fold results into a process-local delta store and write per-shard
  count/byte accumulators into a shared flat array, so per-chunk the
  driver only reads counters and a tiny ack — no ``_WorkerResult``
  unpickling.  Delta stores cross back only on an explicit
  :meth:`ShmWorkerGroup.sync` (every ``shm_sync_interval`` chunks, and
  before any snapshot/checkpoint/shutdown).

Generation protocol: every publication carries a process-unique
generation number, written into slot 0 of the accumulator segment.  A
worker re-checks it against its attached generation before every batch
and refuses (``stale`` ack) rather than resolve against superseded
buffers; the driver republishes — sync, unlink, fresh segments, fresh
workers — whenever the live table's ``epoch``/``deltas_applied`` moved
(an ``apply_delta`` patch from :mod:`repro.serve`).

Crash story: segments are unlinked in ``finally`` blocks on every
shutdown path, an :mod:`atexit` guard reclaims anything a crashed
driver left registered, and stale segments discovered at publish time
(a previous run died hard) are unlinked and counted in the
``shm_unlink_failures`` metric.  Workers attach with the
resource-tracker registration cancelled, so the creator remains the one
owner the tracker knows about.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
import time
from array import array
from dataclasses import dataclass
from multiprocessing import Pipe, Process, SimpleQueue, resource_tracker
from multiprocessing.connection import Connection, wait as _connection_wait
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis import sanitize as _sanitize
from repro.engine.fastpath import (
    MemoizedLookup,
    PackedBatch,
    StrideLpm,
    build_table_view,
)
from repro.engine.packed import PackedLpm
from repro.engine.state import ClusterStore
from repro.errors import SanitizeError, WorkerCrashError
from repro.faults import SITE_SHM_WORKER_CRASH, execute_worker_directive

__all__ = [
    "SharedLpm",
    "SharedLpmHandle",
    "ShmWorkerGroup",
    "attach_shared_table",
]

#: Lifecycle specs for ``repro-lint --flow`` (literal dicts, read by the
#: analyzer via ``ast.literal_eval`` — never imported).  Segments minted
#: through :func:`_create_segment` must reach :func:`_release_segment`
#: on every path, and shared-table dispatch anywhere in the engine must
#: be dominated by a staleness check since the last republish point.
FLOW_SPECS = (
    {
        "rule": "resource-leak",
        "resource": "shm segment",
        "acquire": ("_create_segment",),
        "release_funcs": ("_release_segment",),
        "tuple_result": True,
    },
    {
        "rule": "stale-epoch-read",
        "reads": ("dispatch",),
        "guards": ("is_stale", "_ensure_shm_group"),
        "invalidators": ("apply_delta",),
        "modules": ("repro.engine",),
    },
    # Driver-side exactly-once protocol (checked interprocedurally by
    # ``repro-lint --flow --inter``): every dispatch re-establishes
    # freshness since the last delta, counter folds are separated by an
    # ack round, and an unlinked group never sees another dispatch
    # without a republish in between.
    {
        "rule": "epoch-protocol",
        "reads": ("dispatch",),
        "guards": ("is_stale", "_ensure_shm_group"),
        "invalidators": ("apply_delta",),
        "folds": ("_drain_counters",),
        "refresh": ("_await_acks",),
        "unlink": ("shutdown", "release_shm"),
        "dispatch": ("dispatch",),
        "republish": ("ShmWorkerGroup", "_ensure_shm_group"),
        "modules": ("repro.engine",),
    },
    # Worker-side half of the protocol: a batch applies against the
    # attached table only after the generation check since the last
    # (re-)attach; the guard is the comparison against ``generation``.
    {
        "rule": "epoch-protocol",
        "reads": ("apply_packed",),
        "guards": ("generation",),
        "invalidators": ("attach_shared_table",),
        "modules": ("repro.engine.shm",),
    },
)

#: Per-shard slots in the shared accumulator array, in order.  Workers
#: add to their own shard's slice only (single writer per slot), the
#: driver reads monotonic totals and folds deltas into the metrics.
(
    _C_ENTRIES,
    _C_BYTES,
    _C_BATCHES,
    _C_MEMO_HITS,
    _C_MEMO_MISSES,
    _C_MEMO_EVICTIONS,
    _C_SAN_BATCH,
    _C_SAN_XCHK,
    _C_SAN_READBACK,
    _C_SAN_RNG,
) = range(10)
_COUNTERS_PER_SHARD = 10

#: Slot 0 of the accumulator holds the published generation; shard
#: counters start at slot 1.
_ACC_GENERATION_SLOT = 0

#: Grace period for a worker to exit after a ``stop`` job before it is
#: terminated, and for a terminated worker to die before ``kill``.
_JOIN_GRACE_SECONDS = 5.0

#: Process-unique generation numbers for successive publications.
_GENERATION_COUNTER = itertools.count(1)

#: Segment-name sequence; names are ``repro-<pid>-<seq><tag>`` with tag
#: ``t`` (raw interval/stride buffers), ``e`` (pickled entries blob) or
#: ``a`` (accumulator) — short enough for the POSIX shm name limits.
_SEGMENT_COUNTER = itertools.count(1)

#: Driver-side registry of live (created, not yet unlinked) segments,
#: reclaimed by the atexit guard if a run dies without cleanup.
_LIVE_SEGMENTS: Dict[str, SharedMemory] = {}

#: Publication cache: ``(id(base), epoch, deltas_applied)`` →
#: ``(base, entries_blob, digest)``.  Re-publishing an unchanged table
#: (every benchmark repetition; every group rebuilt after quarantine)
#: skips re-pickling the entry columns and re-hashing the digest.  The
#: strong ``base`` reference both pins the id against reuse and is
#: compared identically on lookup; FIFO-capped since publications are
#: rare.  (``PackedLpm`` carries ``__slots__`` without ``__weakref__``,
#: so a ``WeakKeyDictionary`` is not an option.)
_PUBLISH_CACHE: Dict[Tuple[int, int, int], Tuple[Any, bytes, str]] = {}
_PUBLISH_CACHE_LIMIT = 4

#: Attach fast path: entries-segment name → the exact Python-object
#: entry columns serialised into it.  A worker forked *after* publish
#: inherits this mapping and skips the multi-MB unpickle — the fork's
#: copy-on-write pages are the same zero-copy sharing the segments give
#: the interval arrays.  A ``spawn``-started worker (or any foreign
#: process) simply misses and unpickles from the segment.
_ENTRIES_CACHE: Dict[str, Tuple[Any, Any, Any]] = {}

#: One job on a worker's queue:
#: ``(verb, seq, generation, handle, batch, directive)`` — ``attach``
#: carries the handle, ``batch`` the PackedBatch plus an optional armed
#: fault directive, ``sync`` and ``stop`` neither.
_ShmJob = Tuple[
    str, int, int, Optional["SharedLpmHandle"], Optional[PackedBatch],
    Optional[Tuple[int, str, float]],
]

#: One ack on a worker's pipe: ``(status, seq, error, store)`` —
#: ``attached``/``ok`` carry nothing, ``synced`` the drained delta
#: store, ``error``/``stale`` a message.
_ShmAck = Tuple[str, int, Optional[str], Optional[ClusterStore]]

#: Failures a segment close/unlink can legitimately raise: the segment
#: is already gone (someone reclaimed it), the mapping is still
#: referenced, or the OS refused.
_SEGMENT_CLEANUP_ERRORS = (OSError, BufferError, ValueError)


def _segment_name(tag: str) -> str:
    return f"repro-{os.getpid()}-{next(_SEGMENT_COUNTER)}{tag}"


def _cleanup_leaked_segments() -> None:
    """atexit guard: unlink anything a dying driver left behind."""
    for name, segment in list(_LIVE_SEGMENTS.items()):
        _LIVE_SEGMENTS.pop(name, None)
        try:
            segment.close()
        except _SEGMENT_CLEANUP_ERRORS:
            pass
        try:
            segment.unlink()
        except _SEGMENT_CLEANUP_ERRORS:
            pass


atexit.register(_cleanup_leaked_segments)


def _create_segment(tag: str, size: int) -> Tuple[SharedMemory, int]:
    """Create a fresh segment; reclaim a leaked same-name one if found.

    Returns ``(segment, leaked)`` where ``leaked`` counts stale segments
    from a dead run that had to be unlinked first (fed into the
    ``shm_unlink_failures`` metric: every such detection is a cleanup
    that a previous run failed to do).
    """
    name = _segment_name(tag)
    leaked = 0
    try:
        segment = SharedMemory(name=name, create=True, size=size)
    except FileExistsError:
        leaked += 1
        try:
            stale = SharedMemory(name=name)
            stale.close()
            stale.unlink()
        except _SEGMENT_CLEANUP_ERRORS:
            pass
        segment = SharedMemory(name=name, create=True, size=size)
    _LIVE_SEGMENTS[segment.name] = segment
    return segment, leaked


def _release_segment(segment: Optional[SharedMemory], unlink: bool) -> int:
    """Close (and optionally unlink) a segment; returns failure count."""
    if segment is None:
        return 0
    failures = 0
    _LIVE_SEGMENTS.pop(segment.name, None)
    try:
        segment.close()
    except _SEGMENT_CLEANUP_ERRORS:
        failures += 1
    if unlink:
        try:
            segment.unlink()
        except _SEGMENT_CLEANUP_ERRORS:
            failures += 1
    return failures


def _untrack_attachment(segment: SharedMemory) -> None:
    """Keep the creator the resource tracker's single registered owner.

    Attaching ``SharedMemory(name=...)`` registers the segment with the
    attaching process's resource tracker too.  Under ``fork`` (the
    Linux default) that tracker is the driver's own — registrations
    dedupe in a set, so a worker-side *unregister* would erase the
    creator's only entry and the tracker would complain at every
    unlink; the right move is to do nothing.  Under ``spawn`` each
    worker runs its own tracker, which would unlink the still-shared
    segment when the worker exits — there the registration must be
    cancelled.
    """
    try:
        if multiprocessing.get_start_method() == "fork":
            return
        resource_tracker.unregister(segment._name, "shared_memory")
    except (AttributeError, KeyError, OSError, RuntimeError, ValueError):
        pass


@dataclass(frozen=True)
class SharedLpmHandle:
    """Everything a worker needs to attach: names and numbers, never
    buffers.  This is the only table-shaped thing that crosses the
    process boundary in shm mode."""

    kind: str
    generation: int
    data_name: str
    entries_name: str
    acc_name: str
    digest: str
    epoch: int
    deltas_applied: int
    starts_bytes: int
    owners_bytes: int
    slots_bytes: int
    entries_bytes: int
    memo_size: int
    num_shards: int


class _AttachedTable:
    """A worker's zero-copy view plus the resources backing it."""

    def __init__(
        self,
        table: Any,
        base: PackedLpm,
        private: Optional[PackedLpm],
        segments: List[SharedMemory],
        views: List[Any],
    ) -> None:
        #: The lookup table batches resolve against (memo-wrapped view).
        self.table = table
        #: The raw shared view (for digest/crosscheck access).
        self.base = base
        #: Private-array twin for REPRO_SANITIZE cross-checks.
        self.private = private
        self._segments = segments
        self._views = views

    def close(self) -> None:
        """Release the memoryviews, then the mappings (best effort)."""
        self.table = None
        self.base = None
        self.private = None
        views, self._views = self._views, []
        for view in views:
            try:
                view.release()
            except _SEGMENT_CLEANUP_ERRORS:
                pass
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except _SEGMENT_CLEANUP_ERRORS:
                pass


def _unwrap_table(table: Any) -> Tuple[PackedLpm, int]:
    """Split a possibly-memoized table into (base table, memo size)."""
    if isinstance(table, MemoizedLookup):
        return table.table, table.maxsize
    return table, 0


class SharedLpm:
    """Driver-side publication of one table generation.

    Creates two segments: ``data`` holds the raw ``_starts`` /
    ``_owners`` (and, for stride tables, ``_slots``) buffers back to
    back; ``entries`` holds a once-pickled blob of the Python-object
    entry columns (prefixes, values, stride runs) each worker unpickles
    once at attach.  :attr:`handle` is the picklable description.
    """

    def __init__(
        self,
        table: Any,
        generation: int,
        acc_name: str = "",
        num_shards: int = 1,
    ) -> None:
        base, memo_size = _unwrap_table(table)
        if isinstance(base, StrideLpm):
            kind = "stride"
            packed_state, slots, runs = base.__getstate__()
        else:
            kind = "packed"
            packed_state = base.__getstate__()
            slots = array("q")
            runs = None
        starts, owners, prefixes, values, epoch, deltas_applied = packed_state
        # Snapshot the (mutable) stride runs so cached entries can never
        # alias a list a later patch rewrites in place.
        entries = (prefixes, values, list(runs) if runs is not None else None)
        cache_key = (id(base), epoch, deltas_applied)
        cached = _PUBLISH_CACHE.get(cache_key)
        if cached is not None and cached[0] is base:
            entries_blob, digest = cached[1], cached[2]
        else:
            entries_blob = pickle.dumps(
                entries, protocol=pickle.HIGHEST_PROTOCOL
            )
            digest = base.digest()
            _PUBLISH_CACHE[cache_key] = (base, entries_blob, digest)
            while len(_PUBLISH_CACHE) > _PUBLISH_CACHE_LIMIT:
                _PUBLISH_CACHE.pop(next(iter(_PUBLISH_CACHE)))
        starts_bytes = len(starts) * starts.itemsize
        owners_bytes = len(owners) * owners.itemsize
        slots_bytes = len(slots) * slots.itemsize
        self.leaked_detections = 0
        self._data: Optional[SharedMemory] = None
        self._entries: Optional[SharedMemory] = None
        try:
            self._data, leaked = _create_segment(
                "t", max(1, starts_bytes + owners_bytes + slots_bytes)
            )
            self.leaked_detections += leaked
            self._entries, leaked = _create_segment(
                "e", max(1, len(entries_blob))
            )
            self.leaked_detections += leaked
            buf = self._data.buf
            offset = 0
            for source in (starts, owners, slots):
                raw = memoryview(source).cast("B")
                size = raw.nbytes
                try:
                    buf[offset:offset + size] = raw
                finally:
                    raw.release()
                offset += size
            self._entries.buf[: len(entries_blob)] = entries_blob
            _ENTRIES_CACHE[self._entries.name] = entries
            self.handle = SharedLpmHandle(
                kind=kind,
                generation=generation,
                data_name=self._data.name,
                entries_name=self._entries.name,
                acc_name=acc_name,
                digest=digest,
                epoch=epoch,
                deltas_applied=deltas_applied,
                starts_bytes=starts_bytes,
                owners_bytes=owners_bytes,
                slots_bytes=slots_bytes,
                entries_bytes=len(entries_blob),
                memo_size=memo_size,
                num_shards=num_shards,
            )
        except BaseException:
            self.close(unlink=True)
            raise

    def close(self, unlink: bool = True) -> int:
        """Release both segments; returns the unlink-failure count."""
        failures = 0
        data, self._data = self._data, None
        failures += _release_segment(data, unlink)
        entries, self._entries = self._entries, None
        if entries is not None:
            _ENTRIES_CACHE.pop(entries.name, None)
        failures += _release_segment(entries, unlink)
        return failures


def attach_shared_table(
    handle: SharedLpmHandle, untrack: bool = False
) -> _AttachedTable:
    """Rebuild a zero-copy table around a published handle.

    The returned view's interval arrays are ``memoryview`` casts over
    the shared mapping — no buffer is copied.  With ``untrack`` the
    attachment's resource-tracker registration is cancelled (worker
    processes: the driver owns the segment's lifetime).  Under
    ``REPRO_SANITIZE=1`` a private-array twin is materialised and the
    view's digest is verified against the handle's.
    """
    data = SharedMemory(name=handle.data_name)
    segments = [data]
    views: List[Any] = []
    try:
        entries_segment = SharedMemory(name=handle.entries_name)
        segments.append(entries_segment)
        if untrack:
            _untrack_attachment(data)
            _untrack_attachment(entries_segment)
        # Fork fast path: a worker forked after publish inherited the
        # creator's entry columns (copy-on-write) — the segment blob
        # only needs unpickling in a process that didn't.
        entries = _ENTRIES_CACHE.get(handle.entries_name)
        if entries is None:
            entries = pickle.loads(
                bytes(entries_segment.buf[: handle.entries_bytes])
            )
        starts_end = handle.starts_bytes
        owners_end = starts_end + handle.owners_bytes
        slots_end = owners_end + handle.slots_bytes
        starts = data.buf[:starts_end].cast("Q")
        views.append(starts)
        owners = data.buf[starts_end:owners_end].cast("q")
        views.append(owners)
        slots: Any = None
        if handle.kind == "stride":
            slots = data.buf[owners_end:slots_end].cast("q")
            views.append(slots)
        base = build_table_view(
            handle.kind, starts, owners, slots, entries,
            handle.epoch, handle.deltas_applied,
        )
        private: Optional[PackedLpm] = None
        if _sanitize.is_enabled():
            if base.digest() != handle.digest:
                raise SanitizeError(
                    "shared LPM view digest diverged from the published "
                    f"handle (generation {handle.generation})"
                )
            private_starts = array("Q")
            private_starts.frombytes(bytes(data.buf[:starts_end]))
            private_owners = array("q")
            private_owners.frombytes(bytes(data.buf[starts_end:owners_end]))
            private_slots: Any = None
            if handle.kind == "stride":
                private_slots = array("q")
                private_slots.frombytes(bytes(data.buf[owners_end:slots_end]))
            private = build_table_view(
                handle.kind, private_starts, private_owners, private_slots,
                entries, handle.epoch, handle.deltas_applied,
            )
        table: Any = base
        if handle.memo_size > 0:
            table = MemoizedLookup(base, handle.memo_size)
        return _AttachedTable(table, base, private, segments, views)
    except BaseException:
        for view in views:
            try:
                view.release()
            except _SEGMENT_CLEANUP_ERRORS:
                pass
        for segment in segments:
            try:
                segment.close()
            except _SEGMENT_CLEANUP_ERRORS:
                pass
        raise


def _crosscheck_shared_lookups(
    attached: _AttachedTable, batch: PackedBatch
) -> None:
    """Sampled REPRO_SANITIZE invariant: the shared view answers every
    lookup exactly as a private-array copy of the same table does."""
    if attached.private is None or not _sanitize.crosscheck_due():
        return
    addresses = list(batch.addresses)
    shared = attached.base.lookup_many(addresses)
    private = attached.private.lookup_many(addresses)
    if shared != private:
        diverged = sum(1 for a, b in zip(shared, private) if a != b)
        raise SanitizeError(
            f"shared-memory LPM view diverged from its private twin on "
            f"{diverged}/{len(addresses)} lookups"
        )
    _sanitize.record_crosscheck()


def _shm_worker_main(shard: int, jobs: Any, ack: Connection) -> None:
    """Persistent worker loop: attach once, apply batches, sync deltas.

    Communicates results through three channels: the shared accumulator
    array (per-batch counters), the ack pipe (tiny status tuples, plus
    the delta store on ``sync``), and nothing else — the table never
    crosses back.
    """
    attached: Optional[_AttachedTable] = None
    acc: Optional[SharedMemory] = None
    counters: Any = None
    generation = -1
    base_slot = 1 + shard * _COUNTERS_PER_SHARD
    store = ClusterStore()
    try:
        while True:
            try:
                job: _ShmJob = jobs.get()
            except (EOFError, OSError):
                break
            verb, seq, job_generation, handle, batch, directive = job
            if verb == "stop":
                break
            try:
                if verb == "attach":
                    if attached is not None:
                        attached.close()
                    attached = attach_shared_table(handle, untrack=True)
                    if acc is None:
                        acc = SharedMemory(name=handle.acc_name)
                        _untrack_attachment(acc)
                        counters = acc.buf.cast("q")
                    generation = handle.generation
                    store = ClusterStore()
                    ack.send(("attached", seq, None, None))
                elif verb == "sync":
                    drained, store = store, ClusterStore()
                    ack.send(("synced", seq, None, drained))
                elif verb == "batch":
                    if (
                        job_generation != generation
                        or counters is None
                        or counters[_ACC_GENERATION_SLOT] != generation
                    ):
                        ack.send((
                            "stale", seq,
                            f"worker attached to generation {generation}, "
                            f"job carries {job_generation}", None,
                        ))
                        continue
                    crash_after_apply = None
                    if directive is not None:
                        if directive[1] == SITE_SHM_WORKER_CRASH:
                            crash_after_apply = directive
                        else:
                            execute_worker_directive(directive)
                    store.apply_packed(batch, attached.table)
                    _crosscheck_shared_lookups(attached, batch)
                    counters[base_slot + _C_ENTRIES] += len(batch)
                    counters[base_slot + _C_BYTES] += sum(batch.sizes)
                    counters[base_slot + _C_BATCHES] += 1
                    take = getattr(attached.table, "take_memo_stats", None)
                    if take is not None:
                        hits, misses, evictions = take()
                        counters[base_slot + _C_MEMO_HITS] += hits
                        counters[base_slot + _C_MEMO_MISSES] += misses
                        counters[base_slot + _C_MEMO_EVICTIONS] += evictions
                    if _sanitize.is_enabled():
                        checks, crosschecks, readbacks, draws = (
                            _sanitize.take_stats()
                        )
                        counters[base_slot + _C_SAN_BATCH] += checks
                        counters[base_slot + _C_SAN_XCHK] += crosschecks
                        counters[base_slot + _C_SAN_READBACK] += readbacks
                        counters[base_slot + _C_SAN_RNG] += draws
                    if crash_after_apply is not None:
                        # Injected hard death mid-batch: the batch is in
                        # the (doomed) delta store, the ack never sends,
                        # the driver sees the pipe snap.
                        execute_worker_directive(crash_after_apply)
                    ack.send(("ok", seq, None, None))
                else:
                    ack.send(("error", seq, f"unknown job verb {verb!r}", None))
            except Exception as exc:  # lint: ignore[broad-except] -- the worker reports over the ack pipe and the driver re-raises WorkerCrashError; raising here would just kill the worker without a message
                try:
                    ack.send(("error", seq, repr(exc), None))
                except (OSError, ValueError):
                    break
    finally:
        if counters is not None:
            try:
                counters.release()
            except _SEGMENT_CLEANUP_ERRORS:
                pass
        if attached is not None:
            attached.close()
        if acc is not None:
            try:
                acc.close()
            except _SEGMENT_CLEANUP_ERRORS:
                pass
        try:
            ack.close()
        except (OSError, ValueError):
            pass


class ShmWorkerGroup:
    """One persistent worker process per shard over a shared table.

    The driver dispatches per-chunk :class:`PackedBatch` jobs and waits
    for per-worker acks; counters flow back through the shared
    accumulator, delta stores only on :meth:`sync`.  Any failure —
    an error ack, a stale-generation refusal, a snapped ack pipe, a
    dispatch past ``dispatch_timeout`` — surfaces as
    :class:`~repro.errors.WorkerCrashError`; the caller is expected to
    :meth:`shutdown` the group and replay its un-synced chunks.
    """

    def __init__(
        self,
        table: Any,
        num_shards: int,
        dispatch_timeout: Optional[float] = None,
        metrics: Any = None,
    ) -> None:
        self.generation = next(_GENERATION_COUNTER)
        self.num_shards = num_shards
        self.dispatch_timeout = dispatch_timeout
        self._metrics = metrics
        self._seq = 0
        self._acc: Optional[SharedMemory] = None
        self._counters: Any = None
        self._published: Optional[SharedLpm] = None
        self._workers: List[Process] = []
        self._queues: List[Any] = []
        self._conns: List[Connection] = []
        self._last_seen = [
            [0] * _COUNTERS_PER_SHARD for _ in range(num_shards)
        ]
        leaked = 0
        try:
            slots = 1 + num_shards * _COUNTERS_PER_SHARD
            self._acc, leaked = _create_segment("a", 8 * slots)
            self._counters = self._acc.buf.cast("q")
            for slot in range(slots):
                self._counters[slot] = 0
            self._counters[_ACC_GENERATION_SLOT] = self.generation
            self._published = SharedLpm(
                table,
                generation=self.generation,
                acc_name=self._acc.name,
                num_shards=num_shards,
            )
            leaked += self._published.leaked_detections
            for shard in range(num_shards):
                queue: Any = SimpleQueue()
                recv_end, send_end = Pipe(duplex=False)
                worker = Process(
                    target=_shm_worker_main,
                    args=(shard, queue, send_end),
                    daemon=True,
                    name=f"repro-shm-{shard}",
                )
                worker.start()
                send_end.close()
                self._workers.append(worker)
                self._queues.append(queue)
                self._conns.append(recv_end)
            self._seq += 1
            for queue in self._queues:
                queue.put((
                    "attach", self._seq, self.generation,
                    self._published.handle, None, None,
                ))
            self._await_acks(self._seq, "attached")
            if leaked and metrics is not None:
                metrics.record_shm_unlink_failures(leaked)
        except BaseException:
            # Tear down before recording: a raising metrics sink must not
            # leave live workers and an unlinked accumulator behind.
            self.shutdown(kill=True)
            if leaked and metrics is not None:
                metrics.record_shm_unlink_failures(leaked)
            raise

    @property
    def handle(self) -> Optional[SharedLpmHandle]:
        return self._published.handle if self._published is not None else None

    def is_stale(self, table: Any) -> bool:
        """Has the live table moved past the published generation?"""
        base, _ = _unwrap_table(table)
        handle = self.handle
        if handle is None:
            return True
        return (
            handle.epoch != int(getattr(base, "epoch", 0))
            or handle.deltas_applied != int(getattr(base, "deltas_applied", 0))
        )

    # -- dispatch --------------------------------------------------------

    def dispatch(
        self,
        batches: List[PackedBatch],
        directive: Optional[Tuple[int, str, float]] = None,
    ) -> Dict[str, Any]:
        """Ship one chunk's per-shard batches; wait for every ack.

        Returns the accumulated counter deltas since the previous drain
        (memo and sanitize stats for the metrics).  Raises
        :class:`WorkerCrashError` on any worker failure; the chunk must
        then be considered not applied.
        """
        self._seq += 1
        seq = self._seq
        for shard, batch in enumerate(batches):
            armed = (
                directive
                if directive is not None and directive[0] == shard
                else None
            )
            self._queues[shard].put(
                ("batch", seq, self.generation, None, batch, armed)
            )
        self._await_acks(seq, "ok")
        return self._drain_counters()

    def sync(self) -> Tuple[List[ClusterStore], Dict[str, Any]]:
        """Collect every worker's delta store (workers reset to empty).

        The returned stores merge into the driver's authoritative
        per-shard states; after a successful sync the replay buffer of
        dispatched-but-unsynced chunks can be cleared.
        """
        self._seq += 1
        seq = self._seq
        for queue in self._queues:
            queue.put(("sync", seq, self.generation, None, None, None))
        payloads = self._await_acks(seq, "synced")
        stores = [payloads[shard] for shard in range(self.num_shards)]
        return stores, self._drain_counters()

    def _await_acks(self, seq: int, expected: str) -> Dict[int, Any]:
        pending: Dict[Connection, int] = {
            conn: shard for shard, conn in enumerate(self._conns)
        }
        payloads: Dict[int, Any] = {}
        deadline = (
            time.perf_counter() + self.dispatch_timeout
            if self.dispatch_timeout is not None
            else None
        )
        while pending:
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline - time.perf_counter())
            ready = _connection_wait(list(pending), timeout)
            if not ready:
                raise WorkerCrashError(
                    f"shm dispatch exceeded dispatch_timeout="
                    f"{self.dispatch_timeout}s; a worker is hung or died "
                    "mid-batch — group must be torn down, chunk not applied"
                )
            for conn in ready:
                shard = pending[conn]
                try:
                    status, ack_seq, error, payload = conn.recv()
                except (EOFError, OSError) as exc:
                    raise WorkerCrashError(
                        f"shm worker for shard {shard} died mid-batch "
                        "(ack pipe snapped) — group must be torn down, "
                        "chunk not applied"
                    ) from exc
                if ack_seq != seq:
                    continue
                if status == "error":
                    raise WorkerCrashError(
                        f"shm worker for shard {shard} failed ({error}) — "
                        "group must be torn down, chunk not applied"
                    )
                if status == "stale":
                    raise WorkerCrashError(
                        f"shm worker for shard {shard} refused a stale "
                        f"generation ({error}) — republish required"
                    )
                if status != expected:
                    raise WorkerCrashError(
                        f"shm worker for shard {shard} acked {status!r} "
                        f"where {expected!r} was expected"
                    )
                payloads[shard] = payload
                del pending[conn]
        return payloads

    def _drain_counters(self) -> Dict[str, Any]:
        counters = self._counters
        totals = [0] * _COUNTERS_PER_SHARD
        per_shard_entries = [0] * self.num_shards
        for shard in range(self.num_shards):
            base = 1 + shard * _COUNTERS_PER_SHARD
            seen = self._last_seen[shard]
            for slot in range(_COUNTERS_PER_SHARD):
                value = counters[base + slot]
                totals[slot] += value - seen[slot]
                if slot == _C_ENTRIES:
                    per_shard_entries[shard] = value - seen[slot]
                seen[slot] = value
        return {
            "entries": totals[_C_ENTRIES],
            "bytes": totals[_C_BYTES],
            "batches": totals[_C_BATCHES],
            "per_shard_entries": per_shard_entries,
            "memo": (
                totals[_C_MEMO_HITS],
                totals[_C_MEMO_MISSES],
                totals[_C_MEMO_EVICTIONS],
            ),
            "sanitize": (
                totals[_C_SAN_BATCH],
                totals[_C_SAN_XCHK],
                totals[_C_SAN_READBACK],
                totals[_C_SAN_RNG],
            ),
        }

    # -- lifecycle -------------------------------------------------------

    def shutdown(self, kill: bool = False) -> None:
        """Stop workers and unlink every segment (idempotent).

        ``kill`` terminates instead of draining — the only safe option
        after a failed dispatch, when workers may be wedged mid-batch.
        Unlink failures (and leaked-segment detections) are counted into
        the ``shm_unlink_failures`` metric.
        """
        failures = 0
        try:
            if not kill:
                for queue in self._queues:
                    try:
                        queue.put(("stop", 0, 0, None, None, None))
                    except (OSError, ValueError):
                        pass
            for worker in self._workers:
                if kill and worker.is_alive():
                    worker.terminate()
            for worker in self._workers:
                worker.join(_JOIN_GRACE_SECONDS)
                if worker.is_alive():
                    worker.kill()
                    worker.join(_JOIN_GRACE_SECONDS)
        finally:
            self._workers = []
            for queue in self._queues:
                try:
                    queue.close()
                except (OSError, ValueError):
                    pass
            self._queues = []
            for conn in self._conns:
                try:
                    conn.close()
                except (OSError, ValueError):
                    pass
            self._conns = []
            published, self._published = self._published, None
            if published is not None:
                failures += published.close(unlink=True)
            counters, self._counters = self._counters, None
            if counters is not None:
                try:
                    counters.release()
                except _SEGMENT_CLEANUP_ERRORS:
                    pass
            acc, self._acc = self._acc, None
            failures += _release_segment(acc, unlink=True)
            if failures and self._metrics is not None:
                self._metrics.record_shm_unlink_failures(failures)
