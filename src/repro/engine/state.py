"""Incremental cluster state: accumulate, merge, checkpoint, restore.

:class:`ClusterStore` is the engine's unit of mutable state.  Each
shard owns one; batches of requests are folded in with
:meth:`apply_batch`, partial stores from worker processes merge with
:meth:`merge`, and :meth:`snapshot` materialises a plain
:class:`~repro.core.clustering.ClusterSet` so the entire downstream
toolchain (thresholding, validation, placement, caching) runs on
engine output unchanged.

Routing-table hot-swap follows ``core.realtime.update_table``
semantics: the store itself holds no reference to any table — every
:meth:`apply_batch` call names the table it resolves against — so
swapping tables mid-run simply means later batches resolve against the
new one while already-accumulated assignments persist.

Checkpoints are a versioned on-disk format (:func:`write_checkpoint` /
:func:`read_checkpoint`) so long runs survive interruption: restore in
a fresh process and continue feeding batches; the final snapshot is
identical to an uninterrupted run.

.. warning::
   The checkpoint payload is a pickle.  Unpickling executes code
   chosen by whoever wrote the file, so the magic/version/digest
   checks authenticate *nothing* — they run after the payload has
   already been deserialised.  Only restore checkpoints you wrote
   yourself on a filesystem you trust; never load one received over
   the network.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.clustering import Cluster, ClusterSet
from repro.engine.packed import PackedLpm
from repro.net.prefix import Prefix

__all__ = [
    "ClusterStore",
    "CheckpointError",
    "write_checkpoint",
    "read_checkpoint",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
]

#: File-format identity and version; bump the version whenever the
#: pickled payload layout changes so stale checkpoints fail loudly.
CHECKPOINT_MAGIC = "repro.engine.checkpoint"
CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, foreign, or from another version."""


@dataclass
class _ClusterState:
    """Mutable accumulator for one cluster (one matched prefix)."""

    requests: int = 0
    total_bytes: int = 0
    client_counts: Dict[int, int] = field(default_factory=dict)
    urls: Set[str] = field(default_factory=set)
    source_kind: str = ""
    source_name: str = ""

    def merge(self, other: "_ClusterState") -> None:
        self.requests += other.requests
        self.total_bytes += other.total_bytes
        counts = self.client_counts
        for client, count in other.client_counts.items():
            counts[client] = counts.get(client, 0) + count
        self.urls |= other.urls
        if not self.source_kind:
            self.source_kind = other.source_kind
            self.source_name = other.source_name


class ClusterStore:
    """Mergeable cluster statistics keyed by matched prefix.

    The store accepts *request triples* ``(client, url, size)`` — the
    projection of a :class:`~repro.weblog.entry.LogEntry` the cluster
    metrics need — so worker batches stay small on the wire.
    """

    def __init__(self) -> None:
        self._clusters: Dict[Prefix, _ClusterState] = {}
        self._unclustered: Dict[int, int] = {}
        self.entries_applied = 0
        self.lookups_performed = 0

    def __len__(self) -> int:
        return len(self._clusters)

    @property
    def num_unclustered(self) -> int:
        return len(self._unclustered)

    # -- accumulation ----------------------------------------------------

    def apply_batch(
        self, triples: Sequence[Tuple[int, str, int]], table: PackedLpm
    ) -> int:
        """Fold one batch of ``(client, url, size)`` into the store.

        One batched LPM pass resolves every client, then a single
        Python loop updates the per-cluster accumulators.  Returns the
        number of entries applied.
        """
        indices = table.lookup_many([triple[0] for triple in triples])
        self.lookups_performed += len(triples)
        clusters = self._clusters
        unclustered = self._unclustered
        for (client, url, size), index in zip(triples, indices):
            if index < 0:
                unclustered[client] = unclustered.get(client, 0) + 1
                continue
            prefix = table.prefix(index)
            state = clusters.get(prefix)
            if state is None:
                value = table.value(index)
                state = clusters[prefix] = _ClusterState(
                    source_kind=getattr(value, "source_kind", ""),
                    source_name=getattr(value, "source_name", ""),
                )
            state.requests += 1
            state.total_bytes += size
            state.client_counts[client] = state.client_counts.get(client, 0) + 1
            state.urls.add(url)
        self.entries_applied += len(triples)
        return len(triples)

    def apply_entries(self, entries: Iterable[Any], table: PackedLpm) -> int:
        """Convenience wrapper taking :class:`LogEntry`-shaped objects."""
        return self.apply_batch(
            [(entry.client, entry.url, entry.size) for entry in entries], table
        )

    def copy(self) -> "ClusterStore":
        """Independent copy (merge adopts accumulators by reference, so
        copy before merging long-lived stores together)."""
        clone = ClusterStore()
        clone._clusters = {
            prefix: _ClusterState(
                requests=state.requests,
                total_bytes=state.total_bytes,
                client_counts=dict(state.client_counts),
                urls=set(state.urls),
                source_kind=state.source_kind,
                source_name=state.source_name,
            )
            for prefix, state in self._clusters.items()
        }
        clone._unclustered = dict(self._unclustered)
        clone.entries_applied = self.entries_applied
        clone.lookups_performed = self.lookups_performed
        return clone

    def merge(self, other: "ClusterStore") -> "ClusterStore":
        """Fold ``other`` into this store (commutative up to snapshot).

        Accumulators absent from ``self`` are adopted by reference —
        cheap for transient worker partials; :meth:`copy` first when the
        source store lives on."""
        clusters = self._clusters
        for prefix, state in other._clusters.items():
            mine = clusters.get(prefix)
            if mine is None:
                clusters[prefix] = state
            else:
                mine.merge(state)
        unclustered = self._unclustered
        for client, count in other._unclustered.items():
            unclustered[client] = unclustered.get(client, 0) + count
        self.entries_applied += other.entries_applied
        self.lookups_performed += other.lookups_performed
        return self

    # -- observation -----------------------------------------------------

    def snapshot(
        self, name: str = "engine", method: str = "network-aware"
    ) -> ClusterSet:
        """Materialise a :class:`ClusterSet` (same layout as
        :func:`repro.core.clustering.cluster_log` output: clusters in
        prefix order, client lists ascending)."""
        clusters: List[Cluster] = []
        for prefix, state in sorted(
            self._clusters.items(), key=lambda kv: kv[0].sort_key()
        ):
            clusters.append(
                Cluster(
                    identifier=prefix,
                    clients=sorted(state.client_counts),
                    requests=state.requests,
                    unique_urls=len(state.urls),
                    total_bytes=state.total_bytes,
                    source_kind=state.source_kind,
                    source_name=state.source_name,
                )
            )
        return ClusterSet(
            log_name=name,
            method=method,
            clusters=clusters,
            unclustered_clients=sorted(self._unclustered),
        )

    # -- persistence -----------------------------------------------------

    def _payload(self) -> Dict[str, Any]:
        return {
            "clusters": self._clusters,
            "unclustered": self._unclustered,
            "entries_applied": self.entries_applied,
            "lookups_performed": self.lookups_performed,
        }

    @classmethod
    def _from_payload(cls, payload: Dict[str, Any]) -> "ClusterStore":
        store = cls()
        store._clusters = payload["clusters"]
        store._unclustered = payload["unclustered"]
        store.entries_applied = payload["entries_applied"]
        store.lookups_performed = payload["lookups_performed"]
        return store

    def checkpoint(self, path: str, table_digest: str = "") -> None:
        """Persist this store alone (single-shard convenience)."""
        write_checkpoint(path, [self], table_digest=table_digest)

    @classmethod
    def restore(cls, path: str, table_digest: str = "") -> "ClusterStore":
        """Load a single-store checkpoint written by :meth:`checkpoint`."""
        stores, _ = read_checkpoint(path, table_digest=table_digest)
        if len(stores) != 1:
            raise CheckpointError(
                f"expected a single-store checkpoint, found {len(stores)} shards"
            )
        return stores[0]


def write_checkpoint(
    path: str,
    stores: Sequence[ClusterStore],
    table_digest: str = "",
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Write shard ``stores`` to ``path`` in the versioned format.

    ``table_digest`` (see :meth:`PackedLpm.digest`) records which prefix
    set the accumulated lookups were resolved against; a restore that
    supplies a digest refuses to resume against a different table.
    """
    document = {
        "magic": CHECKPOINT_MAGIC,
        "version": CHECKPOINT_VERSION,
        "table_digest": table_digest,
        "meta": dict(meta or {}),
        "shards": [store._payload() for store in stores],
    }
    with open(path, "wb") as handle:
        pickle.dump(document, handle, protocol=pickle.HIGHEST_PROTOCOL)


def read_checkpoint(
    path: str, table_digest: str = ""
) -> Tuple[List[ClusterStore], Dict[str, Any]]:
    """Load a checkpoint; returns ``(stores, meta)``.

    Raises :class:`CheckpointError` for foreign files, version skew, or
    (when ``table_digest`` is given) a routing-table mismatch.

    .. warning::
       ``path`` is unpickled — a tampered checkpoint can execute
       arbitrary code before any of the validation here runs.  The
       checks guard against *accidents* (wrong file, stale version,
       different table), not against malicious input; only load files
       you trust (see the module docstring).
    """
    try:
        with open(path, "rb") as handle:
            document = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    if not isinstance(document, dict) or document.get("magic") != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path!r} is not a repro.engine checkpoint")
    version = document.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version!r} unsupported "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    stored_digest = document.get("table_digest", "")
    if table_digest and stored_digest and stored_digest != table_digest:
        raise CheckpointError(
            "checkpoint was taken against a different routing table "
            f"(stored digest {stored_digest[:12]}…, current {table_digest[:12]}…)"
        )
    stores = [
        ClusterStore._from_payload(payload) for payload in document["shards"]
    ]
    return stores, document.get("meta", {})
