"""Incremental cluster state: accumulate, merge, checkpoint, restore.

:class:`ClusterStore` is the engine's unit of mutable state.  Each
shard owns one; batches of requests are folded in with
:meth:`apply_batch`, partial stores from worker processes merge with
:meth:`merge`, and :meth:`snapshot` materialises a plain
:class:`~repro.core.clustering.ClusterSet` so the entire downstream
toolchain (thresholding, validation, placement, caching) runs on
engine output unchanged.

Routing-table hot-swap follows ``core.realtime.update_table``
semantics: the store itself holds no reference to any table — every
:meth:`apply_batch` call names the table it resolves against — so
swapping tables mid-run simply means later batches resolve against the
new one while already-accumulated assignments persist.

Checkpoints are a versioned on-disk format (:func:`write_checkpoint` /
:func:`read_checkpoint`) so long runs survive interruption: restore in
a fresh process and continue feeding batches; the final snapshot is
identical to an uninterrupted run.

Writes are atomic and checksummed: the document is serialised in
memory, written to a temp file in the target directory, fsynced, and
``os.replace``d over the destination — so a crash at any instant leaves
either the previous checkpoint or the new one, never a torn file.  The
on-disk envelope carries a CRC32 of the pickled payload; the payload is
only unpickled after the checksum verifies, and damage raises
:class:`~repro.errors.CheckpointCorruptError` (version skew raises
:class:`~repro.errors.CheckpointVersionError` — a distinct, intact-file
condition).

.. warning::
   The checkpoint payload is a pickle.  The CRC and magic/version
   checks catch *accidents* (torn writes, bad disks, stale files) —
   they authenticate nothing, and a crafted envelope with a valid CRC
   still executes whatever its payload pickles into.  Only restore
   checkpoints you wrote yourself on a filesystem you trust; never
   load one received over the network.
"""

from __future__ import annotations

import io
import mmap
import os
import pickle
import tempfile
import zlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis import sanitize as _sanitize
from repro.core.clustering import Cluster, ClusterSet
from repro.engine.packed import PackedLpm
from repro.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointTableMismatchError,
    CheckpointVersionError,
)
from repro.net.prefix import Prefix

if TYPE_CHECKING:
    from repro.engine.fastpath import PackedBatch

__all__ = [
    "ClusterStore",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointVersionError",
    "CheckpointTableMismatchError",
    "write_checkpoint",
    "read_checkpoint",
    "read_checkpoint_table",
    "serialize_checkpoint",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
]

#: File-format identity and version; bump the version whenever the
#: pickled payload layout changes so stale checkpoints fail loudly.
#: Version 2 wraps the payload in a CRC32-checked envelope; version 3
#: adds the routing generation (``routing_epoch`` / ``deltas_applied``)
#: so ``repro-engine serve --resume`` can restart mid-stream; version 4
#: adds an optional raw table section after the envelope — the packed
#: interval buffers written via ``memoryview`` and read back with
#: ``mmap`` (:func:`read_checkpoint_table`) instead of unpickling a
#: fresh copy.
CHECKPOINT_MAGIC = "repro.engine.checkpoint"
CHECKPOINT_VERSION = 4

#: Raw table sections start at the first 8-byte boundary after the
#: envelope pickle, so an mmap'd ``array('Q')`` view is aligned.
_TABLE_SECTION_ALIGN = 8

#: Everything ``pickle.loads`` (and the payload-shape accessors that
#: follow it) can raise on corrupt, truncated, or foreign bytes.  Kept
#: concrete — rather than ``except Exception`` — so an unrelated bug
#: surfacing mid-decode (say, a repro.errors type from nested state)
#: cannot be mislabelled as file corruption.
_UNPICKLE_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    KeyError,
    TypeError,
    ValueError,
    UnicodeDecodeError,
    OverflowError,
    MemoryError,
)


@dataclass
class _ClusterState:
    """Mutable accumulator for one cluster (one matched prefix)."""

    requests: int = 0
    total_bytes: int = 0
    client_counts: Dict[int, int] = field(default_factory=dict)
    urls: Set[str] = field(default_factory=set)
    source_kind: str = ""
    source_name: str = ""

    def merge(self, other: "_ClusterState") -> None:
        self.requests += other.requests
        self.total_bytes += other.total_bytes
        counts = self.client_counts
        for client, count in other.client_counts.items():
            counts[client] = counts.get(client, 0) + count
        self.urls |= other.urls
        if not self.source_kind:
            self.source_kind = other.source_kind
            self.source_name = other.source_name


def _in_windows(
    address: int, lows: Sequence[int], highs: Sequence[int]
) -> bool:
    """Is ``address`` inside the sorted disjoint inclusive windows?"""
    slot = bisect_right(lows, address) - 1
    return slot >= 0 and address <= highs[slot]


class ClusterStore:
    """Mergeable cluster statistics keyed by matched prefix.

    The store accepts *request triples* ``(client, url, size)`` — the
    projection of a :class:`~repro.weblog.entry.LogEntry` the cluster
    metrics need — so worker batches stay small on the wire.
    """

    def __init__(self) -> None:
        self._clusters: Dict[Prefix, _ClusterState] = {}
        self._unclustered: Dict[int, int] = {}
        self.entries_applied = 0
        self.lookups_performed = 0

    def __len__(self) -> int:
        return len(self._clusters)

    @property
    def num_unclustered(self) -> int:
        return len(self._unclustered)

    # -- accumulation ----------------------------------------------------

    def apply_batch(
        self, triples: Sequence[Tuple[int, str, int]], table: PackedLpm
    ) -> int:
        """Fold one batch of ``(client, url, size)`` into the store.

        One batched LPM pass resolves every client, then a single
        Python loop updates the per-cluster accumulators.  A per-call
        index→state cache keeps the loop to one dict probe per entry
        (prefix materialisation happens once per distinct cluster per
        batch, not once per request).  Returns the number of entries
        applied.
        """
        indices = table.lookup_many([triple[0] for triple in triples])
        self.lookups_performed += len(triples)
        unclustered = self._unclustered
        states: Dict[int, _ClusterState] = {}
        states_get = states.get
        for (client, url, size), index in zip(triples, indices):
            state = states_get(index)
            if state is None:
                if index < 0:
                    unclustered[client] = unclustered.get(client, 0) + 1
                    continue
                state = states[index] = self._state_for(table, index)
            state.requests += 1
            state.total_bytes += size
            state.client_counts[client] = state.client_counts.get(client, 0) + 1
            state.urls.add(url)
        self.entries_applied += len(triples)
        return len(triples)

    def apply_packed(self, batch: "PackedBatch", table: PackedLpm) -> int:
        """Fold one :class:`~repro.engine.fastpath.PackedBatch` in.

        The flat-buffer twin of :meth:`apply_batch`: clients, sizes and
        interned URL ids stream straight out of their arrays, so no
        per-entry tuple ever exists on the worker.  Accumulation order
        and results are identical to :meth:`apply_batch` over
        ``batch.iter_triples()``.
        """
        if _sanitize.is_enabled():
            _sanitize.guard_batch(batch)
        indices = table.lookup_many(batch.addresses)
        count = len(indices)
        self.lookups_performed += count
        unclustered = self._unclustered
        urls = batch.urls
        states: Dict[int, _ClusterState] = {}
        states_get = states.get
        for client, url_id, size, index in zip(
            batch.addresses, batch.url_ids, batch.sizes, indices
        ):
            state = states_get(index)
            if state is None:
                if index < 0:
                    unclustered[client] = unclustered.get(client, 0) + 1
                    continue
                state = states[index] = self._state_for(table, index)
            state.requests += 1
            state.total_bytes += size
            state.client_counts[client] = state.client_counts.get(client, 0) + 1
            state.urls.add(urls[url_id])
        self.entries_applied += count
        return count

    def _state_for(self, table: PackedLpm, index: int) -> _ClusterState:
        """The accumulator for entry ``index``, created on first sight."""
        prefix = table.prefix(index)
        state = self._clusters.get(prefix)
        if state is None:
            value = table.value(index)
            state = self._clusters[prefix] = _ClusterState(
                source_kind=getattr(value, "source_kind", ""),
                source_name=getattr(value, "source_name", ""),
            )
        return state

    def apply_entries(self, entries: Iterable[Any], table: PackedLpm) -> int:
        """Convenience wrapper taking :class:`LogEntry`-shaped objects."""
        return self.apply_batch(
            [(entry.client, entry.url, entry.size) for entry in entries], table
        )

    def copy(self) -> "ClusterStore":
        """Independent copy (merge adopts accumulators by reference, so
        copy before merging long-lived stores together)."""
        clone = ClusterStore()
        clone._clusters = {
            prefix: _ClusterState(
                requests=state.requests,
                total_bytes=state.total_bytes,
                client_counts=dict(state.client_counts),
                urls=set(state.urls),
                source_kind=state.source_kind,
                source_name=state.source_name,
            )
            for prefix, state in self._clusters.items()
        }
        clone._unclustered = dict(self._unclustered)
        clone.entries_applied = self.entries_applied
        clone.lookups_performed = self.lookups_performed
        return clone

    def merge(self, other: "ClusterStore") -> "ClusterStore":
        """Fold ``other`` into this store (commutative up to snapshot).

        Accumulators absent from ``self`` are adopted by reference —
        cheap for transient worker partials; :meth:`copy` first when the
        source store lives on."""
        clusters = self._clusters
        for prefix, state in other._clusters.items():
            mine = clusters.get(prefix)
            if mine is None:
                clusters[prefix] = state
            else:
                mine.merge(state)
        unclustered = self._unclustered
        for client, count in other._unclustered.items():
            unclustered[client] = unclustered.get(client, 0) + count
        self.entries_applied += other.entries_applied
        self.lookups_performed += other.lookups_performed
        return self

    # -- incremental reclustering ----------------------------------------

    def reassign_clients(
        self, windows: Sequence[Tuple[int, int]], table: PackedLpm
    ) -> int:
        """Re-resolve only the clients a routing patch could have moved.

        ``windows`` is the sorted, disjoint list of inclusive address
        ranges a :meth:`PackedLpm.apply_delta` patch touched (see
        :attr:`~repro.engine.packed.PatchResult.windows`).  Every
        accumulated client whose address falls inside a window — and
        every unclustered client that might now match — is looked up
        once against the patched ``table``; assignments that changed
        migrate to their new cluster, carrying the client's request
        count and a proportional share of the old cluster's bytes.
        Clients outside the windows are untouched: their longest match
        cannot have changed, so this is the paper's self-correction run
        as a selective online pass instead of a wholesale rebuild.

        Returns the number of assignments that moved.
        """
        if not windows:
            return 0
        lows = [low for low, _ in windows]
        highs = [high for _, high in windows]
        candidates: List[Tuple[Optional[Prefix], int, int]] = []
        for prefix in sorted(self._clusters, key=Prefix.sort_key):
            # Windows are sorted and disjoint, so the last window that
            # starts at or below the cluster's top address is the only
            # one that can overlap it.
            slot = bisect_right(lows, prefix.last_address) - 1
            if slot < 0 or highs[slot] < prefix.network:
                continue
            state = self._clusters[prefix]
            for client in sorted(state.client_counts):
                if _in_windows(client, lows, highs):
                    candidates.append(
                        (prefix, client, state.client_counts[client])
                    )
        for client in sorted(self._unclustered):
            if _in_windows(client, lows, highs):
                candidates.append((None, client, self._unclustered[client]))
        if not candidates:
            return 0
        indices = table.lookup_many([client for _, client, _ in candidates])
        self.lookups_performed += len(candidates)
        moved = 0
        drained: Set[Prefix] = set()
        for (old_prefix, client, count), index in zip(candidates, indices):
            new_prefix = table.prefix(index) if index >= 0 else None
            if new_prefix == old_prefix:
                continue
            moved += 1
            share = 0
            if old_prefix is not None:
                state = self._clusters[old_prefix]
                if state.requests > 0:
                    share = state.total_bytes * count // state.requests
                state.requests -= count
                state.total_bytes -= share
                del state.client_counts[client]
                drained.add(old_prefix)
            else:
                del self._unclustered[client]
            if index >= 0:
                target = self._state_for(table, index)
                target.requests += count
                target.total_bytes += share
                target.client_counts[client] = (
                    target.client_counts.get(client, 0) + count
                )
            else:
                self._unclustered[client] = (
                    self._unclustered.get(client, 0) + count
                )
        for prefix in drained:
            state = self._clusters.get(prefix)
            if state is not None and not state.client_counts:
                del self._clusters[prefix]
        return moved

    # -- observation -----------------------------------------------------

    def snapshot(
        self, name: str = "engine", method: str = "network-aware"
    ) -> ClusterSet:
        """Materialise a :class:`ClusterSet` (same layout as
        :func:`repro.core.clustering.cluster_log` output: clusters in
        prefix order, client lists ascending)."""
        clusters: List[Cluster] = []
        for prefix, state in sorted(
            self._clusters.items(), key=lambda kv: kv[0].sort_key()
        ):
            clusters.append(
                Cluster(
                    identifier=prefix,
                    clients=sorted(state.client_counts),
                    requests=state.requests,
                    unique_urls=len(state.urls),
                    total_bytes=state.total_bytes,
                    source_kind=state.source_kind,
                    source_name=state.source_name,
                )
            )
        return ClusterSet(
            log_name=name,
            method=method,
            clusters=clusters,
            unclustered_clients=sorted(self._unclustered),
        )

    # -- persistence -----------------------------------------------------

    def _payload(self) -> Dict[str, Any]:
        return {
            "clusters": self._clusters,
            "unclustered": self._unclustered,
            "entries_applied": self.entries_applied,
            "lookups_performed": self.lookups_performed,
        }

    @classmethod
    def _from_payload(cls, payload: Dict[str, Any]) -> "ClusterStore":
        store = cls()
        store._clusters = payload["clusters"]
        store._unclustered = payload["unclustered"]
        store.entries_applied = payload["entries_applied"]
        store.lookups_performed = payload["lookups_performed"]
        return store

    def checkpoint(self, path: str, table_digest: str = "") -> None:
        """Persist this store alone (single-shard convenience)."""
        write_checkpoint(path, [self], table_digest=table_digest)

    @classmethod
    def restore(cls, path: str, table_digest: str = "") -> "ClusterStore":
        """Load a single-store checkpoint written by :meth:`checkpoint`."""
        stores, _ = read_checkpoint(path, table_digest=table_digest)
        if len(stores) != 1:
            raise CheckpointError(
                f"expected a single-store checkpoint, found {len(stores)} shards"
            )
        return stores[0]


def _table_sections(table: Any) -> Tuple[Optional[Dict[str, Any]], List[Any]]:
    """Describe ``table``'s raw buffers for the v4 trailing section.

    Returns ``(info, sections)``: a plain-types description dict (kind,
    digest, generation, per-section byte counts, and a CRC32 over the
    concatenated sections) plus the raw buffers themselves, in on-disk
    order — interval starts, owners, stride slots (empty for packed
    tables), then a once-pickled blob of the Python-object entry
    columns.  ``(None, [])`` when ``table`` is None or not a packed
    table — the checkpoint then carries no table section at all.
    """
    base = getattr(table, "table", table) if table is not None else None
    if not isinstance(base, PackedLpm):
        return None, []
    state = base.__getstate__()
    if isinstance(state[0], tuple):
        # StrideLpm state nests the packed layout under the overlay.
        (packed_state, slots, runs) = state
        kind = "stride"
    else:
        packed_state, slots, runs = state, None, None
        kind = "packed"
    starts, owners, prefixes, values, epoch, deltas_applied = packed_state
    starts_raw = memoryview(starts).cast("B")
    owners_raw = memoryview(owners).cast("B")
    slots_raw = memoryview(slots).cast("B") if slots is not None else memoryview(b"")
    entries_raw = pickle.dumps(
        (tuple(prefixes), tuple(values), runs),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    crc = zlib.crc32(starts_raw)
    crc = zlib.crc32(owners_raw, crc)
    crc = zlib.crc32(slots_raw, crc)
    crc = zlib.crc32(entries_raw, crc)
    info = {
        "kind": kind,
        "digest": base.digest(),
        "epoch": int(epoch),
        "deltas_applied": int(deltas_applied),
        "crc32": crc,
        "starts_bytes": starts_raw.nbytes,
        "owners_bytes": owners_raw.nbytes,
        "slots_bytes": slots_raw.nbytes,
        "entries_bytes": len(entries_raw),
    }
    return info, [starts_raw, owners_raw, slots_raw, entries_raw]


def _checkpoint_blobs(
    stores: Sequence[ClusterStore],
    table_digest: str,
    meta: Optional[Dict[str, Any]],
    routing_epoch: int,
    deltas_applied: int,
    table: Any,
) -> List[Any]:
    """All buffers of one checkpoint file, in write order.

    The first element is always the pickled envelope; with a table, an
    alignment pad and the raw table sections follow.  This is the one
    place the envelope dict is built.
    """
    payload = pickle.dumps(
        {
            "table_digest": table_digest,
            "meta": dict(meta or {}),
            "routing_epoch": routing_epoch,
            "deltas_applied": deltas_applied,
            "shards": [store._payload() for store in stores],
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    table_info, sections = _table_sections(table)
    envelope = {
        "magic": CHECKPOINT_MAGIC,
        "version": CHECKPOINT_VERSION,
        "crc32": zlib.crc32(payload),
        "payload": payload,
        "table": table_info,
    }
    head = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
    if table_info is None:
        return [head]
    pad = b"\x00" * ((-len(head)) % _TABLE_SECTION_ALIGN)
    return [head, pad] + sections


def serialize_checkpoint(
    stores: Sequence[ClusterStore],
    table_digest: str = "",
    meta: Optional[Dict[str, Any]] = None,
    routing_epoch: int = 0,
    deltas_applied: int = 0,
) -> bytes:
    """Serialise shard ``stores`` into the on-disk envelope bytes.

    The envelope is a pickled dict of plain types — magic, version, a
    CRC32, and the payload as an opaque ``bytes`` field — so a reader
    can validate identity, version, and integrity *before* unpickling
    any engine state.  (The optional v4 raw table section is only
    produced by :func:`write_checkpoint` with a ``table``; this
    envelope-only form records ``table: None``.)

    ``routing_epoch`` and ``deltas_applied`` record the live table's
    patch generation (see :attr:`PackedLpm.epoch`) so a resumed serve
    run can verify it replayed the same delta stream.
    """
    return _checkpoint_blobs(
        stores, table_digest, meta, routing_epoch, deltas_applied, None
    )[0]


def _write_atomic(path: str, blobs: Sequence[Any]) -> None:
    """Write ``blobs`` to ``path`` so readers see old-or-new, never torn.

    temp file in the same directory → flush → fsync → ``os.replace``.
    A crash before the replace leaves the previous file untouched (the
    orphaned ``.tmp`` is removed on the next successful write's error
    path or by the operator); a crash after is a completed write.
    Each blob is handed to ``write`` as-is, so raw ``memoryview``
    sections go straight from the table's buffers to the page cache —
    no intermediate ``bytes`` copy.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            for blob in blobs:
                handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    try:
        # Durability for the rename itself; not available everywhere.
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass


def write_checkpoint(
    path: str,
    stores: Sequence[ClusterStore],
    table_digest: str = "",
    meta: Optional[Dict[str, Any]] = None,
    routing_epoch: int = 0,
    deltas_applied: int = 0,
    table: Any = None,
) -> None:
    """Atomically write shard ``stores`` to ``path``.

    ``table_digest`` (see :meth:`PackedLpm.digest`) records which prefix
    set the accumulated lookups were resolved against; a restore that
    supplies a digest refuses to resume against a different table.

    With ``table`` (a packed table, optionally memo-wrapped) the file
    additionally carries the v4 raw table section: the interval buffers
    written straight from their ``memoryview``s, so
    :func:`read_checkpoint_table` can rebuild a zero-copy view over an
    ``mmap`` of the file instead of unpickling a fresh table.

    Under ``REPRO_SANITIZE=1`` every write is immediately re-read and
    re-verified through :func:`read_checkpoint` — the same CRC, version
    and digest gauntlet the resume path runs — so a checkpoint that
    could not be restored fails *now*, not hours later.
    """
    _write_atomic(
        path,
        _checkpoint_blobs(
            stores, table_digest, meta, routing_epoch, deltas_applied, table
        ),
    )
    if _sanitize.is_enabled():
        read_checkpoint(path, table_digest=table_digest)
        _sanitize.record_checkpoint_readback()


def read_checkpoint(
    path: str, table_digest: str = ""
) -> Tuple[List[ClusterStore], Dict[str, Any]]:
    """Load a checkpoint; returns ``(stores, meta)``.

    The error taxonomy distinguishes what went wrong so callers can
    react: :class:`CheckpointCorruptError` (truncated, bit-flipped, or
    foreign bytes — rereading can never succeed),
    :class:`CheckpointVersionError` (intact file, incompatible format
    version), :class:`CheckpointTableMismatchError` (resumed against a
    different routing table), and base :class:`CheckpointError` for a
    file that cannot be opened at all.

    .. warning::
       The CRC is an *integrity* check, not authentication — a crafted
       file passes it and its payload is then unpickled, executing
       whatever it contains.  Only load files you trust (see the
       module docstring).
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    try:
        # A stream, not ``loads``: v4 files append raw table sections
        # after the envelope pickle, and ``tell`` finds where they start.
        stream = io.BytesIO(raw)
        envelope = pickle.load(stream)
        head_len = stream.tell()
    except _UNPICKLE_ERRORS as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is corrupt or truncated "
            f"(envelope does not decode: {exc})"
        ) from exc
    if not isinstance(envelope, dict) or envelope.get("magic") != CHECKPOINT_MAGIC:
        raise CheckpointCorruptError(
            f"{path!r} is not a repro.engine checkpoint"
        )
    version = envelope.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointVersionError(
            f"checkpoint version {version!r} unsupported "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    payload = envelope.get("payload")
    if not isinstance(payload, bytes):
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is corrupt: envelope carries no payload"
        )
    if zlib.crc32(payload) != envelope.get("crc32"):
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is corrupt: payload CRC32 mismatch "
            "(truncated write or bit rot) — restore from an older "
            "checkpoint or rerun without --resume"
        )
    table_info = envelope.get("table")
    if table_info is not None:
        _verify_table_section(path, raw, head_len, table_info)
    try:
        document = pickle.loads(payload)
        stores = [
            ClusterStore._from_payload(part) for part in document["shards"]
        ]
        meta = dict(document.get("meta", {}))
        meta["routing_epoch"] = int(document.get("routing_epoch", 0))
        meta["deltas_applied"] = int(document.get("deltas_applied", 0))
        stored_digest = document.get("table_digest", "")
        # Surfaced for callers that restore the table itself from meta
        # (serve WAL recovery keeps a pickled ``table_state`` there) and
        # must prove it digests to what the checkpoint recorded.
        meta["table_digest"] = str(stored_digest)
    except _UNPICKLE_ERRORS as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} payload does not decode despite a valid "
            f"CRC ({exc}) — the file was not written by this code"
        ) from exc
    if table_digest and stored_digest and stored_digest != table_digest:
        raise CheckpointTableMismatchError(
            "checkpoint was taken against a different routing table "
            f"(stored digest {stored_digest[:12]}…, current {table_digest[:12]}…)"
        )
    return stores, meta


def _table_section_extent(
    head_len: int, info: Dict[str, Any]
) -> Tuple[int, int]:
    """(section start offset, expected file length) for a v4 table."""
    start = head_len + ((-head_len) % _TABLE_SECTION_ALIGN)
    total = (
        int(info.get("starts_bytes", 0))
        + int(info.get("owners_bytes", 0))
        + int(info.get("slots_bytes", 0))
        + int(info.get("entries_bytes", 0))
    )
    return start, start + total


def _verify_table_section(
    path: str, raw: bytes, head_len: int, info: Dict[str, Any]
) -> None:
    """Integrity-check a v4 raw table section (length and CRC32)."""
    start, expected_len = _table_section_extent(head_len, info)
    if len(raw) != expected_len:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is corrupt: table section is "
            f"{len(raw) - start} bytes where {expected_len - start} were "
            "recorded (truncated write) — restore from an older checkpoint"
        )
    if zlib.crc32(memoryview(raw)[start:]) != info.get("crc32"):
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is corrupt: table section CRC32 "
            "mismatch (truncated write or bit rot) — restore from an "
            "older checkpoint or rerun without --resume"
        )


def read_checkpoint_table(path: str) -> Optional[PackedLpm]:
    """Rebuild the checkpoint's table as a zero-copy view over ``mmap``.

    Returns ``None`` for checkpoints written without a table section.
    The returned table's interval buffers are ``memoryview`` casts over
    a read-only mapping of the file — nothing is copied and nothing is
    unpickled except the (small) Python-object entry columns — so
    opening a multi-hundred-MB checkpoint costs page faults, not a
    deserialisation pass.  The mapping lives exactly as long as the
    returned table: its views hold the only references.

    The view is lookup-complete but refuses in-place patching
    (:attr:`PackedLpm.is_view`); compile a fresh table to continue a
    delta stream.  Integrity (section length + CRC32) is verified
    before any buffer is trusted.
    """
    from repro.engine.fastpath import build_table_view

    try:
        handle = open(path, "rb")
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    with handle:
        try:
            envelope = pickle.load(handle)
            head_len = handle.tell()
        except _UNPICKLE_ERRORS as exc:
            raise CheckpointCorruptError(
                f"checkpoint {path!r} is corrupt or truncated "
                f"(envelope does not decode: {exc})"
            ) from exc
        if (
            not isinstance(envelope, dict)
            or envelope.get("magic") != CHECKPOINT_MAGIC
        ):
            raise CheckpointCorruptError(
                f"{path!r} is not a repro.engine checkpoint"
            )
        version = envelope.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointVersionError(
                f"checkpoint version {version!r} unsupported "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        info = envelope.get("table")
        if info is None:
            return None
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"cannot map checkpoint {path!r}: {exc}"
            ) from exc
    view = memoryview(mapped)
    start, expected_len = _table_section_extent(head_len, info)
    if len(view) != expected_len:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is corrupt: table section is "
            f"{len(view) - start} bytes where {expected_len - start} were "
            "recorded (truncated write) — restore from an older checkpoint"
        )
    if zlib.crc32(view[start:]) != info.get("crc32"):
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is corrupt: table section CRC32 "
            "mismatch (truncated write or bit rot) — restore from an "
            "older checkpoint or rerun without --resume"
        )
    starts_end = start + int(info.get("starts_bytes", 0))
    owners_end = starts_end + int(info.get("owners_bytes", 0))
    slots_end = owners_end + int(info.get("slots_bytes", 0))
    entries_end = slots_end + int(info.get("entries_bytes", 0))
    kind = str(info.get("kind", "packed"))
    try:
        entries = pickle.loads(view[slots_end:entries_end])
    except _UNPICKLE_ERRORS as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} table entries do not decode despite a "
            f"valid CRC ({exc}) — the file was not written by this code"
        ) from exc
    starts = view[start:starts_end].cast("Q")
    owners = view[starts_end:owners_end].cast("q")
    slots = view[owners_end:slots_end].cast("q") if kind == "stride" else None
    return build_table_view(
        kind,
        starts,
        owners,
        slots,
        entries,
        int(info.get("epoch", 0)),
        int(info.get("deltas_applied", 0)),
    )
