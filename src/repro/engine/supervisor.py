"""Supervision: retries, backoff, quarantine, graceful degradation.

:class:`SupervisedEngine` wraps a
:class:`~repro.engine.shard.ShardedClusterEngine` and turns its
all-or-nothing chunk guarantee into a recovery policy:

* a failed chunk (worker exception, dead worker, dispatch hang) is
  re-dispatched with bounded retries and exponential backoff — the
  engine already terminated the broken pool, so each retry starts a
  fresh one;
* a chunk that exhausts ``max_retries`` is **quarantined**: its triples
  go to a dead-letter file (JSON lines, replayable) and the loss is
  accounted in :class:`~repro.engine.metrics.EngineMetrics` — one
  poisonous chunk cannot abort a multi-hour run;
* when failures are *consecutive* — the pool keeps dying no matter
  what we dispatch — the supervisor **degrades**: it abandons worker
  processes and finishes the run inline in the driver.  Degraded output
  is bit-for-bit identical to a healthy run (same code path the tests
  use), just slower; a :class:`~repro.errors.DegradedModeWarning` and
  ``metrics.degraded`` record that it happened.
* checkpoints are **verified after writing**: the supervisor reads the
  file straight back, and a checkpoint that fails its CRC (bad disk,
  injected corruption) is rewritten instead of being discovered — as a
  resume failure — hours later.

The happy path adds one try/except and one counter reset per chunk.
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional, Sequence

from repro.core.clustering import ClusterSet
from repro.engine.metrics import EngineMetrics
from repro.engine.shard import ShardedClusterEngine, Triple, _chunks
from repro.engine.state import CheckpointCorruptError, read_checkpoint
from repro.errors import (
    ChunkQuarantinedError,
    DegradedModeWarning,
    SupervisionError,
    WorkerCrashError,
)

__all__ = ["SupervisorConfig", "SupervisedEngine"]


@dataclass
class SupervisorConfig:
    """Recovery policy knobs.

    ``max_retries`` counts *re*-dispatches of one chunk after its first
    failure.  Retry ``n`` sleeps ``backoff_base * 2**(n-1)`` seconds,
    capped at ``backoff_cap`` (tests pass ``backoff_base=0``).
    ``degrade_after`` is the consecutive-failure threshold at which the
    pool is declared unsalvageable; ``allow_degraded=False`` turns that
    safety net off (CLI ``--no-degrade``).  ``quarantine_path=None``
    still quarantines — counted in metrics — but keeps nothing on disk;
    ``allow_quarantine=False`` makes an exhausted chunk fatal instead.
    """

    max_retries: int = 2
    backoff_base: float = 0.1
    backoff_cap: float = 5.0
    degrade_after: int = 3
    allow_degraded: bool = True
    quarantine_path: Optional[str] = None
    allow_quarantine: bool = True
    verify_checkpoints: bool = True
    checkpoint_attempts: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries!r}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be >= 0")
        if self.degrade_after < 1:
            raise ValueError(
                f"degrade_after must be >= 1: {self.degrade_after!r}"
            )
        if self.checkpoint_attempts < 1:
            raise ValueError(
                f"checkpoint_attempts must be >= 1: {self.checkpoint_attempts!r}"
            )

    def backoff_seconds(self, retry: int) -> float:
        """Sleep before retry ``retry`` (1-based): exponential, capped."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * 2 ** (retry - 1))


class SupervisedEngine:
    """A :class:`ShardedClusterEngine` that survives its own workers.

    Usage mirrors the raw engine::

        with SupervisedEngine(engine, SupervisorConfig(max_retries=3)) as sup:
            sup.ingest(entries)
            clusters = sup.snapshot()

    ``sleep`` is injectable so tests can assert the backoff schedule
    without waiting it out.
    """

    def __init__(
        self,
        engine: ShardedClusterEngine,
        config: Optional[SupervisorConfig] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.engine = engine
        self.config = config or SupervisorConfig()
        self._sleep = sleep
        #: Checkpoint-site faults stay armed even after degradation
        #: clears the engine's worker-fault injector.
        self._injector = engine.injector
        self._consecutive_failures = 0
        self._chunk_index = 0

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "SupervisedEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.engine.__exit__(*exc_info)

    def close(self) -> None:
        self.engine.close()

    # -- delegation ------------------------------------------------------

    @property
    def metrics(self) -> EngineMetrics:
        return self.engine.metrics

    @property
    def entries_ingested(self) -> int:
        return self.engine.entries_ingested

    @property
    def degraded(self) -> bool:
        return self.engine.metrics.degraded

    @property
    def resume_meta(self) -> Dict[str, Any]:
        return self.engine.resume_meta

    def snapshot(self, name: Optional[str] = None) -> ClusterSet:
        return self.engine.snapshot(name)

    # -- supervised ingestion --------------------------------------------

    def ingest(self, entries: Iterable[Any]) -> int:
        """Consume log entries with the full recovery policy applied.

        Returns the number of entries *applied*; quarantined entries
        are excluded here and counted in
        ``metrics.entries_quarantined``.
        """
        return self.ingest_triples(
            (entry.client, entry.url, entry.size) for entry in entries
        )

    def ingest_triples(self, triples: Iterable[Triple]) -> int:
        total = 0
        for chunk in _chunks(triples, self.engine.config.chunk_size):
            total += self._apply_with_recovery(chunk)
        return total

    def _apply_with_recovery(self, chunk: Sequence[Triple]) -> int:
        """Apply one chunk: retry → degrade → quarantine, in that order.

        Safe because :meth:`ShardedClusterEngine.apply_chunk` is
        all-or-nothing: a failed attempt applied nothing, so the same
        chunk can be re-dispatched (or re-applied inline after
        degradation) without double counting.
        """
        self._chunk_index += 1
        attempts = 0
        while True:
            try:
                applied = self.engine.apply_chunk(chunk)
                self._consecutive_failures = 0
                return applied
            except WorkerCrashError as exc:
                attempts += 1
                self._consecutive_failures += 1
                stalled = (
                    self._consecutive_failures >= self.config.degrade_after
                )
                if stalled and self.config.allow_degraded and not self.degraded:
                    self._degrade(exc)
                    continue
                if (
                    stalled
                    and not self.config.allow_degraded
                    and not self.config.allow_quarantine
                ):
                    # No recovery lever is left: the pool keeps dying
                    # and the operator disallowed both the inline
                    # fallback and dropping chunks.  Distinct from
                    # ChunkQuarantinedError (one poisonous chunk): this
                    # is the *run* being unable to make progress.
                    raise SupervisionError(
                        f"worker pool keeps dying "
                        f"({self._consecutive_failures} consecutive dispatch "
                        "failures) and both degraded fallback and quarantine "
                        "are disallowed"
                    ) from exc
                if attempts <= self.config.max_retries:
                    self.metrics.record_retry()
                    self._sleep(self.config.backoff_seconds(attempts))
                    continue
                if self.config.allow_quarantine:
                    self._quarantine(chunk, exc)
                    return 0
                raise ChunkQuarantinedError(
                    f"chunk #{self._chunk_index} failed "
                    f"{attempts} times and quarantine is disabled"
                ) from exc

    def _degrade(self, cause: WorkerCrashError) -> None:
        """Abandon worker processes; finish the run inline.

        The engine's accumulated shard state is untouched — only the
        dispatch mechanism changes — so the final snapshot is identical
        to what a healthy pooled run produces.
        """
        self.engine.close(terminate=True)
        self.engine.config.use_processes = False
        # Workers no longer exist, so worker faults can no longer fire.
        self.engine.injector = None
        self.metrics.record_degraded()
        warnings.warn(
            "worker pool keeps dying "
            f"({self._consecutive_failures} consecutive dispatch failures; "
            f"last: {cause}); degrading to inline single-process ingestion",
            DegradedModeWarning,
            stacklevel=3,
        )

    def _quarantine(self, chunk: Sequence[Triple], cause: Exception) -> None:
        """Send ``chunk`` to the dead-letter file with full accounting."""
        # A chunk that exhausted its retries means the shm worker group (if
        # one is live) has crashed repeatedly over this exact input: tear it
        # down and unlink its segments now rather than carrying suspect
        # workers into the next chunk.  The next dispatch re-publishes.
        self.engine.release_shm()
        self.metrics.record_quarantine(len(chunk))
        if self.config.quarantine_path is None:
            return
        record = {
            "chunk": self._chunk_index,
            "entries": len(chunk),
            "error": str(cause),
            "triples": [[client, url, size] for client, url, size in chunk],
        }
        with open(self.config.quarantine_path, "a") as handle:
            handle.write(json.dumps(record) + "\n")

    # -- verified checkpoints --------------------------------------------

    def checkpoint(
        self, path: str, extra_meta: Optional[Dict[str, Any]] = None
    ) -> None:
        """Write a checkpoint and prove it reads back.

        Any armed checkpoint fault (``checkpoint.corrupt`` /
        ``checkpoint.truncate``) is applied *between* the write and the
        verification, exactly where real bit rot would land.  A
        checkpoint that fails verification is rewritten, up to
        ``checkpoint_attempts`` times.
        """
        for attempt in range(1, self.config.checkpoint_attempts + 1):
            self.engine.checkpoint(path, extra_meta=extra_meta)
            if self._injector is not None:
                self._injector.damage_file(path)
            if not self.config.verify_checkpoints:
                return
            try:
                read_checkpoint(path, table_digest=self.engine.table.digest())
                return
            except CheckpointCorruptError:
                if attempt == self.config.checkpoint_attempts:
                    raise
                self.metrics.record_checkpoint_rewrite()
