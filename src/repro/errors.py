"""The structured error taxonomy for pipeline robustness.

The ingestion pipeline distinguishes three broad failure families, and
the recovery machinery (:mod:`repro.engine.supervisor`) keys off the
*class*, not the message:

* **Persistent-state failures** — a checkpoint file that is truncated,
  bit-flipped, foreign, or from an incompatible format version.  These
  subclass :class:`CheckpointError`; :class:`CheckpointCorruptError`
  means the bytes on disk are damaged (retryable by rewriting, never by
  rereading), while :class:`CheckpointVersionError` means the file is
  intact but this build cannot read it (not retryable at all — the
  operator must migrate or discard it).
* **Worker failures** — a shard worker raised, was killed, or stopped
  responding.  :class:`WorkerCrashError` is what the engine surfaces;
  the supervisor retries the failed chunk with backoff and quarantines
  it after ``max_retries`` (:class:`ChunkQuarantinedError` when
  quarantining itself is disallowed).
* **Dirty input** — malformed log or routing-dump lines.  These are
  counted-and-skipped by default (see ``weblog.parser.ParseReport`` and
  ``bgp.formats.DumpReport``); the guard classes here fire only when an
  explicit ``max_errors`` budget is exhausted.

:class:`DegradedModeWarning` is a :class:`UserWarning`, not an error:
it marks the supervisor abandoning the worker pool and finishing the
run inline — slower, but bit-for-bit the same output.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointVersionError",
    "CheckpointTableMismatchError",
    "WorkerCrashError",
    "ChunkQuarantinedError",
    "SupervisionError",
    "ServeProtocolError",
    "ServeLineTooLongError",
    "ServeDisconnectError",
    "WalError",
    "WalCorruptError",
    "WalSealedError",
    "InjectedFault",
    "SanitizeError",
    "DegradedModeWarning",
    "OverloadShedWarning",
]


class ReproError(Exception):
    """Base class for every structured error this package raises."""


# -- persistent state ------------------------------------------------------


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file is missing, foreign, damaged, or unreadable.

    Base of the checkpoint family: catching this catches every
    checkpoint failure; catch the subclasses to react differently to
    corruption versus version skew.  (Subclasses ``RuntimeError`` for
    compatibility with pre-taxonomy callers.)
    """


class CheckpointCorruptError(CheckpointError):
    """The checkpoint's bytes are damaged: truncated, bit-flipped, or
    not a checkpoint at all.  The file can never be read successfully;
    recovery means rewriting it (or resuming from an older one)."""


class CheckpointVersionError(CheckpointError):
    """The checkpoint is intact but written by an incompatible format
    version (older or newer than this build reads)."""


class CheckpointTableMismatchError(CheckpointError):
    """The checkpoint was taken against a different routing table than
    the one the resume supplies."""


# -- workers ---------------------------------------------------------------


class WorkerCrashError(ReproError, RuntimeError):
    """A shard worker died or raised while processing a batch.

    The chunk that was in flight was *not* applied (per-chunk merges
    are all-or-nothing), so re-dispatching it is always safe.
    """


class ChunkQuarantinedError(WorkerCrashError):
    """A chunk exhausted its retry budget and quarantining is disabled
    (``--no-degrade``-style strict runs)."""


class SupervisionError(ReproError, RuntimeError):
    """The supervisor cannot make progress at all: the pool keeps dying
    and degraded (inline) fallback has been disallowed."""


# -- live serving ----------------------------------------------------------


class ServeProtocolError(ReproError, ValueError):
    """An ndjson event on the serve stream does not decode.

    Raised by :mod:`repro.serve.protocol` for lines that are not JSON
    objects, carry an unknown ``type``, or are missing required fields.
    The daemon counts-and-skips these under its ``--max-errors`` budget,
    exactly as the batch pipeline treats malformed log lines.
    """


class ServeLineTooLongError(ServeProtocolError):
    """An event line exceeded the stream's line-length budget.

    Raised by :class:`repro.serve.protocol.LineSplitter` when a line
    grows past ``max_line_bytes`` — whether or not its newline ever
    arrives, so a hostile or broken client cannot balloon daemon memory
    by never terminating a line.  The oversized line's bytes are
    discarded and the error is counted under ``--max-errors``.
    """


class ServeDisconnectError(ServeProtocolError):
    """A serve client vanished mid-frame.

    The connection dropped (reset, or an injected ``serve.disconnect``)
    while a partial event line was still buffered.  The torn frame is
    discarded and counted under ``--max-errors``; the accept loop keeps
    serving — daemon state persists across connections.
    """


# -- write-ahead log -------------------------------------------------------


class WalError(ReproError, RuntimeError):
    """Base of the write-ahead-log family (:mod:`repro.serve.wal`)."""


class WalCorruptError(WalError):
    """The WAL's bytes are damaged beyond the torn-tail rule.

    A torn *tail* — an incomplete or CRC-failing frame at the very end
    of the newest segment — is expected after a crash and is repaired
    silently (truncate at the first bad frame, count it).  This error
    means something worse: a bad frame in the *middle* of the log, a
    segment with a mangled header, a gap in the segment sequence, or
    event frames after a seal.  Recovery cannot trust anything past the
    damage, so the daemon refuses to resume from it.
    """


class WalSealedError(WalError):
    """An append was attempted on a sealed write-ahead log.

    :meth:`~repro.serve.wal.WalWriter.seal` marks a graceful shutdown;
    a sealed writer accepts no further frames.  Resuming a sealed log
    from disk is fine — recovery starts a fresh segment — but the
    in-process writer object is done for good.
    """


# -- fault injection -------------------------------------------------------


class InjectedFault(ReproError, RuntimeError):
    """An artificial failure raised by :mod:`repro.faults`.

    Deliberately *not* a subclass of :class:`WorkerCrashError`: recovery
    code must classify it by injection site, exactly as it would a real
    fault, and anything that escapes uncaught is a test failure.
    """

    def __init__(self, site: str, message: str = "") -> None:
        super().__init__(message or f"injected fault at {site!r}")
        self.site = site


# -- runtime sanitizers ----------------------------------------------------


class SanitizeError(ReproError, RuntimeError):
    """A ``REPRO_SANITIZE=1`` invariant check failed at runtime.

    Raised by :mod:`repro.analysis.sanitize` when an armed invariant —
    a stride/packed LPM cross-check, a :class:`PackedBatch` consistency
    guard — observes a violation.  This is never a data error: it means
    the engine's own internal contracts drifted, so the run must stop
    rather than produce silently wrong clusters.
    """


# -- warnings --------------------------------------------------------------


class DegradedModeWarning(UserWarning):
    """The supervisor gave up on the worker pool and is finishing the
    run inline in the driver process (same output, reduced throughput)."""


class OverloadShedWarning(UserWarning):
    """The serve daemon crossed its ingress high watermark and began
    shedding *log* events (routing deltas are never shed — correctness
    of the table outranks completeness of the request counts).  Every
    dropped request is accounted in the ``shed_events`` counter."""
