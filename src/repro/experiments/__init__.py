"""Experiment harness: regenerates every table and figure of the
paper's evaluation.  See :mod:`repro.experiments.runner` for the CLI
and DESIGN.md for the per-experiment index."""

from repro.experiments import (  # noqa: F401  (re-exported for the runner)
    calib,
    ext_as,
    ext_aspath,
    ext_coverage,
    ext_census,
    ext_coop,
    ext_multiserver,
    ext_placement,
    ext_realtime,
    ext_selective,
    fig1,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig9,
    fig10,
    fig11,
    fig12,
    sec32,
    sec33,
    sec35,
    sec36,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.context import ExperimentContext

__all__ = ["ExperimentContext"]
