"""Calibration report: the synthetic world vs. the paper's targets.

Not a paper artifact — a transparency report.  Every number the
substitutions in DESIGN.md promise to preserve is measured here against
its paper target, so drift from retuning is visible in one place.
"""

from __future__ import annotations

import random

from repro.bgp.sources import source_by_name
from repro.core.metrics import prefix_length_histogram
from repro.experiments.context import ExperimentContext
from repro.util.tables import render_table

NAME = "calib"
TITLE = "World calibration vs paper targets"
PAPER = "Each row: a quantity the substitution promises to preserve."


def run(ctx: ExperimentContext) -> str:
    rows = []

    # NAP-table /24 share and short/long asymmetry (Fig 1).
    snapshot = ctx.factory.snapshot(source_by_name("MAE-WEST"))
    histogram = snapshot.prefix_length_histogram()
    total = sum(histogram.values())
    shorter = sum(c for length, c in histogram.items() if length < 24)
    longer = sum(c for length, c in histogram.items() if length > 24)
    rows.append(["NAP /24 share", "~52%", f"{histogram.get(24, 0) / total:.0%}"])
    rows.append(["NAP short:long non-/24 ratio", ">> 1",
                 f"{shorter / max(1, longer):.0f}:1"])

    # Client resolvability (§3.3's ~50 %).
    log = ctx.log("nagano").log
    clients = log.clients()
    rng = random.Random(ctx.seed)
    sample = rng.sample(clients, min(800, len(clients)))
    resolvable = sum(1 for c in sample if ctx.dns.is_resolvable(c))
    rows.append(["client nslookup resolvability", "~50%",
                 f"{resolvable / len(sample):.0%}"])

    # Clusterable-client coverage (§3.2.2's 99.9 %).
    clusters = ctx.clusters("nagano")
    rows.append(["clusterable clients", ">= 99.9%",
                 f"{clusters.clustered_fraction:.2%}"])

    # Sampled-cluster /24 share (Table 3's ~49 %).
    lengths = prefix_length_histogram(clusters)
    cluster_total = sum(lengths.values())
    rows.append(["cluster-prefix /24 share", "~49%",
                 f"{lengths.get(24, 0) / cluster_total:.0%}"])
    rows.append(["cluster-prefix length range", "8 - 29",
                 f"{min(lengths)} - {max(lengths)}"])

    # Merged table vs biggest single source (§3.1.2: merging helps).
    oregon = len(ctx.factory.snapshot(source_by_name("OREGON")))
    rows.append(["merged / biggest single table", "> 1",
                 f"{len(ctx.merged_table) / oregon:.1f}x"])

    table = render_table(["quantity", "paper target", "measured"], rows,
                         title=TITLE)
    return f"{table}\n\n{PAPER}"
