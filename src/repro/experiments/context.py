"""Shared experiment context.

Every reproduced table/figure needs some subset of: the ground-truth
topology, the fourteen-source snapshot factory, the merged prefix
table, the preset logs, and their clusterings.  Building these once and
caching them makes ``repro-experiments all`` run each stage exactly
once, like the paper's pipeline did.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bgp.synth import SnapshotFactory
from repro.bgp.table import MergedPrefixTable
from repro.core.clustering import METHOD_NETWORK_AWARE, ClusterSet, cluster_log
from repro.simnet.dns import SimulatedDns
from repro.simnet.topology import Topology, TopologyConfig, generate_topology
from repro.simnet.traceroute import SimulatedTraceroute
from repro.weblog.presets import make_log
from repro.weblog.synth import SyntheticLog

__all__ = ["ExperimentContext"]


class ExperimentContext:
    """Lazily-built, memoised pipeline stages for the harness."""

    def __init__(self, seed: int = 2000, scale: float = 1.0) -> None:
        self.seed = seed
        self.scale = scale
        self._topology: Optional[Topology] = None
        self._factory: Optional[SnapshotFactory] = None
        self._merged: Optional[MergedPrefixTable] = None
        self._dns: Optional[SimulatedDns] = None
        self._traceroute: Optional[SimulatedTraceroute] = None
        self._logs: Dict[str, SyntheticLog] = {}
        self._clusterings: Dict[str, ClusterSet] = {}

    @property
    def topology(self) -> Topology:
        if self._topology is None:
            self._topology = generate_topology(TopologyConfig(seed=self.seed))
        return self._topology

    @property
    def factory(self) -> SnapshotFactory:
        if self._factory is None:
            self._factory = SnapshotFactory(self.topology)
        return self._factory

    @property
    def merged_table(self) -> MergedPrefixTable:
        if self._merged is None:
            self._merged = self.factory.merged()
        return self._merged

    @property
    def dns(self) -> SimulatedDns:
        if self._dns is None:
            self._dns = SimulatedDns(self.topology)
        return self._dns

    @property
    def traceroute(self) -> SimulatedTraceroute:
        if self._traceroute is None:
            self._traceroute = SimulatedTraceroute(self.topology, self.dns)
        return self._traceroute

    def log(self, preset: str) -> SyntheticLog:
        if preset not in self._logs:
            self._logs[preset] = make_log(
                self.topology, preset, scale=self.scale, seed=self.seed
            )
        return self._logs[preset]

    def clusters(self, preset: str, method: str = METHOD_NETWORK_AWARE) -> ClusterSet:
        key = f"{preset}:{method}"
        if key not in self._clusterings:
            table = self.merged_table if method == METHOD_NETWORK_AWARE else None
            self._clusterings[key] = cluster_log(
                self.log(preset).log, table, method=method
            )
        return self._clusterings[key]
