"""Extension: AS-level cluster grouping (§4.1.4 / conclusion's ongoing
work, implemented).

Groups the Nagano clusters by the origin AS of their identifying route
(zero probes) and compares against the traceroute-based second-level
clustering of §3.6; also lists merge candidates — same-AS adjacent
clusters that are likely fragments of one network.
"""

from __future__ import annotations

from repro.core.asclusters import as_merge_candidates, group_clusters_by_as
from repro.core.netclusters import cluster_networks
from repro.experiments.context import ExperimentContext
from repro.util.tables import render_table

NAME = "ext-as"
TITLE = "AS-level grouping of client clusters (probe-free)"
PAPER = (
    "Paper (ongoing work): use AS information to reduce the error "
    "ratio; §4.1.4 groups proxies into proxy clusters by AS."
)


def run(ctx: ExperimentContext) -> str:
    clusters = ctx.clusters("nagano")
    by_as = group_clusters_by_as(clusters, ctx.merged_table)
    by_path = cluster_networks(clusters, ctx.traceroute, level=3)

    parts = [TITLE, PAPER, ""]
    parts.append(
        f"{len(clusters)} clusters -> {len(by_as)} AS groups "
        f"(0 probes) vs {len(by_path)} AS-core path groups "
        f"({by_path.probes_used} probes)"
    )
    rows = [
        [f"AS{group.asn}" if group.asn > 0 else "(unattributed)",
         group.num_clusters, group.num_clients, f"{group.requests:,}"]
        for group in by_as.sorted_by_requests()[:10]
    ]
    parts.append("")
    parts.append(render_table(
        ["origin AS", "clusters", "clients", "requests"],
        rows,
        title="top AS groups by demand",
    ))
    candidates = as_merge_candidates(clusters, ctx.merged_table)
    parts.append("")
    parts.append(
        f"merge candidates (same-AS adjacent cluster pairs): "
        f"{len(candidates)}"
    )
    for left, right in candidates[:6]:
        parts.append(f"  {left.identifier.cidr} + {right.identifier.cidr}")
    return "\n".join(parts)
