"""Extension: AS-path analysis of the collected snapshots (§3.1.1's
"AS number and path information can also provide hints").

Mines the AS-level graph from the BGP snapshots' paths, reports the
path-length distribution and the transit hubs, and measures AS-hop
distances from the busiest client clusters' origin ASes to a candidate
server AS — a probe-free closeness signal for placement.
"""

from __future__ import annotations

from repro.bgp.aspath import build_as_graph, path_length_histogram
from repro.bgp.table import KIND_REGISTRY
from repro.core.asclusters import group_clusters_by_as
from repro.experiments.context import ExperimentContext
from repro.util.ascii_plot import ascii_histogram
from repro.util.tables import render_table

NAME = "ext-aspath"
TITLE = "AS-path graph: path lengths, hubs, and cluster-to-origin distances"
PAPER = (
    "Paper (§3.1.1): routing tables carry AS paths; the AS number and "
    "path information hint at client location/closeness."
)


def run(ctx: ExperimentContext) -> str:
    tables = [
        ctx.factory.snapshot(source)
        for source in ctx.factory.sources
        if source.kind != KIND_REGISTRY
    ]
    graph = build_as_graph(tables)
    lengths = path_length_histogram(tables)

    parts = [TITLE, PAPER, ""]
    ordered_lengths = sorted(lengths)
    parts.append(
        ascii_histogram(
            [str(length) for length in ordered_lengths],
            [lengths[length] for length in ordered_lengths],
            title="AS-path length distribution (all BGP snapshots)",
        )
    )
    parts.append("")
    hub_rows = [
        [f"AS{asn}", degree,
         ctx.topology.ases[asn].kind if asn in ctx.topology.ases else "?"]
        for asn, degree in graph.hubs(5)
    ]
    parts.append(render_table(
        ["AS", "degree", "kind"], hub_rows, title="transit hubs by degree"
    ))

    # Probe-free closeness: AS-hop distance from busy client ASes to a
    # candidate origin AS.
    clusters = ctx.clusters("nagano")
    by_as = group_clusters_by_as(clusters, ctx.merged_table)
    origin_asn = graph.hubs(1)[0][0]
    rows = []
    for group in by_as.sorted_by_requests()[:8]:
        if group.asn <= 0:
            continue
        distance = graph.distance(group.asn, origin_asn)
        rows.append(
            [f"AS{group.asn}", f"{group.requests:,}",
             "-" if distance is None else distance]
        )
    parts.append("")
    parts.append(render_table(
        ["client AS", "requests", f"AS hops to AS{origin_asn}"],
        rows,
        title="busiest client ASes vs candidate origin",
    ))
    return "\n".join(parts)
