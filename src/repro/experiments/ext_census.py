"""Extension: the §4.1.1 client census, with hidden-client estimates.

Classifies every client of the Sun log as visible / spider / proxy and
estimates the users hidden behind each detected proxy from its
User-Agent mix and demand.
"""

from __future__ import annotations

from repro.core.hidden import census
from repro.core.spiders import classify_clients
from repro.experiments.context import ExperimentContext
from repro.util.tables import render_table

NAME = "ext-census"
TITLE = "Client census: visible / hidden / spiders (Sun log)"
PAPER = (
    "Paper (§4.1.1): clients are visible clients, hidden clients "
    "(behind proxies), or spiders; hidden clients are invisible to the "
    "server but matter for proxy placement."
)


def run(ctx: ExperimentContext) -> str:
    log = ctx.log("sun").log
    clusters = ctx.clusters("sun")
    detections = classify_clients(log, clusters)
    result = census(log, detections)

    parts = [TITLE, PAPER, "", result.describe()]
    if result.estimates:
        rows = [
            [
                estimate.proxy_client,
                f"{estimate.proxy_requests:,}",
                estimate.user_agent_lower_bound,
                estimate.demand_based_estimate,
                estimate.estimated_users,
            ]
            for estimate in result.estimates
        ]
        parts.append("")
        parts.append(render_table(
            ["proxy", "requests", "UA lower bound", "demand estimate",
             "estimated users"],
            rows,
            title="hidden clients behind each detected proxy",
        ))
    parts.append("")
    parts.append(
        f"effective user population: {result.total_effective_users:,} "
        f"(visible {result.visible_clients:,} + hidden "
        f"{result.estimated_hidden_clients:,})"
    )
    return "\n".join(parts)
