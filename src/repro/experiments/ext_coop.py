"""Extension: co-operative proxy clusters (§4.1.4's co-operation).

Replays the Nagano trace with per-cluster proxies grouped into
AS+geography sites, with and without ICP-style sibling lookups, at two
per-proxy cache sizes — measuring what the paper's "would co-operate
with each other" buys.
"""

from __future__ import annotations

from repro.cache.cooperative import CooperativeSimulator
from repro.core.placement import plan_placement
from repro.experiments.context import ExperimentContext
from repro.simnet.geo import GeoModel
from repro.util.tables import render_table

NAME = "ext-coop"
TITLE = "Co-operative proxy clusters vs isolated proxies"
PAPER = (
    "Paper (§4.1.4): proxies serving one client cluster form a proxy "
    "cluster and co-operate; grouping by AS + geography is the "
    "practical variant."
)


def run(ctx: ExperimentContext) -> str:
    synthetic = ctx.log("nagano")
    clusters = ctx.clusters("nagano")
    plan = plan_placement(clusters, ctx.topology, GeoModel(ctx.topology))
    simulator = CooperativeSimulator.from_placement(
        synthetic.log, synthetic.catalog, clusters, plan
    )
    rows = []
    for cache_bytes in (500_000, 5_000_000):
        with_coop = simulator.run(cache_bytes=cache_bytes, cooperate=True)
        without = simulator.run(cache_bytes=cache_bytes, cooperate=False)
        rows.append(
            [
                f"{cache_bytes / 1e6:g} MB",
                f"{without.hit_ratio:.3f}",
                f"{with_coop.hit_ratio:.3f}",
                f"{with_coop.sibling_hits:,}",
                f"{100 * (with_coop.hit_ratio - without.hit_ratio):+.1f}%",
            ]
        )
    table = render_table(
        ["per-proxy cache", "isolated hit", "co-op hit", "sibling hits",
         "co-op gain"],
        rows,
        title=TITLE,
    )
    sample = simulator.run(cache_bytes=500_000, cooperate=True)
    return (
        f"{table}\n\n{sample.describe()}\n{PAPER}"
    )
