"""Extension: address-space coverage of the snapshot collection.

Quantifies §3.1.2's "none of them contain complete information" in
addresses: per-source coverage of the allocated space, the cumulative
union as sources merge (why collecting fourteen tables pays), and the
space only the registry dumps reach.
"""

from __future__ import annotations

from repro.bgp.coverage import coverage_of, marginal_coverage
from repro.bgp.table import KIND_REGISTRY
from repro.experiments.context import ExperimentContext
from repro.net.prefixset import PrefixSet
from repro.util.tables import render_table

NAME = "ext-coverage"
TITLE = "Address-space coverage per source and cumulatively"
PAPER = (
    "Paper (§3.1.2): no single table sees every route; merging tables "
    "and adding registry dumps completes the picture (99% -> 99.9%)."
)


def run(ctx: ExperimentContext) -> str:
    reference = PrefixSet(a.prefix for a in ctx.topology.allocations)
    bgp_tables = [
        ctx.factory.snapshot(source)
        for source in ctx.factory.sources
        if source.kind != KIND_REGISTRY
    ]
    # Merge biggest-first so the cumulative column is easy to read.
    bgp_tables.sort(key=len, reverse=True)
    rows = [
        [name, f"{own:.1%}", f"{cumulative:.1%}"]
        for name, own, cumulative in marginal_coverage(bgp_tables, reference)
    ]
    table = render_table(
        ["source", "own coverage", "cumulative"],
        rows,
        title=TITLE,
    )
    union = PrefixSet(
        prefix for t in bgp_tables for prefix in t.prefixes()
    )
    bgp_only = coverage_of(union, reference)
    registry = ctx.factory.snapshot(
        next(s for s in ctx.factory.sources if s.kind == KIND_REGISTRY)
    )
    full = coverage_of(list(union) + registry.prefixes(), reference)
    return (
        f"{table}\n\n"
        f"BGP union: {bgp_only.describe()}\n"
        f"+ registry: {full.describe()}\n{PAPER}"
    )
