"""Extension: multi-server caching simulation (§4.1.5's closing
remark, implemented).

Merges the Nagano and EW3 logs chronologically and replays them against
shared per-cluster proxies, reporting per-origin hit ratios — the
"multiple servers and multiple proxies" setup the paper sketches.
"""

from __future__ import annotations

from repro.cache.multiserver import MultiServerSimulator, OriginSpec, merge_logs
from repro.core.clustering import cluster_log
from repro.experiments.context import ExperimentContext
from repro.util.tables import render_table

NAME = "ext-multiserver"
TITLE = "Multi-server caching: shared proxies in front of two origins"
PAPER = (
    "Paper (§4.1.5): 'we can also simulate multiple servers and "
    "multiple proxies by merging more server logs collected at the "
    "same time.'"
)


def run(ctx: ExperimentContext) -> str:
    origins = [
        OriginSpec(name=preset, log=ctx.log(preset).log,
                   catalog=ctx.log(preset).catalog)
        for preset in ("nagano", "ew3")
    ]
    merged_trace = merge_logs(origins)
    simulator = MultiServerSimulator(
        origins,
        cluster_log(merged_trace, ctx.merged_table),
    )
    result = simulator.run(cache_bytes=10_000_000)

    rows = [
        [
            name,
            counters.requests,
            f"{counters.hit_ratio:.3f}",
            f"{counters.byte_hit_ratio:.3f}",
        ]
        for name, counters in sorted(result.per_origin.items())
    ]
    table = render_table(
        ["origin", "requests", "hit ratio", "byte hit ratio"],
        rows,
        title=TITLE,
    )
    return (
        f"{table}\n\n"
        f"overall: {result.total_requests:,} requests through "
        f"{result.num_proxies} shared proxies, hit ratio "
        f"{result.overall_hit_ratio:.3f}\n{PAPER}"
    )

