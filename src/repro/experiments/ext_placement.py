"""Extension: geographic proxy-cluster placement (§4.1.4 approach 2).

Groups per-cluster proxies by AS + geography into proxy clusters and
scores the placement by request-weighted client latency against the
single-origin baseline — quantifying §1's 'lowers the latency
perceived by the clients'.
"""

from __future__ import annotations

from repro.core.placement import evaluate_latency, plan_placement
from repro.experiments.context import ExperimentContext
from repro.simnet.geo import GeoModel
from repro.util.tables import render_table

NAME = "ext-placement"
TITLE = "Proxy clusters by AS + geography, scored by client latency"
PAPER = (
    "Paper (§4.1.4): group proxies into proxy clusters by AS number "
    "and geographic location; §1: moving content closer lowers "
    "client-perceived latency."
)


def run(ctx: ExperimentContext) -> str:
    clusters = ctx.clusters("nagano")
    geo = GeoModel(ctx.topology)
    origin_asn = next(
        asn for asn, a_s in ctx.topology.ases.items() if a_s.kind == "backbone"
    )

    rows = []
    for radius in (200.0, 800.0, 3000.0):
        plan = plan_placement(clusters, ctx.topology, geo, radius_km=radius)
        report = evaluate_latency(plan, ctx.topology, geo, origin_asn)
        rows.append(
            [
                f"{radius:g} km",
                len(plan),
                f"{report.baseline_ms:.1f} ms",
                f"{report.placed_ms:.1f} ms",
                f"{report.reduction:.1%}",
            ]
        )
    table = render_table(
        ["grouping radius", "proxy sites", "latency to origin",
         "latency to site", "reduction"],
        rows,
        title=TITLE,
    )
    plan = plan_placement(clusters, ctx.topology, geo)
    top = plan.sorted_by_requests()[:8]
    site_rows = [
        [f"AS{site.asn}",
         f"({site.location.latitude:.0f}, {site.location.longitude:.0f})",
         site.num_clusters, site.num_clients, f"{site.requests:,}"]
        for site in top
    ]
    sites = render_table(
        ["AS", "location", "clusters", "clients", "requests"],
        site_rows,
        title="top proxy sites by demand (800 km radius)",
    )
    return f"{table}\n\n{sites}\n\n{PAPER}"
