"""Extension: real-time clustering over a sliding window (§3.5's
"within the last few minutes", implemented).

Streams the Nagano log through a 30-minute window, snapshotting cluster
state periodically, and demonstrates adaptation: a routing-table swap
mid-stream re-routes subsequent assignments without a restart.
"""

from __future__ import annotations

from repro.bgp.synth import SnapshotTime
from repro.core.realtime import RealTimeClusterer
from repro.experiments.context import ExperimentContext
from repro.util.tables import render_table

NAME = "ext-realtime"
TITLE = "Real-time clustering over a sliding 30-minute window"
PAPER = (
    "Paper (§3.5): real-time cluster identification on very recent "
    "log data using real-time routing information."
)


def run(ctx: ExperimentContext) -> str:
    log = ctx.log("nagano").log
    clusterer = RealTimeClusterer(ctx.merged_table, window_seconds=1800.0)

    start, end = log.time_span()
    checkpoints = [start + f * (end - start) for f in (0.25, 0.5, 0.75, 1.0)]
    swapped = False
    rows = []
    checkpoint_index = 0
    for entry in log.entries:
        # Mid-stream routing update: the §3.5 adaptation hook.
        if not swapped and entry.timestamp >= start + 0.5 * (end - start):
            clusterer.update_table(
                ctx.factory.merged(SnapshotTime(day=1))
            )
            swapped = True
        clusterer.feed(entry)
        while (
            checkpoint_index < len(checkpoints)
            and entry.timestamp >= checkpoints[checkpoint_index]
        ):
            stats = clusterer.stats()
            rows.append(
                [
                    f"{(checkpoints[checkpoint_index] - start) / 3600:.0f} h",
                    stats.entries,
                    stats.clients,
                    stats.clusters,
                ]
            )
            checkpoint_index += 1

    table = render_table(
        ["time", "window entries", "window clients", "window clusters"],
        rows,
        title=TITLE,
    )
    busiest = clusterer.busiest(5)
    lines = [table, "", "busiest clusters in the final window:"]
    lines.extend(
        f"  {prefix.cidr}: {requests} requests" for prefix, requests in busiest
    )
    lines.append("")
    lines.append(
        f"entries processed: {clusterer.entries_processed:,}; "
        f"LPM lookups: {clusterer.lookups_performed:,} "
        f"(assignment cache absorbs repeats); "
        f"routing table swapped mid-stream: {swapped}"
    )
    lines.append(PAPER)
    return "\n".join(lines)
