"""Extension: selective-sampling validation (§3.3's proposed future
work, implemented).

Compares the strict one-bad-client-fails test with the tolerant
5 %-threshold test in both client-based and request-based modes.
"""

from __future__ import annotations

import random

from repro.core.selective import MODE_CLIENT, MODE_REQUEST, selective_validate
from repro.core.validation import nslookup_validate, sample_clusters
from repro.experiments.context import ExperimentContext
from repro.util.tables import render_table
from repro.weblog.stats import requests_by_client

NAME = "ext-selective"
TITLE = "Selective-sampling validation (5% tolerance, client/request based)"
PAPER = (
    "Paper proposes (future work): tolerate up to 5% disagreeing "
    "clients per cluster; weigh client- or request-based."
)


def run(ctx: ExperimentContext) -> str:
    rows = []
    for preset in ("apache", "nagano", "sun"):
        clusters = ctx.clusters(preset)
        rng = random.Random(ctx.seed + 3)
        sample = sample_clusters(clusters, 0.10, rng, minimum=30)
        counts = requests_by_client(ctx.log(preset).log)
        strict = nslookup_validate(sample, ctx.dns, ctx.topology)
        client_based = selective_validate(
            sample, ctx.dns, tolerance=0.05, mode=MODE_CLIENT
        )
        request_based = selective_validate(
            sample, ctx.dns, tolerance=0.05, mode=MODE_REQUEST,
            request_counts=counts,
        )
        rows.append(
            [
                preset,
                len(sample),
                f"{strict.pass_rate:.1%}",
                f"{client_based.pass_rate:.1%}",
                f"{request_based.pass_rate:.1%}",
            ]
        )
    table = render_table(
        ["log", "sampled", "strict", "tolerant (client)", "tolerant (request)"],
        rows,
        title=TITLE,
    )
    return f"{table}\n\n{PAPER}"
