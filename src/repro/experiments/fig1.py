"""Figure 1: distribution of prefix lengths in a NAP routing table.

Paper: Mae-West snapshots, July 3–6 1999 — ~50 % of prefixes are /24,
noticeably more shorter-than-24 entries than longer, and day-to-day
counts nearly constant.  We regenerate both panels from the synthetic
MAE-WEST source.
"""

from __future__ import annotations

from repro.bgp.sources import source_by_name
from repro.bgp.synth import SnapshotTime
from repro.experiments.context import ExperimentContext
from repro.util.ascii_plot import ascii_histogram
from repro.util.tables import render_table

NAME = "fig1"
TITLE = "Prefix-length distribution of a NAP routing table (MAE-WEST)"
PAPER = (
    "Paper: ~50% of prefixes are /24; more prefixes shorter than /24 "
    "than longer; counts stable across 4 consecutive days."
)


def run(ctx: ExperimentContext) -> str:
    source = source_by_name("MAE-WEST")
    days = (0, 1, 2, 3)
    histograms = {}
    for day in days:
        snapshot = ctx.factory.snapshot(source, SnapshotTime(day=day))
        histograms[day] = snapshot.prefix_length_histogram()

    lengths = sorted({length for hist in histograms.values() for length in hist})
    day0 = histograms[0]
    total0 = sum(day0.values())

    parts = [TITLE, PAPER, ""]
    parts.append(
        ascii_histogram(
            [f"/{length}" for length in lengths],
            [day0.get(length, 0) for length in lengths],
            title="(a) histogram of prefix lengths, day 0",
        )
    )
    share_24 = day0.get(24, 0) / total0 if total0 else 0.0
    shorter = sum(count for length, count in day0.items() if length < 24)
    longer = sum(count for length, count in day0.items() if length > 24)
    parts.append("")
    parts.append(
        f"/24 share: {share_24:.1%}   shorter than /24: {shorter}   "
        f"longer than /24: {longer}"
    )
    parts.append("")
    rows = [
        [f"day {day}"] + [histograms[day].get(length, 0) for length in lengths]
        for day in days
    ]
    parts.append(
        render_table(
            ["date"] + [f"/{length}" for length in lengths],
            rows,
            title="(b) prefix-length distribution over four days",
        )
    )
    return "\n".join(parts)
