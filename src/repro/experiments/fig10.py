"""Figure 10: request distribution inside the spider's cluster (Sun).

Paper: the spider issues 99.79 % of its cluster's requests — the
within-cluster skew that, combined with the arrival-time test,
identifies spiders.
"""

from __future__ import annotations

from repro.core.spiders import classify_clients
from repro.experiments.context import ExperimentContext
from repro.util.ascii_plot import ascii_histogram
from repro.weblog.stats import requests_by_client

NAME = "fig10"
TITLE = "Within-cluster request distribution of the spider cluster (Sun)"
PAPER = "Paper: the spider issues 99.79% of all requests in its cluster."


def run(ctx: ExperimentContext) -> str:
    synthetic = ctx.log("sun")
    clusters = ctx.clusters("sun")
    detections = classify_clients(synthetic.log, clusters)
    spider_clients = detections.spider_clients() or synthetic.spider_clients
    if not spider_clients:
        return f"{TITLE}\n(no spider present in this log)"
    spider = spider_clients[0]
    cluster = next(
        (c for c in clusters.clusters if spider in c.clients), None
    )
    if cluster is None:
        return f"{TITLE}\n(spider not clustered)"
    counts = requests_by_client(synthetic.log)
    members = sorted(
        cluster.clients, key=lambda client: -counts.get(client, 0)
    )
    share = counts.get(spider, 0) / max(1, cluster.requests)
    parts = [TITLE, PAPER, ""]
    parts.append(
        f"cluster {cluster.identifier.cidr}: {cluster.num_clients} clients, "
        f"{cluster.requests:,} requests; spider issues {share:.2%}"
    )
    parts.append("")
    parts.append(
        ascii_histogram(
            [("spider " if client == spider else "client ")
             + f"#{rank + 1}" for rank, client in enumerate(members)],
            [counts.get(client, 0) for client in members],
            title="requests per client in the spider's cluster",
        )
    )
    return "\n".join(parts)
