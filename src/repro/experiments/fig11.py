"""Figure 11: server performance vs proxy cache size (Nagano).

Paper: with one proxy per cluster (ttl = 1 h, PCV + LRU) both hit and
byte-hit ratios observed at the server rise with cache size, reaching
60–75 %; the simple approach *under-estimates* both by ~10 % once the
per-proxy cache is larger than ~700 KB.
"""

from __future__ import annotations

from repro.cache.simulator import CachingSimulator
from repro.core.clustering import METHOD_SIMPLE
from repro.core.spiders import classify_clients
from repro.experiments.context import ExperimentContext
from repro.util.tables import render_table

NAME = "fig11"
TITLE = "Server hit / byte-hit ratio vs per-proxy cache size (Nagano)"
PAPER = (
    "Paper: ratios rise with cache size to 60-75%; simple under-"
    "estimates both by ~10% for caches > ~700KB."
)

#: The paper sweeps 100 KB – 100 MB.
CACHE_SIZES = (100_000, 300_000, 1_000_000, 3_000_000, 10_000_000,
               30_000_000, 100_000_000)
MIN_URL_ACCESSES = 10  # footnote 9


def run(ctx: ExperimentContext) -> str:
    synthetic = ctx.log("nagano")
    aware_all = ctx.clusters("nagano")
    detections = classify_clients(synthetic.log, aware_all)
    eliminated = set(detections.spider_clients()) | set(detections.proxy_clients())
    log = synthetic.log.without_clients(eliminated)

    from repro.core.clustering import cluster_log

    aware = cluster_log(log, ctx.merged_table)
    simple = cluster_log(log, method=METHOD_SIMPLE)
    sim_aware = CachingSimulator(log, synthetic.catalog, aware,
                                 min_url_accesses=MIN_URL_ACCESSES)
    sim_simple = CachingSimulator(log, synthetic.catalog, simple,
                                  min_url_accesses=MIN_URL_ACCESSES)

    rows = []
    gaps = []
    for size in CACHE_SIZES:
        r_aware = sim_aware.run(cache_bytes=size)
        r_simple = sim_simple.run(cache_bytes=size)
        gap = r_aware.server_hit_ratio - r_simple.server_hit_ratio
        gaps.append((size, gap))
        rows.append(
            [
                f"{size / 1e6:g} MB",
                f"{r_aware.server_hit_ratio:.3f}",
                f"{r_simple.server_hit_ratio:.3f}",
                f"{r_aware.server_byte_hit_ratio:.3f}",
                f"{r_simple.server_byte_hit_ratio:.3f}",
                f"{100 * gap:+.1f}%",
            ]
        )
    table = render_table(
        ["cache size", "hit (aware)", "hit (simple)",
         "byte-hit (aware)", "byte-hit (simple)", "simple underestimates"],
        rows,
        title=TITLE,
    )
    large_gaps = [gap for size, gap in gaps if size >= 700_000]
    verdict = (
        f"simple under-estimates hit ratio for caches >= 700KB by "
        f"{100 * min(large_gaps):.1f}% .. {100 * max(large_gaps):.1f}%"
        if large_gaps
        else "no large-cache points"
    )
    return f"{table}\n\n{verdict}\n{PAPER}"
