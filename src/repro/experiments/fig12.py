"""Figure 12: per-proxy performance of the top-100 clusters (Nagano).

Paper: with infinite caches, per-cluster requests/bytes and hit/byte-
hit ratios differ greatly between the network-aware and simple
clusterings — the simple approach fails to evaluate proxy benefit.
"""

from __future__ import annotations

from repro.cache.simulator import CachingSimulator
from repro.core.clustering import METHOD_SIMPLE, cluster_log
from repro.core.spiders import classify_clients
from repro.experiments.context import ExperimentContext
from repro.util.ascii_plot import ascii_series
from repro.util.tables import render_table

NAME = "fig12"
TITLE = "Per-proxy performance, top-100 clusters, infinite cache (Nagano)"
PAPER = (
    "Paper: network-aware top clusters issue far more requests per proxy "
    "than simple's; per-proxy hit ratios differ substantially between "
    "the clusterings."
)

MIN_URL_ACCESSES = 10
TOP = 100


def run(ctx: ExperimentContext) -> str:
    synthetic = ctx.log("nagano")
    aware_all = ctx.clusters("nagano")
    detections = classify_clients(synthetic.log, aware_all)
    eliminated = set(detections.spider_clients()) | set(detections.proxy_clients())
    log = synthetic.log.without_clients(eliminated)

    aware = cluster_log(log, ctx.merged_table)
    simple = cluster_log(log, method=METHOD_SIMPLE)
    results = {}
    for label, clusters in (("network-aware", aware), ("simple", simple)):
        simulator = CachingSimulator(
            log, synthetic.catalog, clusters, min_url_accesses=MIN_URL_ACCESSES
        )
        run_result = simulator.run(cache_bytes=None)
        results[label] = run_result.top_proxies(TOP)

    parts = [TITLE, PAPER, ""]
    rows = []
    for label, proxies in results.items():
        requests = [p.stats.requests for p in proxies]
        hits = [p.hit_ratio for p in proxies]
        bytes_hit = [p.byte_hit_ratio for p in proxies]
        rows.append(
            [
                label,
                len(proxies),
                f"{requests[0]:,}" if requests else "0",
                f"{requests[-1]:,}" if requests else "0",
                f"{sum(hits) / len(hits):.3f}" if hits else "0",
                f"{sum(bytes_hit) / len(bytes_hit):.3f}" if bytes_hit else "0",
            ]
        )
    parts.append(
        render_table(
            ["clustering", "proxies", "max requests", "rank-100 requests",
             "mean hit ratio", "mean byte-hit ratio"],
            rows,
        )
    )
    for label, proxies in results.items():
        parts.append("")
        parts.append(
            ascii_series([p.stats.requests for p in proxies],
                         log_x=True, log_y=True,
                         title=f"(a) requests per cluster — {label}")
        )
        parts.append(
            ascii_series([max(1e-4, p.hit_ratio) for p in proxies],
                         log_x=True,
                         title=f"(c) proxy hit ratio — {label}")
        )
    aware_req = [p.stats.requests for p in results["network-aware"]]
    simple_req = [p.stats.requests for p in results["simple"]]
    if aware_req and simple_req:
        parts.append("")
        parts.append(
            f"top-proxy request ratio (aware/simple): "
            f"{aware_req[0] / max(1, simple_req[0]):.2f}x"
        )
    return "\n".join(parts)
