"""Figure 3: cumulative distributions of clients and requests per
cluster (Nagano log).

Paper: >95 % of clusters contain fewer than 100 clients; ~90 % issue
fewer than 1,000 requests; the request CDF is more heavy-tailed than
the client CDF; largest cluster 1,343 clients, busiest 339,632
requests.
"""

from __future__ import annotations

from repro.core.metrics import fraction_below
from repro.experiments.context import ExperimentContext
from repro.util.ascii_plot import ascii_cdf

NAME = "fig3"
TITLE = "CDF of clients and requests per client cluster (Nagano)"
PAPER = (
    "Paper: >95% of clusters have <100 clients; ~90% issue <1,000 "
    "requests; requests are more heavy-tailed than clients."
)


def run(ctx: ExperimentContext) -> str:
    clusters = ctx.clusters("nagano")
    clients = [c.num_clients for c in clusters]
    requests = [c.requests for c in clusters]
    # The paper's thresholds are absolute; our logs are scaled down, so
    # report both the paper's absolute cut and a scale-adjusted one.
    client_cut = 100
    request_cut = 1000
    parts = [TITLE, PAPER, ""]
    parts.append(
        f"clusters: {len(clusters)}, largest {max(clients)} clients, "
        f"busiest {max(requests):,} requests"
    )
    parts.append(
        f"clusters with < {client_cut} clients: "
        f"{fraction_below(clients, client_cut):.1%}"
    )
    parts.append(
        f"clusters with < {request_cut:,} requests: "
        f"{fraction_below(requests, request_cut):.1%}"
    )
    # Heavy-tail comparison: top-1% share of each distribution.
    top = max(1, len(clusters) // 100)
    client_share = sum(sorted(clients, reverse=True)[:top]) / max(1, sum(clients))
    request_share = sum(sorted(requests, reverse=True)[:top]) / max(1, sum(requests))
    parts.append(
        f"top-1% clusters hold {client_share:.1%} of clients vs "
        f"{request_share:.1%} of requests (requests more heavy-tailed: "
        f"{request_share > client_share})"
    )
    parts.append("")
    parts.append(ascii_cdf(clients, title="(a) CDF of clients per cluster (log x)"))
    parts.append("")
    parts.append(ascii_cdf(requests, title="(b) CDF of requests per cluster (log x)"))
    return "\n".join(parts)
