"""Figure 4: Nagano cluster distributions in reverse order of clients.

Paper: aligned series (clients, requests, URLs) per cluster; larger
clusters usually issue more requests, but some *small* clusters issue
~1 % of all requests and touch ~20 % of all URLs — the spider/proxy
signature.
"""

from __future__ import annotations

from repro.core.metrics import distributions
from repro.experiments.context import ExperimentContext
from repro.util.ascii_plot import ascii_series
from repro.util.tables import render_table

NAME = "fig4"
TITLE = "Cluster distributions, reverse order of #clients (Nagano)"
PAPER = (
    "Paper: small clusters exist that issue ~1% of total requests and/or "
    "touch ~20% of all URLs (suspected spiders/proxies)."
)


def run(ctx: ExperimentContext) -> str:
    clusters = ctx.clusters("nagano")
    dist = distributions(clusters, order_by="clients")
    total_requests = sum(dist.requests)
    site_urls = ctx.log("nagano").log.unique_urls()

    parts = [TITLE, PAPER, ""]
    head = [
        [rank + 1, dist.identifiers[rank], dist.clients[rank],
         dist.requests[rank], dist.unique_urls[rank]]
        for rank in range(min(12, len(dist.clients)))
    ]
    parts.append(
        render_table(
            ["rank", "cluster", "clients", "requests", "urls"],
            head,
            title="largest clusters (aligned series head)",
        )
    )
    # Paper's anomaly: small clusters with outsized requests/URLs.
    anomalies = [
        (dist.identifiers[i], dist.clients[i], dist.requests[i],
         dist.unique_urls[i])
        for i in range(len(dist.clients))
        if dist.clients[i] <= 5
        and (
            dist.requests[i] >= 0.01 * total_requests
            or dist.unique_urls[i] >= 0.2 * site_urls
        )
    ]
    parts.append("")
    parts.append(
        f"small clusters (<=5 clients) with >=1% of requests or >=20% of "
        f"URLs: {len(anomalies)}"
    )
    for identifier, clients, requests, urls in anomalies[:8]:
        parts.append(
            f"  {identifier}: {clients} clients, {requests:,} requests "
            f"({requests / total_requests:.1%}), {urls} URLs "
            f"({urls / site_urls:.0%} of site)"
        )
    parts.append("")
    parts.append(ascii_series(dist.clients, log_x=True, log_y=True,
                              title="(a) clients per cluster"))
    parts.append(ascii_series(dist.requests, log_x=True, log_y=True,
                              title="(b) requests per cluster"))
    parts.append(ascii_series(dist.unique_urls, log_x=True, log_y=True,
                              title="(c) URLs per cluster"))
    return "\n".join(parts)
