"""Figure 5: the same Nagano series re-sorted in reverse order of
requests.

Paper: busy clusters usually have many clients and touch many URLs, but
some busy clusters have very few clients (proxy/spider signature); the
request distribution is more heavy-tailed than the client one.
"""

from __future__ import annotations

from repro.core.metrics import distributions
from repro.experiments.context import ExperimentContext
from repro.util.ascii_plot import ascii_series
from repro.util.tables import render_table

NAME = "fig5"
TITLE = "Cluster distributions, reverse order of #requests (Nagano)"
PAPER = (
    "Paper: busiest clusters mostly have many clients, but a few busy "
    "clusters contain very few clients — candidate proxies/spiders."
)


def run(ctx: ExperimentContext) -> str:
    clusters = ctx.clusters("nagano")
    dist = distributions(clusters, order_by="requests")
    parts = [TITLE, PAPER, ""]
    head = [
        [rank + 1, dist.identifiers[rank], dist.requests[rank],
         dist.clients[rank], dist.unique_urls[rank]]
        for rank in range(min(12, len(dist.requests)))
    ]
    parts.append(
        render_table(
            ["rank", "cluster", "requests", "clients", "urls"],
            head,
            title="busiest clusters (aligned series head)",
        )
    )
    few_client_busy = [
        (dist.identifiers[i], dist.requests[i], dist.clients[i])
        for i in range(min(25, len(dist.requests)))
        if dist.clients[i] <= 3
    ]
    parts.append("")
    parts.append(
        f"busy clusters (top 25) with <=3 clients: {len(few_client_busy)}"
    )
    for identifier, requests, clients in few_client_busy:
        parts.append(f"  {identifier}: {requests:,} requests from {clients} clients")
    parts.append("")
    parts.append(ascii_series(dist.requests, log_x=True, log_y=True,
                              title="(a) requests per cluster"))
    parts.append(ascii_series(dist.clients, log_x=True, log_y=True,
                              title="(b) clients per cluster"))
    parts.append(ascii_series(dist.unique_urls, log_x=True, log_y=True,
                              title="(c) URLs per cluster"))
    return "\n".join(parts)
