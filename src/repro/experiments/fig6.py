"""Figure 6: cluster distributions across four server logs.

Paper: the Nagano observations hold for Apache, EW3, and Sun as well —
heavy-tailed clients/requests per cluster in both orderings, with
suspected proxies/spiders visible in every log.
"""

from __future__ import annotations

from repro.core.metrics import distributions, summary
from repro.experiments.context import ExperimentContext
from repro.util.tables import render_table

NAME = "fig6"
TITLE = "Cluster distributions of Apache, EW3, Nagano, and Sun"
PAPER = (
    "Paper: every log shows the same heavy-tailed cluster structure and "
    "suspected proxies/spiders."
)

_LOGS = ("apache", "ew3", "nagano", "sun")


def run(ctx: ExperimentContext) -> str:
    parts = [TITLE, PAPER, ""]
    rows = []
    for preset in _LOGS:
        clusters = ctx.clusters(preset)
        stats = summary(clusters)
        rows.append(
            [
                preset,
                stats.num_clusters,
                stats.num_clients,
                f"{stats.max_clients}",
                f"{stats.max_requests:,}",
                f"{100 * stats.clustered_fraction:.2f}%",
            ]
        )
    parts.append(
        render_table(
            ["log", "clusters", "clients", "max clients", "max requests",
             "clustered"],
            rows,
        )
    )
    # Heads of the two orderings for each log, so the four curves of
    # each panel can be compared numerically.
    for order in ("clients", "requests"):
        parts.append("")
        parts.append(f"series heads in reverse order of {order}:")
        for preset in _LOGS:
            dist = distributions(ctx.clusters(preset), order_by=order)
            lead = dist.clients if order == "clients" else dist.requests
            other = dist.requests if order == "clients" else dist.clients
            parts.append(
                f"  {preset:7s} {order}[:8]={list(lead[:8])} "
                f"paired[:8]={list(other[:8])}"
            )
    return "\n".join(parts)
