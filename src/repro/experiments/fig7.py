"""Figure 7: network-aware vs simple cluster distributions (Nagano).

Paper: the simple approach yields 23,523 clusters vs 9,853 network-
aware; its largest cluster holds only 63 hosts (0.08 % of requests) vs
1,343 hosts (1.15 %); simple clusters are capped at 256 clients and
have smaller mean and variance.
"""

from __future__ import annotations

from repro.core.clustering import METHOD_SIMPLE
from repro.core.metrics import distributions, summary
from repro.experiments.context import ExperimentContext
from repro.util.ascii_plot import ascii_series
from repro.util.tables import render_table

NAME = "fig7"
TITLE = "Network-aware vs simple cluster distributions (Nagano)"
PAPER = (
    "Paper: simple yields ~2.4x more clusters; simple's largest cluster "
    "is ~20x smaller in clients and ~14x smaller in request share; "
    "simple's mean and variance of cluster size are both smaller."
)


def run(ctx: ExperimentContext) -> str:
    aware = ctx.clusters("nagano")
    simple = ctx.clusters("nagano", METHOD_SIMPLE)
    s_aware, s_simple = summary(aware), summary(simple)
    total_requests = aware.total_requests

    biggest_aware = max(aware.clusters, key=lambda c: c.num_clients)
    biggest_simple = max(simple.clusters, key=lambda c: c.num_clients)

    rows = [
        ["number of clusters", s_aware.num_clusters, s_simple.num_clusters],
        ["largest cluster (clients)", s_aware.max_clients, s_simple.max_clients],
        [
            "largest cluster requests",
            f"{biggest_aware.requests:,} "
            f"({biggest_aware.requests / total_requests:.2%})",
            f"{biggest_simple.requests:,} "
            f"({biggest_simple.requests / total_requests:.2%})",
        ],
        ["mean cluster size", f"{s_aware.mean_clients:.2f}",
         f"{s_simple.mean_clients:.2f}"],
        ["variance of cluster size", f"{s_aware.variance_clients:.1f}",
         f"{s_simple.variance_clients:.1f}"],
        ["max possible cluster size", "unbounded", "256 (/24 cap)"],
    ]
    parts = [TITLE, PAPER, ""]
    parts.append(render_table(["metric", "network-aware", "simple"], rows))
    checks = [
        ("simple produces more clusters",
         s_simple.num_clusters > s_aware.num_clusters),
        ("network-aware largest cluster is bigger",
         s_aware.max_clients > s_simple.max_clients),
        ("simple mean size smaller",
         s_simple.mean_clients < s_aware.mean_clients),
        ("simple variance smaller",
         s_simple.variance_clients < s_aware.variance_clients),
    ]
    parts.append("")
    for claim, holds in checks:
        parts.append(f"  [{'ok' if holds else 'MISMATCH'}] {claim}")
    for order in ("clients", "requests"):
        d_aware = distributions(aware, order_by=order)
        d_simple = distributions(simple, order_by=order)
        parts.append("")
        parts.append(
            ascii_series(d_aware.clients if order == "clients"
                         else d_aware.requests,
                         log_x=True, log_y=True,
                         title=f"network-aware, reverse order of {order}")
        )
        parts.append(
            ascii_series(d_simple.clients if order == "clients"
                         else d_simple.requests,
                         log_x=True, log_y=True,
                         title=f"simple, reverse order of {order}")
        )
    return "\n".join(parts)
