"""Figure 9: request-arrival histograms (Sun log).

Paper: (a) the whole log shows daily spikes; (b) a proxy-containing
cluster's spikes line up with the log's; (c) the spider cluster's
pattern shows no such correspondence.
"""

from __future__ import annotations

from repro.core.spiders import arrival_histogram, classify_clients, pattern_correlation
from repro.experiments.context import ExperimentContext
from repro.util.ascii_plot import ascii_series

NAME = "fig9"
TITLE = "Request arrival histograms: whole log vs proxy vs spider (Sun)"
PAPER = (
    "Paper: the proxy's arrival pattern correlates with the whole log "
    "(matching daily spikes); the spider's does not."
)


def run(ctx: ExperimentContext) -> str:
    synthetic = ctx.log("sun")
    log = synthetic.log
    clusters = ctx.clusters("sun")
    detections = classify_clients(log, clusters)

    overall = arrival_histogram(log)
    parts = [TITLE, PAPER, ""]
    parts.append(ascii_series(overall, title="(a) entire server log, hourly"))

    proxy_clients = detections.proxy_clients() or synthetic.proxy_clients
    spider_clients = detections.spider_clients() or synthetic.spider_clients

    if proxy_clients:
        hist = arrival_histogram(log, {proxy_clients[0]})
        corr = pattern_correlation(hist, overall)
        parts.append("")
        parts.append(
            ascii_series(hist, title=f"(b) proxy cluster (corr={corr:.2f})")
        )
    if spider_clients:
        hist = arrival_histogram(log, {spider_clients[0]})
        corr = pattern_correlation(hist, overall)
        parts.append("")
        parts.append(
            ascii_series(hist, title=f"(c) spider cluster (corr={corr:.2f})")
        )
    parts.append("")
    parts.append(
        f"detected: {len(detections.spiders)} spider(s) "
        f"(planted {len(synthetic.spider_clients)}), "
        f"{len(detections.proxies)} prox(ies) "
        f"(planted {len(synthetic.proxy_clients)})"
    )
    for detection in detections.spiders + detections.proxies:
        parts.append(f"  {detection.describe()}")
    return "\n".join(parts)
