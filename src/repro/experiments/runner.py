"""Experiment harness CLI.

``python -m repro.experiments <id> [<id> ...]`` regenerates the named
paper tables/figures; ``all`` runs everything in paper order.  The
``--scale`` knob grows/shrinks the synthetic logs, ``--seed`` changes
the generated world.  Output is plain text: one block per experiment,
with the paper's reference claims quoted for comparison.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from repro.experiments import (
    calib,
    ext_as,
    ext_aspath,
    ext_coverage,
    ext_census,
    ext_coop,
    ext_multiserver,
    ext_placement,
    ext_realtime,
    ext_selective,
    fig1,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig9,
    fig10,
    fig11,
    fig12,
    sec32,
    sec33,
    sec35,
    sec36,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.context import ExperimentContext

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

_MODULES = (
    fig1, table1, table2, fig3, fig4, fig5, fig6, table3, fig7,
    table4, sec32, sec33, sec35, sec36, fig9, fig10, table5, fig11, fig12,
    ext_selective, ext_as, ext_realtime, ext_multiserver,
    ext_placement, ext_census, ext_aspath, ext_coverage, ext_coop, calib,
)

EXPERIMENTS: Dict[str, Callable[[ExperimentContext], str]] = {
    module.NAME: module.run for module in _MODULES
}

TITLES: Dict[str, str] = {module.NAME: module.TITLE for module in _MODULES}


def run_experiment(name: str, ctx: ExperimentContext) -> str:
    """Run one experiment by id and return its rendered output."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
    return runner(ctx)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        default=["all"],
        help="experiment ids (e.g. fig3 table4) or 'all'",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=2000,
        help="master seed every workload derives from (default: 2000)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (1.0 = default experiment size)",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help="also write each experiment's text to DIR/<id>.txt",
    )
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if args.ids == ["all"] or "all" in args.ids else args.ids
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {', '.join(unknown)}")

    ctx = ExperimentContext(seed=args.seed, scale=args.scale)
    output_dir = None
    if args.output:
        import os

        output_dir = args.output
        os.makedirs(output_dir, exist_ok=True)
    for name in names:
        started = time.time()
        output = run_experiment(name, ctx)
        elapsed = time.time() - started
        print("=" * 78)
        print(f"[{name}] {TITLES[name]}  ({elapsed:.1f}s)")
        print("=" * 78)
        print(output)
        print()
        if output_dir is not None:
            import os

            with open(os.path.join(output_dir, f"{name}.txt"), "w") as handle:
                handle.write(f"[{name}] {TITLES[name]}\n\n{output}\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
