"""§3.2.2 headline numbers: clusterable-client coverage.

Paper: the merged table clusters ≥ 99.9 % of clients in every log; the
secondary registry dumps lift coverage from ~99 % to 99.9 %, with < 1 %
of clients clustered by registry-only prefixes.
"""

from __future__ import annotations

from repro.core.clustering import cluster_log
from repro.experiments.context import ExperimentContext
from repro.util.tables import render_table

NAME = "sec32"
TITLE = "Clusterable-client coverage (with/without registry dumps)"
PAPER = (
    "Paper: >=99.9% of clients clusterable; BGP-only coverage ~99%; "
    "<1% of clients clustered via registry-only prefixes."
)

_LOGS = ("apache", "ew3", "nagano", "sun")


def run(ctx: ExperimentContext) -> str:
    bgp_only = ctx.factory.merged_without_registry()
    rows = []
    for preset in _LOGS:
        full = ctx.clusters(preset)
        partial = cluster_log(ctx.log(preset).log, bgp_only)
        registry_clients = full.registry_clustered_clients()
        rows.append(
            [
                preset,
                full.num_clients,
                f"{100 * full.clustered_fraction:.2f}%",
                f"{100 * partial.clustered_fraction:.2f}%",
                f"{100 * registry_clients / max(1, full.num_clients):.2f}%",
            ]
        )
    table = render_table(
        ["log", "clients", "clustered (merged)", "clustered (BGP only)",
         "via registry prefixes"],
        rows,
        title=TITLE,
    )
    return f"{table}\n\n{PAPER}"
