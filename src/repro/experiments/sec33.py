"""§3.3: optimized-traceroute cost savings and resolvability.

Paper: the optimized traceroute (single probe per ttl, starting at
Max_ttl=30) resolves ~50 % of clients with one probe — consistent with
nslookup resolvability — saving ~90 % of probes and ~80 % of waiting
time versus classic traceroute, while resolving name-or-path for 100 %
of clients.
"""

from __future__ import annotations

import random

from repro.experiments.context import ExperimentContext

NAME = "sec33"
TITLE = "Optimized traceroute: resolvability and probe/wait savings"
PAPER = (
    "Paper: ~50% of clients resolved with one probe; ~90% probe and "
    "~80% wait-time savings vs classic traceroute; 100% name-or-path "
    "resolvability."
)


def run(ctx: ExperimentContext) -> str:
    log = ctx.log("nagano").log
    rng = random.Random(ctx.seed)
    clients = log.clients()
    sample = rng.sample(clients, min(600, len(clients)))

    optimized, opt_cost = ctx.traceroute.probe_batch(sample, optimized=True)
    _, classic_cost = ctx.traceroute.probe_batch(sample, optimized=False)

    named = sum(1 for r in optimized if r.name is not None)
    resolved = sum(1 for r in optimized if r.resolved)
    one_probe = sum(1 for r in optimized if r.probes_sent == 1)
    probe_saving, wait_saving = opt_cost.savings_vs(classic_cost)

    nslookup_resolvable = sum(
        1 for address in sample if ctx.dns.is_resolvable(address)
    )

    return "\n".join(
        [
            TITLE,
            PAPER,
            "",
            f"sampled clients: {len(sample)}",
            f"resolved with a single Max_ttl probe: "
            f"{one_probe / len(sample):.1%}",
            f"name obtained: {named / len(sample):.1%} "
            f"(nslookup-resolvable: {nslookup_resolvable / len(sample):.1%})",
            f"name-or-path resolved: {resolved / len(sample):.1%}",
            f"probes: optimized {opt_cost.probes:,} vs classic "
            f"{classic_cost.probes:,}  ->  saving {probe_saving:.1%}",
            f"wait:   optimized {opt_cost.wait_ms / 1000:.0f}s vs classic "
            f"{classic_cost.wait_ms / 1000:.0f}s  ->  saving {wait_saving:.1%}",
        ]
    )
