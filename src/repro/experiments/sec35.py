"""§3.5: self-correction and adaptation.

Paper: periodic traceroute sampling (i) absorbs the ~0.1 % of clients
the prefix tables could not cluster, (ii) merges clusters that belong
to one network, and (iii) splits clusters spanning several networks —
raising measured accuracy on the corrected set.
"""

from __future__ import annotations

import random

from repro.core.selfcorrect import SelfCorrector
from repro.core.validation import ground_truth_validate, sample_clusters
from repro.experiments.context import ExperimentContext

NAME = "sec35"
TITLE = "Self-correction and adaptation via traceroute sampling"
PAPER = (
    "Paper: unclustered clients absorbed; clusters merged/split using "
    "traceroute samples; accuracy and applicability both improve."
)


def run(ctx: ExperimentContext) -> str:
    clusters = ctx.clusters("nagano")
    corrector = SelfCorrector(ctx.traceroute, samples_per_cluster=3,
                              seed=ctx.seed)
    corrected, report = corrector.correct(clusters)

    rng = random.Random(ctx.seed + 35)
    before_sample = sample_clusters(clusters, 0.15, rng, minimum=40)
    after_sample = sample_clusters(corrected, 0.15, rng, minimum=40)
    before = ground_truth_validate(before_sample, ctx.topology)
    after = ground_truth_validate(after_sample, ctx.topology)

    return "\n".join(
        [
            TITLE,
            PAPER,
            "",
            report.describe(),
            f"unclustered before: {len(clusters.unclustered_clients)}, "
            f"after: {len(corrected.unclustered_clients)}",
            f"ground-truth accuracy before: {before.pass_rate:.1%}, "
            f"after: {after.pass_rate:.1%}",
            f"traceroute probes used: {report.probes_used:,}",
        ]
    )
