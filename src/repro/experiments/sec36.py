"""§3.6: server clusters, time partitioning, and network clusters.

Paper: (i) clustering the servers of an 11-day ISP trace leaves only
~0.2 % unclusterable and ~4 % of server clusters receive 70 % of the
12.4 M requests; (ii) partitioning Nagano into four 6-hour sessions
preserves the cluster-distribution observations; (iii) client clusters
can themselves be grouped into network clusters via traceroute path
suffixes.
"""

from __future__ import annotations

from repro.core.clustering import cluster_log
from repro.core.metrics import summary
from repro.core.netclusters import cluster_networks
from repro.core.servercluster import cluster_servers
from repro.experiments.context import ExperimentContext
from repro.util.tables import render_table

NAME = "sec36"
TITLE = "Server clusters, session partitioning, network clusters"
PAPER = (
    "Paper: ~0.2% of servers unclusterable; ~4% of server clusters get "
    "70% of requests; 6-hour Nagano sessions keep the distribution "
    "shape; second-level clustering groups clusters by path suffix."
)


def run(ctx: ExperimentContext) -> str:
    parts = [TITLE, PAPER, ""]

    # (i) server clustering of the ISP trace.
    report = cluster_servers(ctx.log("isp").log, ctx.merged_table)
    parts.append("server clustering: " + report.describe())

    # (ii) 6-hour session partitioning of Nagano.
    sessions = ctx.log("nagano").log.partition_sessions(6 * 3600.0)
    rows = []
    for session in sessions:
        clusters = cluster_log(session, ctx.merged_table)
        stats = summary(clusters)
        rows.append(
            [
                session.name.rsplit(".", 1)[-1],
                len(session),
                stats.num_clusters,
                stats.max_clients,
                f"{stats.max_requests:,}",
            ]
        )
    parts.append("")
    parts.append(
        render_table(
            ["session", "requests", "clusters", "max clients", "max requests"],
            rows,
            title="Nagano partitioned into 6-hour sessions",
        )
    )

    # (iii) second-level network clusters at three aggregation levels.
    clusters = ctx.clusters("nagano")
    parts.append("")
    for level, label in ((1, "edge"), (2, "distribution"), (3, "AS core")):
        grouped = cluster_networks(clusters, ctx.traceroute, level=level)
        parts.append(
            f"network clusters at {label} level: "
            f"{len(grouped)} groups from {len(clusters)} clusters "
            f"({grouped.probes_used} probes)"
        )
    return "\n".join(parts)
