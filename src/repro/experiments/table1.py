"""Table 1: the collection of routing tables.

Paper: fourteen sources ranging from 1.7 K (CANET) to 300 K (ARIN)
entries, mixing 2-hourly/real-time BGP dumps, forwarding tables, and
registry IP-network dumps.  We list the synthetic sources with their
generated snapshot sizes; relative ordering should match the paper.
"""

from __future__ import annotations

from repro.experiments.context import ExperimentContext
from repro.util.tables import render_table

NAME = "table1"
TITLE = "The collection of routing tables"
PAPER = (
    "Paper sizes (for shape comparison): AADS 17K, ARIN 300K, AT&T-BGP 74K, "
    "AT&T-Forw 65K, CANET 1.7K, CERFNET 50K, MAE-EAST 46K, MAE-WEST 30K, "
    "NLANR 200K, OREGON 70K, PACBELL 25K, PAIX 10K, SINGAREN 68K, VBNS 1.8K."
)


def run(ctx: ExperimentContext) -> str:
    rows = []
    total_unique = len(ctx.merged_table)
    for source in ctx.factory.sources:
        snapshot = ctx.factory.snapshot(source)
        rows.append(
            [source.name, source.kind, len(snapshot), source.comment]
        )
    table = render_table(["name", "kind", "size", "comments"], rows, title=TITLE)
    return (
        f"{table}\n\nmerged unique prefix/netmask entries: {total_unique:,}\n"
        f"{PAPER}"
    )
