"""Table 2: an example BGP routing-table snapshot (VBNS).

Illustrative in the paper: a handful of rows showing prefix, next hop,
and AS path.  We print the first rows of the synthetic VBNS snapshot.
"""

from __future__ import annotations

from repro.bgp.sources import source_by_name
from repro.experiments.context import ExperimentContext
from repro.util.tables import render_table

NAME = "table2"
TITLE = "Example snapshot of a BGP routing table (VBNS)"
PAPER = "Paper shows 4 illustrative rows with prefix, next hop, AS path."


def run(ctx: ExperimentContext) -> str:
    snapshot = ctx.factory.snapshot(source_by_name("VBNS"))
    rows = []
    for prefix in snapshot.prefixes()[:8]:
        entry = snapshot.get(prefix)
        path = " ".join(str(asn) for asn in entry.as_path) + " (IGP)"
        rows.append([prefix.cidr, entry.description, entry.next_hop, path])
    return render_table(
        ["prefix", "prefix description", "next hop", "AS path"],
        rows,
        title=TITLE,
    )
