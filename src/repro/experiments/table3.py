"""Table 3: cluster validation via nslookup and optimized traceroute.

Paper (Apache / Nagano / Sun): 1 % cluster samples; prefix lengths
range 8–29 with about half the sampled clusters at /24; nslookup
resolves ~50 % of clients and passes >90 % of clusters; traceroute
reaches 100 % of clients and passes ~90 %, failing slightly more often
than nslookup; non-US clusters dominate the failures.
"""

from __future__ import annotations

import random

from repro.core.validation import (
    nslookup_validate,
    sample_clusters,
    simple_approach_pass_rate,
    traceroute_validate,
)
from repro.experiments.context import ExperimentContext
from repro.util.tables import render_table

NAME = "table3"
TITLE = "Client-cluster validation (nslookup + optimized traceroute)"
PAPER = (
    "Paper: >90% of sampled clusters pass both tests; ~50% of clients "
    "resolvable by nslookup; 100% reachable by optimized traceroute; "
    "only ~49% of sampled clusters are /24 (so the simple approach "
    "fails >50%)."
)

_LOGS = ("apache", "nagano", "sun")
#: Our cluster counts are ~10x smaller than the paper's, so a 1 % sample
#: would be too small to read; 10 % keeps the *sampled* counts similar.
SAMPLE_FRACTION = 0.10


def run(ctx: ExperimentContext) -> str:
    columns = {}
    for preset in _LOGS:
        clusters = ctx.clusters(preset)
        rng = random.Random(ctx.seed + hash(preset) % 1000)
        sample = sample_clusters(clusters, SAMPLE_FRACTION, rng)
        ns = nslookup_validate(
            sample, ctx.dns, ctx.topology, preset, total_clusters=len(clusters)
        )
        tr = traceroute_validate(
            sample, ctx.traceroute, ctx.topology, preset,
            total_clusters=len(clusters),
        )
        lengths = sorted(
            {c.identifier.length for c in sample}
        ) or [0]
        len24 = sum(1 for c in sample if c.identifier.length == 24)
        columns[preset] = {
            "total": len(clusters),
            "sampled": len(sample),
            "clients": ns.sampled_clients,
            "range": f"{lengths[0]} - {lengths[-1]}",
            "len24": len24,
            "ns_reach": ns.reachable_clients,
            "ns_mis": ns.misidentified,
            "ns_mis_nonus": ns.misidentified_non_us,
            "tr_reach": tr.reachable_clients,
            "tr_mis": tr.misidentified,
            "tr_mis_nonus": tr.misidentified_non_us,
            "ns_pass": ns.pass_rate,
            "tr_pass": tr.pass_rate,
            "simple_pass": simple_approach_pass_rate(sample),
        }

    def row(label, key, fmt=lambda v: v):
        return [label] + [fmt(columns[p][key]) for p in _LOGS]

    rows = [
        row("Total number of client clusters", "total"),
        row("Number of sampled client clusters", "sampled"),
        row("Number of sampled clients", "clients"),
        row("Prefix length range", "range"),
        row("Clusters of prefix length 24", "len24"),
        row("-- DNS nslookup validation --", "total", lambda _v: ""),
        row("nslookup reachable clients", "ns_reach"),
        row("mis-identified clusters", "ns_mis"),
        row("mis-identified non-US clusters", "ns_mis_nonus"),
        row("-- Optimized traceroute validation --", "total", lambda _v: ""),
        row("traceroute reachable clients", "tr_reach"),
        row("mis-identified clusters", "tr_mis"),
        row("mis-identified non-US clusters", "tr_mis_nonus"),
        row("-- Pass rates --", "total", lambda _v: ""),
        row("nslookup pass rate", "ns_pass", lambda v: f"{v:.1%}"),
        row("traceroute pass rate", "tr_pass", lambda v: f"{v:.1%}"),
        row("simple approach pass rate (len==24)", "simple_pass",
            lambda v: f"{v:.1%}"),
    ]
    table = render_table(["", *(_LOGS)], rows, title=TITLE)
    return f"{table}\n\n{PAPER}"
