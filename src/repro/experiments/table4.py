"""Table 4: the effect of BGP dynamics on cluster identification.

Paper (AADS, periods 0/1/4/7/14 days): table size grows slightly
(16,595 → 17,288); the maximum effect (dynamic prefix set) grows from
711 to 1,404 (~4 % → ~8 %); projected onto each log's cluster prefixes
and busy clusters the effect stays below ~3 % of clusters.
"""

from __future__ import annotations

from repro.bgp.dynamics import study_dynamics
from repro.bgp.sources import source_by_name
from repro.core.threshold import threshold_busy_clusters
from repro.experiments.context import ExperimentContext
from repro.util.tables import render_table

NAME = "table4"
TITLE = "Effect of AADS dynamics on client-cluster identification"
PAPER = (
    "Paper: maximum effect grows with period but stays < ~8% of the "
    "table and affects < 3% of any log's clusters."
)

_PERIODS = (0, 1, 4, 7, 14)
_LOGS = ("apache", "ew3", "nagano", "sun")


def run(ctx: ExperimentContext) -> str:
    source = source_by_name("AADS")
    report = study_dynamics(ctx.factory, source, periods=_PERIODS)

    rows = [["Period (days)"] + [str(p) for p in _PERIODS]]
    rows.append(
        ["AADS prefix"] + [str(e.table_size) for e in report.periods]
    )
    rows.append(
        ["Maximum effect"] + [str(e.maximum_effect) for e in report.periods]
    )

    worst_cluster_fraction = 0.0
    for preset in _LOGS:
        clusters = ctx.clusters(preset)
        prefixes = [c.identifier for c in clusters.clusters]
        effect_rows = report.effect_on_prefixes(prefixes)
        rows.append(
            [f"{preset} prefix (total {len(clusters)})"]
            + [str(used) for _, used, _ in effect_rows]
        )
        rows.append(
            ["Maximum effect"] + [str(dyn) for _, _, dyn in effect_rows]
        )
        for _, _, dyn in effect_rows:
            worst_cluster_fraction = max(
                worst_cluster_fraction, dyn / max(1, len(clusters))
            )
        busy = threshold_busy_clusters(clusters).busy
        busy_prefixes = [c.identifier for c in busy]
        busy_rows = report.effect_on_prefixes(busy_prefixes)
        rows.append(
            [f"{preset} busy clusters (total {len(busy)})"]
            + [str(used) for _, used, _ in busy_rows]
        )
        rows.append(
            ["Maximum effect"] + [str(dyn) for _, _, dyn in busy_rows]
        )

    table = render_table(
        [""] + [f"d{p}" for p in _PERIODS], rows[1:], title=TITLE
    )
    return (
        f"{table}\n\nworst-case fraction of any log's clusters affected: "
        f"{worst_cluster_fraction:.2%} (paper: < 3%)\n{PAPER}"
    )
