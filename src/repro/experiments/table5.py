"""Table 5: thresholding client clusters on the Nagano log.

Paper: keeping busy clusters that cover 70 % of requests retains 717 of
9,853 network-aware clusters (threshold 2,744 requests) but 3,242 of
23,523 simple clusters (threshold 696) — the simple approach shatters
busy networks into many small clusters.
"""

from __future__ import annotations

from repro.core.clustering import METHOD_SIMPLE
from repro.core.spiders import classify_clients
from repro.core.threshold import threshold_busy_clusters
from repro.experiments.context import ExperimentContext
from repro.util.tables import render_table

NAME = "table5"
TITLE = "Thresholding client clusters (Nagano, 70% of requests)"
PAPER = (
    "Paper: network-aware keeps 717/9,853 clusters (threshold 2,744 "
    "requests; busy sizes 1-1,343 clients); simple keeps 3,242/23,523 "
    "(threshold 696; busy sizes 4-63 clients)."
)


def run(ctx: ExperimentContext) -> str:
    synthetic = ctx.log("nagano")
    # §4.1.3: spiders and proxies are eliminated before thresholding.
    aware_all = ctx.clusters("nagano")
    detections = classify_clients(synthetic.log, aware_all)
    eliminated = set(detections.spider_clients()) | set(detections.proxy_clients())
    log = synthetic.log.without_clients(eliminated)

    from repro.core.clustering import cluster_log

    aware = cluster_log(log, ctx.merged_table)
    simple = cluster_log(log, method=METHOD_SIMPLE)
    t_aware = threshold_busy_clusters(aware)
    t_simple = threshold_busy_clusters(simple)

    def column(report):
        req = report.busy_range()
        lreq = report.less_busy_range()
        return {
            "total": report.total_clusters,
            "threshold": f"{report.threshold_requests:,}",
            "busy": (
                f"{len(report.busy)} ({report.busy_clients:,} clients, "
                f"{report.busy_requests:,} requests)"
            ),
            "busy_range": f"{req[0]:,} - {req[1]:,} ({req[2]} - {req[3]} clients)",
            "less_range": (
                f"{lreq[0]:,} - {lreq[1]:,} ({lreq[2]} - {lreq[3]} clients)"
            ),
        }

    a, s = column(t_aware), column(t_simple)
    rows = [
        ["Total number of client clusters", a["total"], s["total"]],
        ["Threshold (requests per cluster)", a["threshold"], s["threshold"]],
        ["Number of busy client clusters", a["busy"], s["busy"]],
        ["Busy clusters (requests)", a["busy_range"], s["busy_range"]],
        ["Less-busy clusters (requests)", a["less_range"], s["less_range"]],
    ]
    table = render_table(
        ["", "Network-aware", "Simple"], rows, title=TITLE
    )
    checks = [
        ("simple retains more busy clusters", len(t_simple.busy) > len(t_aware.busy)),
        ("network-aware threshold is higher",
         t_aware.threshold_requests > t_simple.threshold_requests),
    ]
    lines = [f"  [{'ok' if holds else 'MISMATCH'}] {claim}" for claim, holds in checks]
    eliminated_note = (
        f"eliminated before thresholding: {len(detections.spiders)} spider(s), "
        f"{len(detections.proxies)} prox(ies)"
    )
    return "\n".join([table, "", eliminated_note, *lines, "", PAPER])
