"""Deterministic fault injection for the ingestion pipeline.

The paper's own pipeline survived fourteen messy routing snapshots and
multi-day log collection; ours has to survive the equivalents we can
manufacture.  This module is the chaos harness: a :class:`FaultPlan`
names *what* goes wrong and *when* (the Nth visit to an injection
site), and a :class:`FaultInjector` executes the plan — seeded, so a
failing chaos run replays exactly.

Injection sites
---------------

=========================  =================================================
site                       effect
=========================  =================================================
``worker.crash``           a shard worker raises mid-batch (clean exception
                           surfaced to the driver as a pool failure)
``worker.die``             a shard worker hard-exits (``os._exit``) — the
                           batch never completes; only a dispatch timeout
                           can recover
``worker.slow``            a shard worker sleeps ``arg`` seconds first
``shm.worker_crash``       a persistent shared-memory worker applies its
                           batch into the local delta store and then
                           hard-exits before acking — the driver must
                           discard worker deltas, replay, and retry over
                           an intact shared table
``checkpoint.corrupt``     one byte of a just-written checkpoint is flipped
``checkpoint.truncate``    a just-written checkpoint is cut to ``arg``
                           fraction of its length
``log.truncate``           a text stream ends after ``arg`` lines
                           (simulates a log cut mid-transfer)
``dump.mangle``            a routing-dump line is replaced with garbage
``serve.crash``            the serve daemon raises just before applying a
                           routing delta batch (simulates dying mid-patch;
                           the checkpoint on disk predates the batch)
``serve.wal.torn``         a WAL append writes only half its frame and then
                           the daemon dies — the torn write a crash leaves
                           behind; recovery must truncate at the bad frame
``serve.wal.enospc``       a WAL append fails with ``ENOSPC`` (disk full);
                           the daemon must checkpoint, reclaim covered
                           segments, and retry before giving up
``serve.disconnect``       a serve client's connection drops mid-chunk
                           (half the received bytes arrive, then a reset);
                           the accept loop must count-and-skip the torn
                           frame and keep serving
=========================  =================================================

Worker faults are *decided in the driver* at dispatch time and shipped
to the worker as a directive alongside its batch — the decision stays
deterministic and the plan never has to cross a process boundary.
Everything is stdlib-only and a plan round-trips through JSON, so chaos
runs can be driven from the CLI (``repro-engine --inject plan.json``).

The no-op default costs one ``is None`` check per dispatch: the happy
path is untouched.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple

from repro.errors import InjectedFault

__all__ = [
    "SITE_WORKER_CRASH",
    "SITE_WORKER_DIE",
    "SITE_WORKER_SLOW",
    "SITE_SHM_WORKER_CRASH",
    "SITE_CHECKPOINT_CORRUPT",
    "SITE_CHECKPOINT_TRUNCATE",
    "SITE_LOG_TRUNCATE",
    "SITE_DUMP_MANGLE",
    "SITE_SERVE_CRASH",
    "SITE_SERVE_WAL_TORN",
    "SITE_SERVE_WAL_ENOSPC",
    "SITE_SERVE_DISCONNECT",
    "ALL_SITES",
    "WORKER_SITES",
    "SHM_WORKER_SITES",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "execute_worker_directive",
]

SITE_WORKER_CRASH = "worker.crash"
SITE_WORKER_DIE = "worker.die"
SITE_WORKER_SLOW = "worker.slow"
SITE_SHM_WORKER_CRASH = "shm.worker_crash"
SITE_CHECKPOINT_CORRUPT = "checkpoint.corrupt"
SITE_CHECKPOINT_TRUNCATE = "checkpoint.truncate"
SITE_LOG_TRUNCATE = "log.truncate"
SITE_DUMP_MANGLE = "dump.mangle"
SITE_SERVE_CRASH = "serve.crash"
SITE_SERVE_WAL_TORN = "serve.wal.torn"
SITE_SERVE_WAL_ENOSPC = "serve.wal.enospc"
SITE_SERVE_DISCONNECT = "serve.disconnect"

ALL_SITES = (
    SITE_WORKER_CRASH,
    SITE_WORKER_DIE,
    SITE_WORKER_SLOW,
    SITE_CHECKPOINT_CORRUPT,
    SITE_CHECKPOINT_TRUNCATE,
    SITE_LOG_TRUNCATE,
    SITE_DUMP_MANGLE,
    SITE_SERVE_CRASH,
    SITE_SERVE_WAL_TORN,
    SITE_SERVE_WAL_ENOSPC,
    SITE_SERVE_DISCONNECT,
    SITE_SHM_WORKER_CRASH,
)

#: Sites whose faults are executed inside a worker process (the driver
#: arms them; :func:`execute_worker_directive` runs them).
WORKER_SITES = (SITE_WORKER_CRASH, SITE_WORKER_DIE, SITE_WORKER_SLOW)

#: The worker sites visited by the persistent shared-memory dispatch
#: path: everything the pool path injects, plus the post-apply hard
#: death unique to shm recovery.  Appended after :data:`WORKER_SITES`
#: so per-site visit ordering (and plan determinism) is unchanged for
#: existing chaos plans.
SHM_WORKER_SITES = WORKER_SITES + (SITE_SHM_WORKER_CRASH,)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: fire at visit ``at`` to ``site``.

    ``count`` is how many consecutive visits fire (``-1`` = every visit
    from ``at`` on — "the pool keeps dying").  ``arg`` is site-specific:
    seconds for ``worker.slow``, surviving length fraction for
    ``checkpoint.truncate``, line budget for ``log.truncate``.
    ``shard`` pins a worker fault to one shard's batch; ``-1`` lets the
    injector's RNG pick.
    """

    site: str
    at: int = 0
    count: int = 1
    arg: float = 0.0
    shard: int = -1

    def __post_init__(self) -> None:
        if self.site not in ALL_SITES:
            raise ValueError(f"unknown injection site: {self.site!r}")
        if self.at < 0:
            raise ValueError(f"at must be >= 0: {self.at!r}")
        if self.count < -1 or self.count == 0:
            raise ValueError(f"count must be positive or -1: {self.count!r}")

    def covers(self, visit: int) -> bool:
        """Does this spec fire on the ``visit``-th visit to its site?"""
        if visit < self.at:
            return False
        return self.count == -1 or visit < self.at + self.count


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable schedule of faults.

    Plans are value objects: build one in a test, save it next to a CI
    job, hand it to ``repro-engine --inject`` — the same plan produces
    the same failures in the same places.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, *specs: FaultSpec, seed: int = 0) -> "FaultPlan":
        return cls(specs=tuple(specs), seed=seed)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "specs": [asdict(spec) for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            specs=tuple(FaultSpec(**spec) for spec in data.get("specs", ())),
            seed=int(data.get("seed", 0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def sites(self) -> Tuple[str, ...]:
        return tuple(sorted({spec.site for spec in self.specs}))


class FaultInjector:
    """Executes a :class:`FaultPlan`: counts visits, arms faults.

    One injector instance serves one run; its per-site visit counters
    and seeded RNG are the whole state, so two injectors built from the
    same plan misbehave identically.  ``fired`` keeps per-site totals
    for the accounting the chaos tests assert on.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        self.visits: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}
        self._rng = random.Random(self.plan.seed)

    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())

    def fire(self, site: str) -> Optional[FaultSpec]:
        """Record one visit to ``site``; return the armed spec, if any."""
        visit = self.visits.get(site, 0)
        self.visits[site] = visit + 1
        for spec in self.plan.specs:
            if spec.site == site and spec.covers(visit):
                self.fired[site] = self.fired.get(site, 0) + 1
                return spec
        return None

    # -- driver-side helpers ---------------------------------------------

    def worker_directive(
        self, num_shards: int, sites: Optional[Tuple[str, ...]] = None
    ) -> Optional[Tuple[int, str, float]]:
        """Arm at most one worker fault for the next dispatch.

        Visits every worker site once per dispatch (``sites`` defaults
        to :data:`WORKER_SITES`; the shm dispatch path passes
        :data:`SHM_WORKER_SITES`); returns ``(shard, site, arg)`` for
        the first armed fault, or ``None``.
        """
        for site in (sites if sites is not None else WORKER_SITES):
            spec = self.fire(site)
            if spec is not None:
                shard = spec.shard
                if not 0 <= shard < num_shards:
                    shard = self._rng.randrange(num_shards)
                return (shard, site, spec.arg)
        return None

    def damage_file(self, path: str) -> Optional[str]:
        """Apply any armed checkpoint corruption/truncation to ``path``.

        Returns the site that fired (for accounting), or ``None``.
        Corruption flips one payload byte at a seeded offset; truncation
        keeps ``max(1, arg * size)`` bytes — both leave a file present
        but undecodable, the failure mode a torn write or bad disk
        produces.
        """
        spec = self.fire(SITE_CHECKPOINT_CORRUPT)
        if spec is not None:
            size = os.path.getsize(path)
            # Flip a byte in the back half: that is payload, not header,
            # so only a checksum (not the magic check) can catch it.
            offset = self._rng.randrange(size // 2, size)
            with open(path, "r+b") as handle:
                handle.seek(offset)
                byte = handle.read(1)
                handle.seek(offset)
                handle.write(bytes([byte[0] ^ 0xFF]))
            return SITE_CHECKPOINT_CORRUPT
        spec = self.fire(SITE_CHECKPOINT_TRUNCATE)
        if spec is not None:
            size = os.path.getsize(path)
            keep = max(1, int(size * spec.arg)) if spec.arg else size // 2
            with open(path, "r+b") as handle:
                handle.truncate(min(keep, size - 1))
            return SITE_CHECKPOINT_TRUNCATE
        return None

    def wrap_lines(self, lines: Iterable[str], site: str) -> Iterator[str]:
        """Stream ``lines`` through the plan's input faults.

        ``log.truncate`` ends the stream after ``arg`` lines;
        ``dump.mangle`` replaces armed lines with un-parseable garbage.
        Each yielded line counts as one visit to ``site``.
        """
        if site == SITE_LOG_TRUNCATE:
            budget: Optional[int] = None
            for spec in self.plan.specs:
                if spec.site == site:
                    budget = int(spec.arg)
                    break
            for number, line in enumerate(lines):
                if budget is not None and number >= budget:
                    self.fired[site] = self.fired.get(site, 0) + 1
                    return
                yield line
            return
        if site == SITE_DUMP_MANGLE:
            for line in lines:
                if self.fire(site) is not None:
                    yield "%% mangled-by-fault-injection %%\n"
                else:
                    yield line
            return
        raise ValueError(f"wrap_lines cannot serve site {site!r}")


def execute_worker_directive(directive: Tuple[int, str, float]) -> None:
    """Run an armed worker fault inside the worker process.

    Called by the shard worker when the driver shipped it a directive.
    ``worker.crash`` raises (a clean pool failure the driver sees as the
    task's exception); ``worker.die`` hard-exits without cleanup, the
    closest stdlib analogue to ``kill -9`` — the task never returns and
    only the supervisor's dispatch timeout can recover; ``worker.slow``
    sleeps and then processes normally.
    """
    _, site, arg = directive
    if site == SITE_WORKER_SLOW:
        time.sleep(arg)
        return
    if site == SITE_WORKER_CRASH:
        raise InjectedFault(site, "injected worker crash")
    if site == SITE_WORKER_DIE:
        os._exit(17)
    if site == SITE_SHM_WORKER_CRASH:
        # The shm worker calls this *after* applying the batch into its
        # local delta store and before acking: the strongest test of
        # exactly-once recovery — the driver must throw the doomed
        # deltas away, replay its acked chunks, and retry this one.
        os._exit(19)
    raise ValueError(f"unknown worker directive site: {site!r}")
