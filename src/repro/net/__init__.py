"""IPv4 and longest-prefix-match substrate.

Everything the clustering pipeline needs to manipulate addresses and
prefixes: strict dotted-quad parsing, canonical CIDR :class:`Prefix`
objects, a path-compressed radix trie for router-style longest-prefix
matching, alternative LPM engines for cross-checking and benchmarking,
and CIDR route aggregation.
"""

from repro.net.aggregate import aggregate_prefixes, aggregate_routes, remove_covered
from repro.net.ipv4 import (
    AddressError,
    MAX_ADDRESS,
    address_class,
    classful_prefix_length,
    format_ipv4,
    is_valid_ipv4,
    length_to_netmask,
    mask_bits,
    netmask_to_length,
    parse_ipv4,
)
from repro.net.lpm import LinearLpm, SortedLpm, build_engine
from repro.net.prefix import DEFAULT_ROUTE, Prefix
from repro.net.prefixset import PrefixSet
from repro.net.radix import RadixTree

__all__ = [
    "AddressError",
    "MAX_ADDRESS",
    "DEFAULT_ROUTE",
    "Prefix",
    "PrefixSet",
    "RadixTree",
    "LinearLpm",
    "SortedLpm",
    "build_engine",
    "address_class",
    "classful_prefix_length",
    "format_ipv4",
    "is_valid_ipv4",
    "length_to_netmask",
    "mask_bits",
    "netmask_to_length",
    "parse_ipv4",
    "aggregate_prefixes",
    "aggregate_routes",
    "remove_covered",
]
