"""Route aggregation.

CIDR route aggregation (paper §2, footnote 2) shrinks a routing table by
replacing adjacent blocks that share a routing decision with their
common supernet.  The BGP snapshot synthesiser uses this to model
vantage points whose view of the network is coarser than the true
allocation — exactly the phenomenon the paper identifies as the main
source of too-large clusters.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Tuple, TypeVar

from repro.net.prefix import Prefix

__all__ = ["aggregate_prefixes", "aggregate_routes", "remove_covered"]

V = TypeVar("V")


def aggregate_prefixes(prefixes: Iterable[Prefix]) -> List[Prefix]:
    """Aggregate ``prefixes`` maximally, ignoring route attributes.

    Sibling blocks merge into their parent; the merge cascades until no
    two siblings remain.  Blocks already covered by a shorter surviving
    block are dropped.  The result is the minimal prefix set covering
    exactly the same address space, in address order.
    """
    return [p for p, _ in aggregate_routes((p, None) for p in prefixes)]


def aggregate_routes(
    routes: Iterable[Tuple[Prefix, V]],
    key: Callable[[V], Hashable] = lambda value: value,
) -> List[Tuple[Prefix, V]]:
    """Aggregate ``(prefix, value)`` routes whose ``key(value)`` agrees.

    Mirrors BGP aggregation: two sibling prefixes combine only when they
    carry the same routing decision (same next hop / AS path, as
    projected by ``key``).  When duplicates of a prefix appear, the last
    value wins.  Covered prefixes with the same key as their cover are
    dropped; covered prefixes with a different key survive (they are
    more-specific exceptions, as in real tables).
    """
    by_prefix: Dict[Prefix, V] = {}
    for prefix, value in routes:
        by_prefix[prefix] = value

    # Repeatedly merge sibling pairs with equal keys, longest first so
    # merges cascade upward in one pass per length.
    changed = True
    while changed:
        changed = False
        for prefix in sorted(by_prefix, key=lambda p: -p.length):
            if prefix not in by_prefix or prefix.length == 0:
                continue
            sibling = prefix.sibling()
            if sibling is None or sibling not in by_prefix:
                continue
            if key(by_prefix[prefix]) != key(by_prefix[sibling]):
                continue
            parent = prefix.parent()
            value = by_prefix[prefix]
            del by_prefix[prefix]
            del by_prefix[sibling]
            # A pre-existing parent entry keeps its own value.
            by_prefix.setdefault(parent, value)
            changed = True

    return _drop_redundant_covered(by_prefix, key)


def _drop_redundant_covered(
    by_prefix: Dict[Prefix, V], key: Callable[[V], Hashable]
) -> List[Tuple[Prefix, V]]:
    """Drop entries covered by a shorter entry with the same key."""
    ordered = sorted(by_prefix.items(), key=lambda kv: kv[0].sort_key())
    kept: List[Tuple[Prefix, V]] = []
    cover_stack: List[Tuple[Prefix, V]] = []
    for prefix, value in ordered:
        while cover_stack and not cover_stack[-1][0].contains_prefix(prefix):
            cover_stack.pop()
        if cover_stack and key(cover_stack[-1][1]) == key(value):
            continue
        kept.append((prefix, value))
        cover_stack.append((prefix, value))
    return kept


def remove_covered(prefixes: Iterable[Prefix]) -> List[Prefix]:
    """Drop prefixes nested inside another prefix in the input.

    Unlike :func:`aggregate_prefixes` this never merges siblings; it
    only removes redundancy, preserving the remaining entries verbatim.
    """
    ordered = sorted(set(prefixes), key=Prefix.sort_key)
    kept: List[Prefix] = []
    stack: List[Prefix] = []
    for prefix in ordered:
        while stack and not stack[-1].contains_prefix(prefix):
            stack.pop()
        if stack:
            continue
        kept.append(prefix)
        stack.append(prefix)
    return kept
