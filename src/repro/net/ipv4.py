"""IPv4 address primitives.

The paper's pipeline manipulates millions of IPv4 addresses (clients
extracted from server logs, prefixes extracted from routing tables), so
this module represents addresses as plain Python ``int`` values in
``[0, 2**32)`` and provides conversion helpers.  Keeping addresses as
integers makes longest-prefix matching, masking, and sorting cheap and
allocation-free compared to wrapping each address in an object.

All functions validate their inputs and raise :class:`AddressError` on
malformed data — server logs in the wild contain garbage client fields
and routing-table dumps contain truncated lines, and the pipeline needs
to reject those records loudly rather than mis-cluster them.
"""

from __future__ import annotations

from typing import Iterable, List

__all__ = [
    "AddressError",
    "MAX_ADDRESS",
    "parse_ipv4",
    "format_ipv4",
    "is_valid_ipv4",
    "netmask_to_length",
    "length_to_netmask",
    "mask_bits",
    "classful_prefix_length",
    "address_class",
    "first_octet",
]

#: Largest representable IPv4 address (255.255.255.255) as an integer.
MAX_ADDRESS = (1 << 32) - 1

# Precomputed masks: _MASKS[l] has the top ``l`` bits set.
_MASKS = tuple(((1 << 32) - 1) ^ ((1 << (32 - length)) - 1) for length in range(33))

# Reverse map from netmask integer to prefix length, for contiguous masks.
_MASK_TO_LENGTH = {mask: length for length, mask in enumerate(_MASKS)}


class AddressError(ValueError):
    """Raised when an IPv4 address, netmask, or prefix is malformed."""


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad ``text`` into an integer address.

    Strict parser: exactly four decimal octets in ``[0, 255]`` separated
    by dots, with no leading/trailing whitespace and no leading zeros
    longer than the value requires (``012`` is rejected; some log
    processors interpret such octets as octal, which silently corrupts
    client identities).

    >>> parse_ipv4("12.65.147.94")
    205558622
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"expected 4 octets in IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part or not part.isdigit():
            raise AddressError(f"non-numeric octet in IPv4 address: {text!r}")
        if len(part) > 1 and part[0] == "0":
            raise AddressError(f"leading zero in IPv4 octet: {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in IPv4 address: {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(address: int) -> str:
    """Render integer ``address`` as a dotted quad.

    >>> format_ipv4(205558622)
    '12.65.147.94'
    """
    if not 0 <= address <= MAX_ADDRESS:
        raise AddressError(f"address out of range: {address!r}")
    return ".".join(
        str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def is_valid_ipv4(text: str) -> bool:
    """Return True when ``text`` parses as a strict dotted quad."""
    try:
        parse_ipv4(text)
    except AddressError:
        return False
    return True


def mask_bits(length: int) -> int:
    """Return the integer netmask with the top ``length`` bits set.

    >>> format_ipv4(mask_bits(19))
    '255.255.224.0'
    """
    if not 0 <= length <= 32:
        raise AddressError(f"prefix length out of range: {length!r}")
    return _MASKS[length]


def length_to_netmask(length: int) -> str:
    """Render prefix ``length`` as a dotted-quad netmask string."""
    return format_ipv4(mask_bits(length))


def netmask_to_length(netmask: str) -> int:
    """Parse a dotted-quad ``netmask`` into a prefix length.

    Only contiguous (CIDR-legal) masks are accepted; a mask like
    ``255.0.255.0`` raises :class:`AddressError` because no prefix
    length reproduces it.

    >>> netmask_to_length("255.255.224.0")
    19
    """
    value = parse_ipv4(netmask)
    try:
        return _MASK_TO_LENGTH[value]
    except KeyError:
        raise AddressError(f"non-contiguous netmask: {netmask!r}") from None


def first_octet(address: int) -> int:
    """Return the high octet of ``address`` (drives classful logic)."""
    if not 0 <= address <= MAX_ADDRESS:
        raise AddressError(f"address out of range: {address!r}")
    return (address >> 24) & 0xFF


def address_class(address: int) -> str:
    """Return the historical address class of ``address``.

    One of ``"A"`` (0.x–127.x), ``"B"`` (128.x–191.x), ``"C"``
    (192.x–223.x), ``"D"`` (multicast), or ``"E"`` (reserved).  The
    paper's classful baseline (§2) groups clients by these boundaries.
    """
    octet = first_octet(address)
    if octet < 128:
        return "A"
    if octet < 192:
        return "B"
    if octet < 224:
        return "C"
    if octet < 240:
        return "D"
    return "E"


def classful_prefix_length(address: int) -> int:
    """Return the classful network prefix length for ``address``.

    8 for Class A, 16 for Class B, 24 for Class C.  Class D/E addresses
    have no classful network; they raise :class:`AddressError` (they
    never appear as unicast web clients).
    """
    cls = address_class(address)
    if cls == "A":
        return 8
    if cls == "B":
        return 16
    if cls == "C":
        return 24
    raise AddressError(
        f"no classful network for class-{cls} address {format_ipv4(address)}"
    )


def sort_addresses(addresses: Iterable[int]) -> List[int]:
    """Return ``addresses`` sorted numerically (routing-table order)."""
    return sorted(addresses)
