"""Alternative longest-prefix-match engines.

The radix trie in :mod:`repro.net.radix` is the production matcher; the
engines here exist as correctness oracles and as ablation baselines for
the LPM benchmark (see ``benchmarks/test_bench_lpm.py``):

* :class:`LinearLpm` — scan every entry, keep the longest match.  O(n)
  per lookup; trivially correct, used to cross-check the trie in
  property-based tests.
* :class:`SortedLpm` — one hash table per prefix length, probed from
  /32 downward.  This is the classic "binary-search-free" software LPM;
  O(32) dictionary probes per lookup regardless of table size.
"""

from __future__ import annotations

import hashlib
from typing import (
    Any,
    Dict,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.net.ipv4 import mask_bits
from repro.net.prefix import Prefix

__all__ = ["LinearLpm", "SortedLpm", "LpmEngine", "build_engine"]

V = TypeVar("V")


class LpmEngine(Generic[V]):
    """Interface shared by all LPM engines (duck-typed, documented here).

    Engines provide ``insert(prefix, value)``, ``longest_match(address)``
    returning ``Optional[(Prefix, value)]``, ``__len__``, and ``items()``.

    Mutable engines additionally expose the streaming engine's batch
    LookupTable surface through :class:`_IndexedBatchMixin` —
    ``lookup_many`` (entry indices), ``prefix(i)`` / ``value(i)``,
    ``lookup``, ``match_index``, and ``digest`` — so a
    :func:`build_engine` result of any kind drops into
    :class:`~repro.engine.state.ClusterStore` and
    :class:`~repro.engine.shard.ShardedClusterEngine` unchanged.
    """

    def insert(self, prefix: Prefix, value: V) -> None:
        raise NotImplementedError

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, V]]:
        raise NotImplementedError


class _IndexedBatchMixin:
    """The packed-table batch API on top of a mutable LPM engine.

    Entry indices refer to a lazily built, ``sort_key``-ordered
    snapshot of the entry set — the same index space
    :meth:`PackedLpm.from_items` compiles from identical entries, so
    indices, ``prefix(i)`` and ``value(i)`` agree across every engine
    kind.  Mutation (``insert`` / ``delete``) invalidates the
    snapshot; these engines are correctness oracles, so the rebuild
    cost is irrelevant next to API parity.
    """

    #: Lazily built (prefixes, values, prefix→index) snapshot; host
    #: classes call :meth:`_invalidate_index` on mutation.
    _indexed: Optional[Tuple[Tuple[Prefix, ...], Tuple[Any, ...], Dict[Prefix, int]]] = None

    # Provided by the host engine class (duck-typed mixin contract).
    def items(self) -> Iterator[Tuple[Prefix, Any]]:
        raise NotImplementedError

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, Any]]:
        raise NotImplementedError

    def _indexed_snapshot(
        self,
    ) -> Tuple[Tuple[Prefix, ...], Tuple[Any, ...], Dict[Prefix, int]]:
        cache = getattr(self, "_indexed", None)
        if cache is None:
            pairs = list(self.items())
            cache = self._indexed = (
                tuple(prefix for prefix, _ in pairs),
                tuple(value for _, value in pairs),
                {prefix: i for i, (prefix, _) in enumerate(pairs)},
            )
        return cache

    def _invalidate_index(self) -> None:
        self._indexed = None

    def prefix(self, index: int) -> Prefix:
        """The prefix of entry ``index`` (as returned by lookups)."""
        return self._indexed_snapshot()[0][index]

    def value(self, index: int) -> Any:
        """The value of entry ``index`` (as returned by lookups)."""
        return self._indexed_snapshot()[1][index]

    def match_index(self, address: int) -> int:
        """Entry index of the longest matching prefix, or -1 on miss."""
        match = self.longest_match(address)
        if match is None:
            return -1
        return self._indexed_snapshot()[2][match[0]]

    def lookup_many(self, addresses: Iterable[int]) -> List[int]:
        """Batch lookup: entry index per address (-1 on miss)."""
        match_index = self.match_index
        return [match_index(address) for address in addresses]

    def lookup(self, address: int) -> Any:
        """Return the matched entry's value, or None on miss."""
        match = self.longest_match(address)
        if match is None:
            return None
        return match[1]

    def digest(self) -> str:
        """Stable prefix-set fingerprint (same algorithm and value as
        :meth:`PackedLpm.digest` over the same entries)."""
        hasher = hashlib.sha256()
        for prefix in self._indexed_snapshot()[0]:
            hasher.update(prefix.network.to_bytes(4, "big"))
            hasher.update(bytes((prefix.length,)))
        return hasher.hexdigest()


class LinearLpm(_IndexedBatchMixin, LpmEngine[V]):
    """Brute-force matcher: linear scan over all entries."""

    def __init__(self) -> None:
        self._entries: Dict[Prefix, V] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, prefix: Prefix, value: V) -> None:
        self._entries[prefix] = value
        self._invalidate_index()

    def delete(self, prefix: Prefix) -> bool:
        self._invalidate_index()
        return self._entries.pop(prefix, _MISSING) is not _MISSING

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, V]]:
        best: Optional[Prefix] = None
        for prefix in self._entries:
            if prefix.contains_address(address):
                if best is None or prefix.length > best.length:
                    best = prefix
        if best is None:
            return None
        return best, self._entries[best]

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        return iter(sorted(self._entries.items(), key=lambda kv: kv[0].sort_key()))


class SortedLpm(_IndexedBatchMixin, LpmEngine[V]):
    """Per-length hash tables probed from most to least specific.

    Lookup masks the address at each populated length, longest first,
    and returns on the first hit — mirroring how several software
    routers implement LPM without a trie.
    """

    def __init__(self) -> None:
        self._by_length: Dict[int, Dict[int, V]] = {}
        self._lengths_desc: List[int] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: Prefix, value: V) -> None:
        bucket = self._by_length.get(prefix.length)
        if bucket is None:
            bucket = self._by_length[prefix.length] = {}
            self._lengths_desc = sorted(self._by_length, reverse=True)
        if prefix.network not in bucket:
            self._size += 1
        bucket[prefix.network] = value
        self._invalidate_index()

    def delete(self, prefix: Prefix) -> bool:
        bucket = self._by_length.get(prefix.length)
        if bucket is None or prefix.network not in bucket:
            return False
        del bucket[prefix.network]
        self._size -= 1
        if not bucket:
            del self._by_length[prefix.length]
            self._lengths_desc = sorted(self._by_length, reverse=True)
        self._invalidate_index()
        return True

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, V]]:
        for length in self._lengths_desc:
            network = address & mask_bits(length)
            bucket = self._by_length[length]
            if network in bucket:
                return Prefix(network, length), bucket[network]
        return None

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        pairs = [
            (Prefix(network, length), value)
            for length, bucket in self._by_length.items()
            for network, value in bucket.items()
        ]
        return iter(sorted(pairs, key=lambda kv: kv[0].sort_key()))


def build_engine(kind: str, entries: Iterable[Tuple[Prefix, V]]) -> Any:
    """Construct an LPM structure of ``kind`` over ``entries``.

    Mutable kinds — ``"radix"``, ``"linear"``, ``"sorted"`` — insert
    entry by entry; the immutable engine tables — ``"packed"``,
    ``"stride"`` — compile the whole set at once
    (:mod:`repro.engine.packed` / :mod:`repro.engine.fastpath`).
    Every kind answers ``longest_match`` identically and carries the
    streaming engine's batch LookupTable surface, so results are
    interchangeable everywhere a table is duck-typed.
    """
    if kind in ("packed", "stride"):
        # Imported lazily: repro.engine depends on repro.net, not
        # vice versa, and the oracles must not drag the engine in.
        if kind == "packed":
            from repro.engine.packed import PackedLpm as table_cls
        else:
            from repro.engine.fastpath import StrideLpm as table_cls
        return table_cls.from_items(entries)
    from repro.net.radix import RadixTree

    engines = {"radix": RadixTree, "linear": LinearLpm, "sorted": SortedLpm}
    try:
        engine: LpmEngine[V] = engines[kind]()
    except KeyError:
        raise ValueError(f"unknown LPM engine kind: {kind!r}") from None
    for prefix, value in entries:
        engine.insert(prefix, value)
    return engine


_MISSING = object()
