"""Alternative longest-prefix-match engines.

The radix trie in :mod:`repro.net.radix` is the production matcher; the
engines here exist as correctness oracles and as ablation baselines for
the LPM benchmark (see ``benchmarks/test_bench_lpm.py``):

* :class:`LinearLpm` — scan every entry, keep the longest match.  O(n)
  per lookup; trivially correct, used to cross-check the trie in
  property-based tests.
* :class:`SortedLpm` — one hash table per prefix length, probed from
  /32 downward.  This is the classic "binary-search-free" software LPM;
  O(32) dictionary probes per lookup regardless of table size.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar

from repro.net.ipv4 import mask_bits
from repro.net.prefix import Prefix

__all__ = ["LinearLpm", "SortedLpm", "LpmEngine"]

V = TypeVar("V")


class LpmEngine(Generic[V]):
    """Interface shared by all LPM engines (duck-typed, documented here).

    Engines provide ``insert(prefix, value)``, ``longest_match(address)``
    returning ``Optional[(Prefix, value)]``, ``__len__``, and ``items()``.
    """

    def insert(self, prefix: Prefix, value: V) -> None:
        raise NotImplementedError

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, V]]:
        raise NotImplementedError


class LinearLpm(LpmEngine[V]):
    """Brute-force matcher: linear scan over all entries."""

    def __init__(self) -> None:
        self._entries: Dict[Prefix, V] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, prefix: Prefix, value: V) -> None:
        self._entries[prefix] = value

    def delete(self, prefix: Prefix) -> bool:
        return self._entries.pop(prefix, _MISSING) is not _MISSING

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, V]]:
        best: Optional[Prefix] = None
        for prefix in self._entries:
            if prefix.contains_address(address):
                if best is None or prefix.length > best.length:
                    best = prefix
        if best is None:
            return None
        return best, self._entries[best]

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        return iter(sorted(self._entries.items(), key=lambda kv: kv[0].sort_key()))


class SortedLpm(LpmEngine[V]):
    """Per-length hash tables probed from most to least specific.

    Lookup masks the address at each populated length, longest first,
    and returns on the first hit — mirroring how several software
    routers implement LPM without a trie.
    """

    def __init__(self) -> None:
        self._by_length: Dict[int, Dict[int, V]] = {}
        self._lengths_desc: List[int] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: Prefix, value: V) -> None:
        bucket = self._by_length.get(prefix.length)
        if bucket is None:
            bucket = self._by_length[prefix.length] = {}
            self._lengths_desc = sorted(self._by_length, reverse=True)
        if prefix.network not in bucket:
            self._size += 1
        bucket[prefix.network] = value

    def delete(self, prefix: Prefix) -> bool:
        bucket = self._by_length.get(prefix.length)
        if bucket is None or prefix.network not in bucket:
            return False
        del bucket[prefix.network]
        self._size -= 1
        if not bucket:
            del self._by_length[prefix.length]
            self._lengths_desc = sorted(self._by_length, reverse=True)
        return True

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, V]]:
        for length in self._lengths_desc:
            network = address & mask_bits(length)
            bucket = self._by_length[length]
            if network in bucket:
                return Prefix(network, length), bucket[network]
        return None

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        pairs = [
            (Prefix(network, length), value)
            for length, bucket in self._by_length.items()
            for network, value in bucket.items()
        ]
        return iter(sorted(pairs, key=lambda kv: kv[0].sort_key()))


def build_engine(kind: str, entries: Iterable[Tuple[Prefix, V]]) -> LpmEngine[V]:
    """Construct an engine of ``kind`` ("radix", "linear", "sorted")."""
    from repro.net.radix import RadixTree

    engines = {"radix": RadixTree, "linear": LinearLpm, "sorted": SortedLpm}
    try:
        engine: LpmEngine[V] = engines[kind]()
    except KeyError:
        raise ValueError(f"unknown LPM engine kind: {kind!r}") from None
    for prefix, value in entries:
        engine.insert(prefix, value)
    return engine


_MISSING = object()
