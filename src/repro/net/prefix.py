"""Network prefixes (CIDR blocks).

A :class:`Prefix` is the unit of routing information the paper's
clustering consumes: a network address plus a mask length, e.g.
``12.65.128.0/19``.  Prefixes are immutable, hashable, totally ordered
(by network address then length), and canonical — constructing one
zeroes any host bits so that two textual spellings of the same block
compare equal.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.net.ipv4 import (
    MAX_ADDRESS,
    AddressError,
    classful_prefix_length,
    format_ipv4,
    length_to_netmask,
    mask_bits,
    netmask_to_length,
    parse_ipv4,
)

__all__ = ["Prefix", "DEFAULT_ROUTE"]


@functools.total_ordering
@dataclass(frozen=True)
class Prefix:
    """An IPv4 CIDR block: ``network/length``.

    ``network`` is the integer network address with host bits zero;
    ``length`` is the mask length in ``[0, 32]``.  Use
    :meth:`from_cidr` / :meth:`from_netmask` to build from text.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length out of range: {self.length!r}")
        if not 0 <= self.network <= MAX_ADDRESS:
            raise AddressError(f"network address out of range: {self.network!r}")
        masked = self.network & mask_bits(self.length)
        if masked != self.network:
            # Canonicalise rather than reject: routing dumps routinely
            # print prefixes with host bits set (e.g. "12.65.147.0/19").
            object.__setattr__(self, "network", masked)

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_cidr(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` notation.

        >>> Prefix.from_cidr("12.65.128.0/19")
        Prefix('12.65.128.0/19')
        """
        address_part, sep, length_part = text.partition("/")
        if not sep:
            raise AddressError(f"missing '/' in CIDR prefix: {text!r}")
        if not length_part.isdigit():
            raise AddressError(f"non-numeric prefix length: {text!r}")
        return cls(parse_ipv4(address_part), int(length_part))

    @classmethod
    def from_netmask(cls, address: str, netmask: str) -> "Prefix":
        """Build from dotted-quad address and dotted-quad netmask."""
        return cls(parse_ipv4(address), netmask_to_length(netmask))

    @classmethod
    def host(cls, address: int) -> "Prefix":
        """Return the /32 prefix covering exactly ``address``."""
        return cls(address, 32)

    @classmethod
    def classful(cls, address: int) -> "Prefix":
        """Return the classful (A/B/C) network containing ``address``."""
        return cls(address, classful_prefix_length(address))

    # -- rendering ------------------------------------------------------

    @property
    def cidr(self) -> str:
        """CIDR text form, e.g. ``"12.65.128.0/19"``."""
        return f"{format_ipv4(self.network)}/{self.length}"

    @property
    def netmask(self) -> str:
        """Dotted-quad netmask, e.g. ``"255.255.224.0"``."""
        return length_to_netmask(self.length)

    @property
    def with_netmask(self) -> str:
        """Paper's standard format (i): ``prefix/dotted-netmask``."""
        return f"{format_ipv4(self.network)}/{self.netmask}"

    def __str__(self) -> str:
        return self.cidr

    def __repr__(self) -> str:
        return f"Prefix({self.cidr!r})"

    # -- ordering -------------------------------------------------------

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self.network, self.length) < (other.network, other.length)

    def sort_key(self) -> Tuple[int, int]:
        """Key for sorting prefixes in routing-table order."""
        return (self.network, self.length)

    # -- set-like relations --------------------------------------------

    @property
    def num_addresses(self) -> int:
        """Number of addresses the block spans (2**(32-length))."""
        return 1 << (32 - self.length)

    @property
    def first_address(self) -> int:
        """Lowest address in the block (the network address)."""
        return self.network

    @property
    def last_address(self) -> int:
        """Highest address in the block (the broadcast address)."""
        return self.network | (self.num_addresses - 1)

    def contains_address(self, address: int) -> bool:
        """True when ``address`` falls inside this block."""
        return (address & mask_bits(self.length)) == self.network

    def contains_prefix(self, other: "Prefix") -> bool:
        """True when ``other`` is equal to or nested inside this block."""
        return other.length >= self.length and self.contains_address(other.network)

    def overlaps(self, other: "Prefix") -> bool:
        """True when the two blocks share any address."""
        return self.contains_prefix(other) or other.contains_prefix(self)

    # -- structure ------------------------------------------------------

    def bit(self, index: int) -> int:
        """Return bit ``index`` of the network address (0 = MSB).

        Used by the radix trie to walk its branching structure.
        """
        if not 0 <= index < 32:
            raise AddressError(f"bit index out of range: {index!r}")
        return (self.network >> (31 - index)) & 1

    def parent(self) -> "Prefix":
        """Return the enclosing block one bit shorter.

        Raises :class:`AddressError` at /0, which has no parent.
        """
        if self.length == 0:
            raise AddressError("the default route has no parent")
        return Prefix(self.network & mask_bits(self.length - 1), self.length - 1)

    def children(self) -> Tuple["Prefix", "Prefix"]:
        """Split into the two halves one bit longer (left, right)."""
        if self.length == 32:
            raise AddressError("/32 prefixes cannot be split")
        left = Prefix(self.network, self.length + 1)
        right = Prefix(self.network | (1 << (31 - self.length)), self.length + 1)
        return left, right

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Iterate the ``new_length`` subnets of this block in order.

        ``new_length`` must be ≥ this prefix's length.  Yields
        ``2**(new_length - length)`` prefixes.
        """
        if new_length < self.length:
            raise AddressError(
                f"cannot subnet /{self.length} into shorter /{new_length}"
            )
        if new_length > 32:
            raise AddressError(f"prefix length out of range: {new_length!r}")
        step = 1 << (32 - new_length)
        for network in range(self.network, self.last_address + 1, step):
            yield Prefix(network, new_length)

    def sibling(self) -> Optional["Prefix"]:
        """Return the other half of this block's parent, or None at /0."""
        if self.length == 0:
            return None
        return Prefix(self.network ^ (1 << (32 - self.length)), self.length)


#: The all-encompassing default route ``0.0.0.0/0``.
DEFAULT_ROUTE = Prefix(0, 0)
