"""Set algebra over IPv4 address space.

Analyses keep asking set questions about prefixes: how much address
space does a snapshot cover?  Which announced space did a withdrawal
remove?  Does a cluster identifier fall inside the space two tables
agree on?  :class:`PrefixSet` answers them with exact arithmetic on a
normalised list of disjoint CIDR blocks:

* construction normalises (dedupe, drop covered, merge siblings), so
  equality is structural equality of covered space;
* union / intersection / difference / complement are closed and exact;
* ``num_addresses`` never double-counts overlapping inputs.

Everything is value-semantic and immutable.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.net.aggregate import aggregate_prefixes
from repro.net.prefix import DEFAULT_ROUTE, Prefix

__all__ = ["PrefixSet"]


class PrefixSet:
    """An immutable set of IPv4 addresses, stored as disjoint CIDRs."""

    __slots__ = ("_blocks",)

    def __init__(self, prefixes: Iterable[Prefix] = ()) -> None:
        self._blocks: Tuple[Prefix, ...] = tuple(aggregate_prefixes(prefixes))

    # -- constructors ---------------------------------------------------------

    @classmethod
    def universe(cls) -> "PrefixSet":
        """The whole IPv4 space (0.0.0.0/0)."""
        return cls([DEFAULT_ROUTE])

    @classmethod
    def empty(cls) -> "PrefixSet":
        return cls()

    # -- basics ----------------------------------------------------------------

    @property
    def blocks(self) -> Tuple[Prefix, ...]:
        """The normalised disjoint blocks, in address order."""
        return self._blocks

    def __iter__(self) -> Iterator[Prefix]:
        return iter(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __bool__(self) -> bool:
        return bool(self._blocks)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrefixSet):
            return NotImplemented
        return self._blocks == other._blocks

    def __hash__(self) -> int:
        return hash(self._blocks)

    def __repr__(self) -> str:
        inside = ", ".join(p.cidr for p in self._blocks[:4])
        suffix = ", ..." if len(self._blocks) > 4 else ""
        return f"PrefixSet([{inside}{suffix}])"

    @property
    def num_addresses(self) -> int:
        """Exact number of addresses covered (no double counting)."""
        return sum(block.num_addresses for block in self._blocks)

    def contains_address(self, address: int) -> bool:
        # Blocks are disjoint and sorted: binary search by network.
        lo, hi = 0, len(self._blocks) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            block = self._blocks[mid]
            if address < block.network:
                hi = mid - 1
            elif address > block.last_address:
                lo = mid + 1
            else:
                return True
        return False

    def contains_prefix(self, prefix: Prefix) -> bool:
        """True when every address of ``prefix`` is covered.

        Because blocks are normalised (maximally merged), a fully
        covered prefix is always inside a single block.
        """
        for block in self._blocks:
            if block.contains_prefix(prefix):
                return True
        return False

    # -- algebra -----------------------------------------------------------------

    def union(self, other: "PrefixSet") -> "PrefixSet":
        return PrefixSet(self._blocks + other._blocks)

    __or__ = union

    def complement(self) -> "PrefixSet":
        """All addresses not in this set."""
        gaps: List[Prefix] = []
        cursor = 0
        for block in self._blocks:
            if block.network > cursor:
                gaps.extend(_span_to_prefixes(cursor, block.network - 1))
            cursor = block.last_address + 1
        if cursor <= Prefix(0, 0).last_address:
            gaps.extend(_span_to_prefixes(cursor, DEFAULT_ROUTE.last_address))
        return PrefixSet(gaps)

    def intersection(self, other: "PrefixSet") -> "PrefixSet":
        pieces: List[Prefix] = []
        # Merge-walk the two sorted disjoint block lists.
        a_blocks, b_blocks = self._blocks, other._blocks
        i = j = 0
        while i < len(a_blocks) and j < len(b_blocks):
            a, b = a_blocks[i], b_blocks[j]
            if a.last_address < b.network:
                i += 1
                continue
            if b.last_address < a.network:
                j += 1
                continue
            lo = max(a.network, b.network)
            hi = min(a.last_address, b.last_address)
            pieces.extend(_span_to_prefixes(lo, hi))
            if a.last_address < b.last_address:
                i += 1
            else:
                j += 1
        return PrefixSet(pieces)

    __and__ = intersection

    def difference(self, other: "PrefixSet") -> "PrefixSet":
        return self.intersection(other.complement())

    __sub__ = difference

    def overlaps(self, other: "PrefixSet") -> bool:
        return bool(self.intersection(other))

    def issubset(self, other: "PrefixSet") -> bool:
        return not self.difference(other)


def _span_to_prefixes(lo: int, hi: int) -> List[Prefix]:
    """Minimal CIDR cover of the inclusive address range [lo, hi]."""
    prefixes: List[Prefix] = []
    cursor = lo
    while cursor <= hi:
        # Largest aligned block starting at cursor that fits in range.
        max_by_alignment = cursor & -cursor if cursor else 1 << 32
        max_by_span = hi - cursor + 1
        size = min(max_by_alignment, 1 << (max_by_span.bit_length() - 1))
        length = 32 - (size.bit_length() - 1)
        prefixes.append(Prefix(cursor, length))
        cursor += size
    return prefixes
