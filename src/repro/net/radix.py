"""Binary radix (Patricia) trie for longest-prefix matching.

This is the engine behind the paper's clustering step: every client IP
extracted from a server log is matched against the merged BGP prefix
table "similar to what IP routers do" (§3.2.1), and the longest matched
prefix names the client's cluster.

The trie is path-compressed: each internal node stores the span of bits
it consumes, so lookups touch O(prefix-length) nodes in the worst case
and far fewer in practice.  Values of any type may be attached to
prefixes; the clustering layer attaches route metadata.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.net.ipv4 import mask_bits
from repro.net.prefix import Prefix

__all__ = ["RadixTree"]

V = TypeVar("V")


class _Node(Generic[V]):
    """One trie node covering ``prefix``; holds a value when terminal."""

    __slots__ = ("prefix", "value", "has_value", "left", "right")

    def __init__(self, prefix: Prefix) -> None:
        self.prefix = prefix
        self.value: Optional[V] = None
        self.has_value = False
        self.left: Optional[_Node[V]] = None
        self.right: Optional[_Node[V]] = None


def _branch_bit(address: int, depth: int) -> int:
    """Bit ``depth`` of ``address`` counting from the MSB."""
    return (address >> (31 - depth)) & 1


def _common_prefix_length(a: int, b: int, limit: int) -> int:
    """Length of the longest common prefix of ``a`` and ``b``, ≤ limit."""
    diff = a ^ b
    if diff == 0:
        return limit
    leading = 31 - diff.bit_length() + 1  # number of equal leading bits
    return min(leading, limit)


class RadixTree(Generic[V]):
    """Path-compressed binary trie keyed by :class:`Prefix`.

    Supports insert, exact delete, exact get, longest-prefix match, and
    ordered iteration.  Duplicate inserts overwrite the stored value
    (routing-table merges keep the most recently seen route attributes
    for a prefix).
    """

    def __init__(self) -> None:
        self._root: Optional[_Node[V]] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, prefix: Prefix) -> bool:
        return self.get(prefix, _MISSING) is not _MISSING

    # -- mutation --------------------------------------------------------

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert ``prefix`` with ``value``, replacing any prior value."""
        if self._root is None:
            node = _Node(prefix)
            node.value, node.has_value = value, True
            self._root = node
            self._size = 1
            return
        self._root = self._insert(self._root, prefix, value)

    def _insert(self, node: _Node[V], prefix: Prefix, value: V) -> _Node[V]:
        shared = _common_prefix_length(
            node.prefix.network, prefix.network, min(node.prefix.length, prefix.length)
        )
        if shared < node.prefix.length:
            # Split: make a fork node covering the shared span.
            fork = _Node(Prefix(prefix.network & mask_bits(shared), shared))
            if _branch_bit(node.prefix.network, shared):
                fork.right = node
            else:
                fork.left = node
            if shared == prefix.length:
                # The new prefix IS the fork point.
                fork.value, fork.has_value = value, True
                self._size += 1
                return fork
            leaf = _Node(prefix)
            leaf.value, leaf.has_value = value, True
            self._size += 1
            if _branch_bit(prefix.network, shared):
                fork.right = leaf
            else:
                fork.left = leaf
            return fork
        if prefix.length == node.prefix.length:
            # Same prefix: overwrite.
            if not node.has_value:
                self._size += 1
            node.value, node.has_value = value, True
            return node
        # Descend: prefix is longer than this node's span.
        if _branch_bit(prefix.network, node.prefix.length):
            if node.right is None:
                leaf = _Node(prefix)
                leaf.value, leaf.has_value = value, True
                node.right = leaf
                self._size += 1
            else:
                node.right = self._insert(node.right, prefix, value)
        else:
            if node.left is None:
                leaf = _Node(prefix)
                leaf.value, leaf.has_value = value, True
                node.left = leaf
                self._size += 1
            else:
                node.left = self._insert(node.left, prefix, value)
        return node

    def delete(self, prefix: Prefix) -> bool:
        """Remove ``prefix`` exactly; return True when it was present."""
        found, self._root = self._delete(self._root, prefix)
        if found:
            self._size -= 1
        return found

    def _delete(
        self, node: Optional[_Node[V]], prefix: Prefix
    ) -> Tuple[bool, Optional[_Node[V]]]:
        if node is None or node.prefix.length > prefix.length:
            return False, node
        if not node.prefix.contains_prefix(prefix):
            return False, node
        if node.prefix.length == prefix.length:
            if node.prefix != prefix or not node.has_value:
                return False, node
            node.value, node.has_value = None, False
            return True, self._collapse(node)
        if _branch_bit(prefix.network, node.prefix.length):
            found, node.right = self._delete(node.right, prefix)
        else:
            found, node.left = self._delete(node.left, prefix)
        if found:
            node = self._collapse(node)
        return found, node

    @staticmethod
    def _collapse(node: _Node[V]) -> Optional[_Node[V]]:
        """Drop value-less nodes with < 2 children to keep paths compressed."""
        if node.has_value:
            return node
        if node.left is not None and node.right is not None:
            return node
        return node.left if node.left is not None else node.right

    def clear(self) -> None:
        """Remove every entry."""
        self._root = None
        self._size = 0

    # -- queries ---------------------------------------------------------

    def get(self, prefix: Prefix, default: V = None) -> V:  # type: ignore[assignment]
        """Return the value stored at exactly ``prefix``, else ``default``."""
        node = self._root
        while node is not None:
            if node.prefix.length > prefix.length:
                return default
            if not node.prefix.contains_prefix(prefix):
                return default
            if node.prefix.length == prefix.length:
                if node.prefix == prefix and node.has_value:
                    return node.value  # type: ignore[return-value]
                return default
            if _branch_bit(prefix.network, node.prefix.length):
                node = node.right
            else:
                node = node.left
        return default

    def longest_match(self, address: int) -> Optional[Tuple[Prefix, V]]:
        """Return ``(prefix, value)`` of the most specific covering entry.

        This is the router-style lookup of §3.2.1.  Returns None when no
        stored prefix covers ``address``.
        """
        best: Optional[Tuple[Prefix, V]] = None
        node = self._root
        while node is not None:
            if (address & mask_bits(node.prefix.length)) != node.prefix.network:
                break
            if node.has_value:
                best = (node.prefix, node.value)  # type: ignore[assignment]
            if node.prefix.length == 32:
                break
            if _branch_bit(address, node.prefix.length):
                node = node.right
            else:
                node = node.left
        return best

    def all_matches(self, address: int) -> List[Tuple[Prefix, V]]:
        """Return every covering entry for ``address``, shortest first."""
        matches: List[Tuple[Prefix, V]] = []
        node = self._root
        while node is not None:
            if (address & mask_bits(node.prefix.length)) != node.prefix.network:
                break
            if node.has_value:
                matches.append((node.prefix, node.value))  # type: ignore[arg-type]
            if node.prefix.length == 32:
                break
            if _branch_bit(address, node.prefix.length):
                node = node.right
            else:
                node = node.left
        return matches

    def covered(self, prefix: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """Iterate entries nested inside ``prefix`` (inclusive), in order."""
        for stored, value in self.items():
            if prefix.contains_prefix(stored):
                yield stored, value

    # -- iteration --------------------------------------------------------

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Iterate ``(prefix, value)`` pairs in address order."""
        stack: List[_Node[V]] = []
        if self._root is not None:
            stack.append(self._root)
        while stack:
            node = stack.pop()
            if node.has_value:
                yield node.prefix, node.value  # type: ignore[misc]
            # Push right before left so left (lower addresses) pops first;
            # within a node, the node's own (shorter) prefix sorts first.
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def export_entries(self) -> List[Tuple[Prefix, V]]:
        """All entries as a ``sort_key``-ordered list.

        The compile hook for immutable lookup structures (notably
        :class:`repro.engine.packed.PackedLpm`): one call materialises
        the trie's contents in the canonical order packed builders
        expect, so the trie stays the mutable build-side structure and
        the packed table the read-side one.
        """
        entries = list(self.items())
        entries.sort(key=lambda kv: kv[0].sort_key())
        return entries

    def prefixes(self) -> Iterator[Prefix]:
        """Iterate stored prefixes in address order."""
        for prefix, _ in self.items():
            yield prefix

    def __iter__(self) -> Iterator[Prefix]:
        return self.prefixes()


_MISSING = object()
