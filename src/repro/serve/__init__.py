"""Long-lived clustering service with incremental routing updates.

The batch pipeline (:mod:`repro.engine`) compiles one routing state and
ingests one log.  This package keeps both live: a daemon consumes an
ndjson event stream mixing weblog requests with BGP deltas, patches the
LPM tables in place (:meth:`~repro.engine.packed.PackedLpm.apply_delta`)
and re-resolves only the clients whose longest match could have changed
(:meth:`~repro.engine.state.ClusterStore.reassign_clients`) — the
paper's §3.4 self-correction running as an online process instead of a
post-hoc repair pass.

Layout:

* :mod:`repro.serve.protocol` — the wire format (one JSON object per
  line: ``log`` / ``announce`` / ``withdraw`` events) and the bounded
  :class:`LineSplitter` that reassembles it from byte chunks;
* :mod:`repro.serve.wal` — the segmented write-ahead log
  (:class:`WalWriter` / :func:`recover_wal`) behind ``--wal``;
* :mod:`repro.serve.daemon` — :class:`ServeDaemon`, the event loop
  state machine (batching, delta coalescing, checkpoint/resume, WAL
  recovery, overload shedding);
* :mod:`repro.serve.cli` — ``repro-engine serve``.
"""

from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.protocol import (
    EVENT_ANNOUNCE,
    EVENT_LOG,
    EVENT_WITHDRAW,
    LineSplitter,
    LogEvent,
    ServeEvent,
    parse_event,
)
from repro.serve.wal import WalRecovery, WalWriter, recover_wal

__all__ = [
    "ServeConfig",
    "ServeDaemon",
    "EVENT_LOG",
    "EVENT_ANNOUNCE",
    "EVENT_WITHDRAW",
    "LineSplitter",
    "LogEvent",
    "ServeEvent",
    "parse_event",
    "WalRecovery",
    "WalWriter",
    "recover_wal",
]
