"""``repro-engine serve``: the clustering daemon as a shell command.

Feed it an ndjson event stream (:mod:`repro.serve.protocol`) on stdin
or a local UNIX socket::

    repro-bgp-synth --stream 100000 | \\
        repro-engine serve --stdin --table aads.dump --lpm stride \\
            --checkpoint live.ckpt --checkpoint-every 20000 --metrics

Routing deltas are applied to the live table *in place* — no full
rebuild — and only the clients inside the patched address windows are
reclustered.  ``--verify-final`` runs the equivalence gate at the end
of the stream: the patched table must match a from-scratch rebuild at
the final routing state, intervals and digest alike.  ``--resume``
restarts from a ``--checkpoint`` file mid-stream: replay the same
stream and the daemon drops the already-counted requests, re-applies
the deltas, and proves at the boundary that it reproduced the
checkpointed routing state before accumulating anything new.

Checkpoint files are pickle-based: only ``--resume`` from files you
wrote yourself (see :mod:`repro.engine.state`).
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
from typing import Iterable, Iterator, List, Optional

from repro.cli import load_tables, print_cluster_report
from repro.engine.fastpath import LPM_KINDS, build_lpm_table
from repro.engine.metrics import EngineMetrics
from repro.engine.state import CheckpointError
from repro.errors import InjectedFault, ServeProtocolError
from repro.faults import FaultInjector, FaultPlan
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.protocol import parse_event

__all__ = ["serve_main", "build_serve_parser"]


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-engine serve",
        description=(
            "Long-lived clustering daemon: consumes an ndjson stream of "
            "weblog requests and BGP route deltas, patches the LPM table "
            "in place, and reclusters only the affected clients."
        ),
    )
    feed = parser.add_mutually_exclusive_group(required=True)
    feed.add_argument(
        "--stdin", action="store_true",
        help="read the event stream from standard input",
    )
    feed.add_argument(
        "--socket", metavar="PATH", default=None,
        help="listen on a UNIX socket at PATH and serve one connection's "
             "stream to completion",
    )
    parser.add_argument(
        "--table", "-t", action="append", default=[], metavar="DUMP",
        help="routing-table dump file for the initial state; repeatable",
    )
    parser.add_argument(
        "--lpm", choices=LPM_KINDS, default="packed",
        help="LPM table layout (default packed); deltas patch either "
             "layout in place",
    )
    parser.add_argument(
        "--memo-size", type=int, default=0, metavar="N",
        help="memoize up to N distinct client resolutions; patches evict "
             "only the memo entries inside the touched address windows "
             "(0 = off)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=4096, metavar="N",
        help="log events per clustering batch; a routing delta always "
             "flushes the batch first so stream order is preserved "
             "(default 4096)",
    )
    parser.add_argument(
        "--max-errors", type=int, default=None, metavar="N",
        help="abort when more than N undecodable event lines accumulate "
             "(default: skip-and-count forever)",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="write daemon state to PATH when the stream ends",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="EVENTS",
        help="also checkpoint after every EVENTS stream events "
             "(0 = only at the end)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="restore state from --checkpoint, then replay the same "
             "stream: checkpointed requests are skipped, deltas are "
             "re-applied, and the routing generation is verified at the "
             "boundary",
    )
    parser.add_argument(
        "--inject", metavar="PLAN.json", default=None,
        help="arm a repro.faults FaultPlan (serve.crash kills the daemon "
             "just before a delta batch is applied)",
    )
    parser.add_argument(
        "--verify-final", action="store_true",
        help="run the equivalence gate after the stream: the patched "
             "table must match a from-scratch rebuild at the final "
             "routing state",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print engine counters including the churn family "
             "(routes announced/withdrawn, clients reclustered, patch "
             "latency, rebuild fallbacks)",
    )
    parser.add_argument(
        "--busy", type=float, default=None, metavar="SHARE",
        help="threshold busy clusters covering SHARE of requests",
    )
    parser.add_argument(
        "--top", type=int, default=20,
        help="how many clusters to print (default 20, 0 = all)",
    )
    return parser


def _socket_lines(path: str) -> Iterator[str]:
    """Accept one connection on a UNIX socket and yield its lines."""
    if os.path.exists(path):
        os.unlink(path)
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        server.bind(path)
        server.listen(1)
        connection, _ = server.accept()
        try:
            with connection.makefile(
                "r", encoding="utf-8", errors="replace"
            ) as handle:
                for line in handle:
                    yield line
        finally:
            connection.close()
    finally:
        server.close()
        try:
            os.unlink(path)
        except OSError:
            pass


def serve_main(argv: Optional[List[str]] = None) -> int:
    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if not args.table:
        parser.error("the daemon needs at least one --table dump")
    if args.checkpoint_every and not args.checkpoint:
        parser.error("--checkpoint-every requires --checkpoint PATH")
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint PATH")
    if args.memo_size < 0:
        parser.error("--memo-size must be >= 0")
    if args.batch_size < 1:
        parser.error("--batch-size must be >= 1")

    injector: Optional[FaultInjector] = None
    if args.inject:
        injector = FaultInjector(FaultPlan.load(args.inject))
        print(f"fault injection armed from {args.inject}: "
              f"{', '.join(injector.plan.sites()) or 'no sites'}")

    merged = load_tables(args.table, injector=injector)
    table = build_lpm_table(args.lpm, merged, args.memo_size)
    print(f"{args.lpm} LPM table: {len(table):,} entries"
          + (f", memo bound {args.memo_size:,}" if args.memo_size else ""))

    config = ServeConfig(
        name="stdin" if args.stdin else args.socket,
        batch_size=args.batch_size,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
    )
    daemon = ServeDaemon(
        table, config, EngineMetrics(1), injector=injector
    )
    if args.resume:
        if os.path.exists(args.checkpoint):
            try:
                daemon.resume_from(args.checkpoint)
            except CheckpointError as exc:
                print(f"cannot resume: {exc}", file=sys.stderr)
                return 1
            print(
                f"resumed from {args.checkpoint}: replaying the first "
                f"{daemon.resume_skip:,} stream events"
            )
        else:
            print(f"no checkpoint at {args.checkpoint}; starting fresh")

    lines: Iterable[str]
    if args.stdin:
        lines = sys.stdin
    else:
        print(f"listening on {args.socket}", flush=True)
        lines = _socket_lines(args.socket)

    bad_lines = 0
    try:
        for line in lines:
            try:
                event = parse_event(line)
            except ServeProtocolError as exc:
                bad_lines += 1
                daemon.metrics.record_malformed()
                if args.max_errors is not None and bad_lines > args.max_errors:
                    print(f"aborting: {exc} "
                          f"({bad_lines:,} undecodable lines)",
                          file=sys.stderr)
                    return 1
                continue
            if event is None:
                continue
            daemon.feed(event)
        daemon.finish()
    except InjectedFault as exc:
        print(f"fatal: {exc}", file=sys.stderr)
        return 1
    except CheckpointError as exc:
        print(f"fatal: {exc}", file=sys.stderr)
        return 1

    if bad_lines:
        print(f"warning: skipped {bad_lines:,} undecodable event line(s)",
              file=sys.stderr)
    print(
        f"stream complete: {daemon.events_consumed:,} events "
        f"({daemon.deltas_received:,} route deltas; table at epoch "
        f"{int(daemon.table.epoch)}, {int(daemon.table.deltas_applied)} "
        "deltas applied)"
    )
    if args.checkpoint:
        print(f"checkpoint written: {args.checkpoint}")
    if args.verify_final:
        daemon.table.verify_patched()
        print(
            "equivalence gate: patched table matches a from-scratch "
            f"rebuild (digest {daemon.table.digest()[:12]}…)"
        )
    print()
    print_cluster_report(daemon.snapshot(), args.top, args.busy)
    if args.metrics:
        print()
        print(daemon.metrics.render())
    return 0


if __name__ == "__main__":
    sys.exit(serve_main())
